//! `kddtool` subcommand implementations.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

#[allow(unused_imports)]
use kdd_cache::policies::CachePolicy;
use kdd_cache::policies::RaidModel;
use kdd_cache::setassoc::CacheGeometry;
use kdd_sim::closedloop::{run_closed_loop, run_closed_loop_observed};
use kdd_sim::factory::{build_policy, PolicyKind};
use kdd_sim::openloop::{obs_snapshot_policy, replay_open_loop, replay_open_loop_observed};
use kdd_sim::service::ServiceModel;
use kdd_trace::fio::{FioConfig, FioWorkload};
use kdd_trace::record::Trace;
use kdd_trace::stats::TraceStats;
use kdd_trace::synth::PaperTrace;
use kdd_trace::{msr, spc, writer};
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Parsed flags and positional arguments.
#[derive(Debug, Default)]
pub struct Opts {
    pub workload: Option<String>,
    pub input: Option<String>,
    pub out: Option<String>,
    pub format: Option<String>,
    pub policy: Option<String>,
    pub scale: u64,
    pub seed: u64,
    pub cache_frac: f64,
    pub read_rate: f64,
    pub plan: Option<String>,
    pub ops: u64,
    pub n_faults: usize,
    pub json: bool,
    /// Span-ring capacity for observed runs (`--ring-capacity`).
    pub ring_capacity: Option<usize>,
    /// Sampling interval for observed runs in simulated milliseconds
    /// (`--sample-interval-ms`).
    pub sample_interval_ms: Option<u64>,
    /// Drift threshold for `obs-diff` (`--threshold`, default 0.01).
    pub threshold: Option<f64>,
    /// Write a `kdd-obs` snapshot of the (single-policy) sim run to this
    /// file (`--obs FILE` on `replay`/`fio`).
    pub obs: Option<String>,
    pub positional: Vec<String>,
}

impl Opts {
    /// Parse `--flag value` pairs plus positionals.
    pub fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts {
            scale: 100,
            seed: 42,
            cache_frac: 0.15,
            read_rate: 0.25,
            ops: 1500,
            n_faults: 8,
            ..Default::default()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next().cloned().ok_or_else(|| format!("--{name} needs a value"))
            };
            match a.as_str() {
                "--workload" => o.workload = Some(take("workload")?),
                "--in" => o.input = Some(take("in")?),
                "--out" => o.out = Some(take("out")?),
                "--format" => o.format = Some(take("format")?),
                "--policy" => o.policy = Some(take("policy")?),
                "--scale" => {
                    o.scale = take("scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?
                }
                "--seed" => {
                    o.seed = take("seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?
                }
                "--cache-frac" => {
                    o.cache_frac =
                        take("cache-frac")?.parse().map_err(|e| format!("bad --cache-frac: {e}"))?
                }
                "--read-rate" => {
                    o.read_rate =
                        take("read-rate")?.parse().map_err(|e| format!("bad --read-rate: {e}"))?
                }
                "--json" => o.json = true,
                "--ring-capacity" => {
                    let v: usize = take("ring-capacity")?
                        .parse()
                        .map_err(|e| format!("bad --ring-capacity: {e}"))?;
                    if v == 0 {
                        return Err("--ring-capacity must be at least 1".into());
                    }
                    o.ring_capacity = Some(v);
                }
                "--sample-interval-ms" => {
                    let v: u64 = take("sample-interval-ms")?
                        .parse()
                        .map_err(|e| format!("bad --sample-interval-ms: {e}"))?;
                    if v == 0 {
                        return Err("--sample-interval-ms must be at least 1".into());
                    }
                    o.sample_interval_ms = Some(v);
                }
                "--threshold" => {
                    let v: f64 =
                        take("threshold")?.parse().map_err(|e| format!("bad --threshold: {e}"))?;
                    if !(v.is_finite() && v >= 0.0) {
                        return Err("--threshold must be a non-negative number".into());
                    }
                    o.threshold = Some(v);
                }
                "--obs" => o.obs = Some(take("obs")?),
                "--plan" => o.plan = Some(take("plan")?),
                "--ops" => o.ops = take("ops")?.parse().map_err(|e| format!("bad --ops: {e}"))?,
                "--faults" => {
                    o.n_faults =
                        take("faults")?.parse().map_err(|e| format!("bad --faults: {e}"))?
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
                positional => o.positional.push(positional.to_string()),
            }
        }
        Ok(o)
    }

    fn paper_trace(&self) -> Result<PaperTrace, String> {
        match self.workload.as_deref() {
            Some("fin1") | Some("Fin1") => Ok(PaperTrace::Fin1),
            Some("fin2") | Some("Fin2") => Ok(PaperTrace::Fin2),
            Some("hm0") | Some("Hm0") => Ok(PaperTrace::Hm0),
            Some("web0") | Some("Web0") => Ok(PaperTrace::Web0),
            Some(other) => Err(format!("unknown workload {other:?} (fin1|fin2|hm0|web0)")),
            None => Err("--workload required".into()),
        }
    }

    fn load_trace(&self) -> Result<Trace, String> {
        if let Some(path) = &self.input {
            let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let r = BufReader::new(f);
            match self.format.as_deref() {
                Some("spc") | None => spc::parse(r, 4096).map_err(|e| e.to_string()),
                Some("msr") => msr::parse(r, 4096, None).map_err(|e| e.to_string()),
                Some(other) => Err(format!("unknown format {other:?} (spc|msr)")),
            }
        } else {
            Ok(self.paper_trace()?.generate_scaled(self.scale, self.seed))
        }
    }

    fn policies(&self) -> Result<Vec<PolicyKind>, String> {
        match self.policy.as_deref().unwrap_or("all") {
            "all" => Ok(vec![
                PolicyKind::Nossd,
                PolicyKind::Wa,
                PolicyKind::Wt,
                PolicyKind::Wb,
                PolicyKind::LeavO,
                PolicyKind::Kdd(0.50),
                PolicyKind::Kdd(0.25),
                PolicyKind::Kdd(0.12),
            ]),
            "nossd" => Ok(vec![PolicyKind::Nossd]),
            "wt" => Ok(vec![PolicyKind::Wt]),
            "wa" => Ok(vec![PolicyKind::Wa]),
            "wb" => Ok(vec![PolicyKind::Wb]),
            "leavo" => Ok(vec![PolicyKind::LeavO]),
            "kdd-50" => Ok(vec![PolicyKind::Kdd(0.50)]),
            "kdd-25" => Ok(vec![PolicyKind::Kdd(0.25)]),
            "kdd-12" => Ok(vec![PolicyKind::Kdd(0.12)]),
            other => Err(format!("unknown policy {other:?}")),
        }
    }
}

fn geometry_for(trace: &Trace, frac: f64) -> (CacheGeometry, RaidModel) {
    let stats = TraceStats::compute(trace);
    let cache_pages = ((stats.unique_total as f64 * frac) as u64).max(256);
    let g = CacheGeometry {
        total_pages: cache_pages,
        ways: 64.min(cache_pages as u32),
        page_size: 4096,
    };
    let raid = RaidModel::paper_default(trace.address_space_pages().max(1024));
    (g, raid)
}

/// `gen-trace`: synthesise a paper trace and write it out.
pub fn gen_trace(o: &Opts) -> Result<(), String> {
    let pt = o.paper_trace()?;
    let trace = pt.generate_scaled(o.scale, o.seed);
    let path = o.out.as_deref().ok_or("--out required")?;
    let f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = BufWriter::new(f);
    match o.format.as_deref().unwrap_or("spc") {
        "spc" => writer::write_spc(&trace, &mut w).map_err(|e| e.to_string())?,
        "msr" => writer::write_msr(&trace, &mut w).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown format {other:?} (spc|msr)")),
    }
    eprintln!(
        "wrote {} requests ({}) to {path}",
        trace.len(),
        TraceStats::compute(&trace).table_row(pt.name()).trim()
    );
    Ok(())
}

/// `stats`: Table-I statistics of a trace.
pub fn stats(o: &Opts) -> Result<(), String> {
    let mut o2 = Opts { input: o.input.clone(), format: o.format.clone(), ..Opts::default() };
    if o2.input.is_none() {
        o2.input = o.positional.first().cloned();
    }
    if o2.input.is_none() {
        // No file: fall back to a synthetic workload.
        o2.workload = o.workload.clone();
    }
    let label = o2.input.clone().or(o.workload.clone()).unwrap_or_else(|| "trace".into());
    let o_load = Opts { scale: o.scale, seed: o.seed, ..o2 };
    let trace = o_load.load_trace()?;
    if o.json {
        print!("{}", TraceStats::compute(&trace).export(&label).render());
        return Ok(());
    }
    println!("{}", TraceStats::table_header());
    println!("{}", TraceStats::compute(&trace).table_row(&label));
    println!(
        "duration: {}   address space: {} pages",
        trace.duration(),
        trace.address_space_pages()
    );
    Ok(())
}

/// `sim`: counting simulation — hit ratio, SSD traffic, metadata share.
pub fn sim(o: &Opts) -> Result<(), String> {
    let trace = o.load_trace()?;
    let (g, raid) = geometry_for(&trace, o.cache_frac);
    println!("cache: {} pages ({} sets x {} ways)", g.total_pages, g.sets(), g.ways);
    println!(
        "{:<9} {:>8} {:>14} {:>10} {:>12} {:>12}",
        "policy", "hit%", "ssd writes", "meta%", "raid reads", "raid writes"
    );
    for kind in o.policies()? {
        let mut p = build_policy(kind, g, raid, o.seed);
        p.run_trace(&trace);
        let s = p.stats();
        println!(
            "{:<9} {:>7.1}% {:>14} {:>9.2}% {:>12} {:>12}",
            p.name(),
            s.hit_ratio() * 100.0,
            format!("{}", s.ssd_write_bytes(4096)),
            s.metadata_fraction() * 100.0,
            s.raid_reads,
            s.raid_writes
        );
    }
    Ok(())
}

/// Build the enabled recorder behind `--obs FILE`, honouring
/// `--ring-capacity`/`--sample-interval-ms`. One snapshot file describes
/// one run, so a multi-policy sweep is rejected up front.
fn obs_recorder(o: &Opts) -> Result<Option<(String, kdd_obs::Recorder)>, String> {
    use kdd_obs::{Recorder, RecorderConfig};
    use kdd_util::units::SimTime;
    let Some(path) = o.obs.clone() else { return Ok(None) };
    if o.policies()?.len() != 1 {
        return Err("--obs records a single run: pick one policy with --policy".into());
    }
    let recorder = Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_millis(o.sample_interval_ms.unwrap_or(1000)),
        ring_capacity: o.ring_capacity.unwrap_or(128),
    });
    Ok(Some((path, recorder)))
}

/// Export the recorder's snapshot over the finished policy and write it.
fn write_policy_snapshot(
    policy: &dyn CachePolicy,
    recorder: &kdd_obs::Recorder,
    path: &str,
) -> Result<(), String> {
    let doc = obs_snapshot_policy(policy, recorder)
        .ok_or_else(|| "recorder unexpectedly disabled".to_string())?;
    std::fs::write(path, doc.render()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote {} snapshot to {path}", kdd_obs::SCHEMA);
    Ok(())
}

/// `replay`: open-loop latency (Figure 9 style).
pub fn replay(o: &Opts) -> Result<(), String> {
    let trace = o.load_trace()?;
    let (g, raid) = geometry_for(&trace, o.cache_frac);
    let model = ServiceModel::paper_default();
    let obs = obs_recorder(o)?;
    println!("{:<9} {:>8} {:>12} {:>12} {:>12}", "policy", "hit%", "mean resp", "p50", "p99");
    for kind in o.policies()? {
        let mut p = build_policy(kind, g, raid, o.seed);
        let r = match &obs {
            Some((_, rec)) => replay_open_loop_observed(p.as_mut(), &trace, &model, 5, 1, rec),
            None => replay_open_loop(p.as_mut(), &trace, &model, 5, 1),
        };
        println!(
            "{:<9} {:>7.1}% {:>12} {:>12} {:>12}",
            r.policy,
            r.hit_ratio * 100.0,
            format!("{}", r.mean_response),
            format!("{}", r.p50),
            format!("{}", r.p99)
        );
        if let Some((path, rec)) = &obs {
            write_policy_snapshot(p.as_ref(), rec, path)?;
        }
    }
    Ok(())
}

/// `fio`: closed-loop Zipf load (Figures 10/11 style).
pub fn fio(o: &Opts) -> Result<(), String> {
    let cfg = FioConfig::paper(o.read_rate).scaled(o.scale);
    let cache_pages = ((1u64 << 30) / 4096 / o.scale).max(64);
    let g = CacheGeometry {
        total_pages: cache_pages,
        ways: 64.min(cache_pages as u32),
        page_size: 4096,
    };
    let raid = RaidModel::paper_default(cfg.wss_pages.max(1024));
    let model = ServiceModel::paper_default();
    println!(
        "read rate {:.0}%, WSS {} pages, volume {} pages, cache {} pages, {} threads",
        o.read_rate * 100.0,
        cfg.wss_pages,
        cfg.total_pages,
        cache_pages,
        cfg.threads
    );
    let obs = obs_recorder(o)?;
    println!(
        "{:<9} {:>8} {:>12} {:>12} {:>14}",
        "policy", "hit%", "mean resp", "p99", "ssd writes"
    );
    for kind in o.policies()? {
        let mut p = build_policy(kind, g, raid, o.seed);
        let mut w = FioWorkload::new(cfg, o.seed + 1);
        let r = match &obs {
            Some((_, rec)) => run_closed_loop_observed(p.as_mut(), &mut w, &model, 5, rec),
            None => run_closed_loop(p.as_mut(), &mut w, &model, 5),
        };
        println!(
            "{:<9} {:>7.1}% {:>12} {:>12} {:>14}",
            r.policy,
            r.hit_ratio * 100.0,
            format!("{}", r.mean_response),
            format!("{}", r.p99),
            format!("{}", r.ssd_write_bytes)
        );
        if let Some((path, rec)) = &obs {
            write_policy_snapshot(p.as_ref(), rec, path)?;
        }
    }
    Ok(())
}

/// `faults`: run the full engine under an injected fault plan and report
/// what fired, how the engine degraded, and whether RPO 0 held.
pub fn faults(o: &Opts) -> Result<(), String> {
    use kdd_blockdev::fault::{FaultInjector, FaultPlan};
    use kdd_blockdev::SsdDevice;
    use kdd_core::engine::{EngineMode, KddEngine};
    use kdd_core::KddConfig;
    use kdd_delta::content::PageMutator;
    use kdd_raid::{Layout, RaidArray, RaidLevel};
    use std::collections::BTreeMap;

    const PAGE: u32 = 4096;
    const DISKS: u32 = 5;
    let plan = match &o.plan {
        Some(s) => FaultPlan::parse(s)?,
        None => FaultPlan::randomized(o.seed, o.ops * 4, DISKS, o.n_faults),
    };
    println!(
        "fault plan: {} scheduled faults over a {}-op workload (seed {})",
        plan.specs.len(),
        o.ops,
        o.seed
    );

    let cache_pages = 256u64;
    let layout = Layout::new(RaidLevel::Raid5, DISKS as usize, 16, 16 * 64);
    let raid = RaidArray::new(layout, PAGE);
    let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * PAGE as u64, PAGE, 0.07);
    let g = CacheGeometry { total_pages: cache_pages, ways: 16, page_size: PAGE };
    let mut engine = KddEngine::new(KddConfig::new(g), ssd, raid).map_err(|e| e.to_string())?;
    let injector = FaultInjector::new(plan);
    engine.attach_fault_injector(injector.clone());

    let working_set = 192u64;
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, o.seed);
    // BTreeMap: the verification sweep iterates this, and its order
    // must not vary run-to-run (RandomState would reorder the output).
    let mut acked: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut errors = 0u64;
    let mut recoveries = 0u64;
    let mut unacked: Option<u64> = None;
    for i in 0..o.ops {
        let lba = (i.wrapping_mul(31) + i / 7) % working_set;
        let next = match acked.get(&lba) {
            Some(v) => mutator.mutate(v),
            None => mutator.initial_page(),
        };
        match engine.write(lba, &next) {
            Ok(_) => {
                acked.insert(lba, next);
                unacked = None;
            }
            Err(e) => {
                errors += 1;
                unacked = Some(lba);
                if injector.power_lost() {
                    println!("op {i}: power lost mid-write ({e}); running §III-E1 recovery");
                    engine = engine.power_cycle().map_err(|e| format!("recovery failed: {e}"))?;
                    recoveries += 1;
                } else {
                    println!("op {i}: write to lba {lba} failed: {e}");
                }
            }
        }
    }
    // Flush failures under injected faults are real outcomes, not noise:
    // surface them and fail the run after the RPO diagnostics print.
    let flush_err = engine.flush().err();
    if let Some(e) = &flush_err {
        eprintln!("final flush failed: {e}");
    }

    // RPO check: every acknowledged write must read back intact. The one
    // write that was in flight at a cut is exempt (it was never acked).
    let mut lost = 0u64;
    for (lba, want) in &acked {
        match engine.read(*lba) {
            Ok((data, _)) if &data == want => {}
            _ if Some(*lba) == unacked => {}
            Ok(_) => {
                lost += 1;
                println!("DATA LOSS: lba {lba} reads back wrong");
            }
            Err(e) => {
                lost += 1;
                println!("DATA LOSS: lba {lba} unreadable: {e}");
            }
        }
    }

    let c = injector.counters();
    println!("\ninjected faults ({} total):", c.injected);
    for ev in injector.events() {
        println!("  op {:>6}  {:?} {:?}: {:?}", ev.op, ev.device, ev.dir, ev.kind);
    }
    println!(
        "\nengine: {} observed, {} retried, {} fallbacks, {} torn pages healed, {} power recoveries",
        engine.stats().faults_observed,
        engine.stats().fault_retries,
        engine.stats().fault_fallbacks,
        engine.stats().torn_pages_detected,
        recoveries,
    );
    if engine.mode() == EngineMode::PassThrough {
        println!("engine is in pass-through mode (SSD and spare both dead)");
    }
    println!(
        "workload: {} writes acked, {} errors surfaced, stale rows now {}",
        acked.len(),
        errors,
        engine.raid().stale_row_count()
    );
    if lost > 0 {
        return Err(format!("{lost} acknowledged writes lost"));
    }
    if let Some(e) = flush_err {
        return Err(format!("final flush failed: {e}"));
    }
    println!("RPO 0 verified: no acknowledged write lost");
    Ok(())
}

/// Drive the full engine over a seeded paper workload with an enabled
/// observability recorder, returning the exported `kdd-obs/v2` snapshot.
/// `--ring-capacity` and `--sample-interval-ms` tune the recorder.
fn run_observed_engine(o: &Opts) -> Result<kdd_obs::Json, String> {
    use kdd_blockdev::SsdDevice;
    use kdd_core::{KddConfig, KddEngine};
    use kdd_delta::content::PageMutator;
    use kdd_obs::{Recorder, RecorderConfig};
    use kdd_raid::{Layout, RaidArray, RaidLevel};
    use kdd_trace::record::Op;
    use kdd_util::units::SimTime;
    use std::collections::BTreeMap;

    const PAGE: u32 = 4096;
    let pt = if o.workload.is_some() { o.paper_trace()? } else { PaperTrace::Fin1 };
    let trace = pt.generate_scaled(o.scale.max(50), o.seed);

    let cache_pages = 256u64;
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 64);
    let capacity = layout.capacity_pages();
    let raid = RaidArray::new(layout, PAGE);
    let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * PAGE as u64, PAGE, 0.07);
    let g = CacheGeometry { total_pages: cache_pages, ways: 16, page_size: PAGE };
    let mut engine = KddEngine::new(KddConfig::new(g), ssd, raid).map_err(|e| e.to_string())?;
    engine.attach_recorder(Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_millis(o.sample_interval_ms.unwrap_or(1000)),
        ring_capacity: o.ring_capacity.unwrap_or(128),
    }));

    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, o.seed);
    let mut versions: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for rec in &trace.records {
        for page in rec.pages() {
            let lba = page % capacity;
            match rec.op {
                Op::Read => {
                    engine.read(lba).map_err(|e| format!("read lba {lba}: {e}"))?;
                }
                Op::Write => {
                    let next = match versions.get(&lba) {
                        Some(prev) => mutator.mutate(prev),
                        None => mutator.initial_page(),
                    };
                    engine.write(lba, &next).map_err(|e| format!("write lba {lba}: {e}"))?;
                    versions.insert(lba, next);
                }
            }
        }
    }
    engine.flush().map_err(|e| format!("flush: {e}"))?;
    engine.obs_snapshot().ok_or_else(|| "recorder unexpectedly disabled".to_string())
}

/// Load a snapshot document from `--in`/positional, or drive a fresh
/// observed engine run, then validate it.
fn load_snapshot(o: &Opts) -> Result<kdd_obs::Json, String> {
    use kdd_obs::{json, validate_snapshot};
    let doc = match o.input.clone().or_else(|| o.positional.first().cloned()) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            json::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => run_observed_engine(o)?,
    };
    let problems = validate_snapshot(&doc);
    if !problems.is_empty() {
        return Err(format!("invalid kdd-obs snapshot: {}", problems.join("; ")));
    }
    Ok(doc)
}

/// `report`: render a `kdd-obs` observability snapshot (v1 or v2) —
/// either from a saved JSON file, or by driving a fresh observed run.
pub fn report(o: &Opts) -> Result<(), String> {
    let doc = load_snapshot(o)?;
    if o.json {
        print!("{}", doc.render());
        return Ok(());
    }
    render_report(&doc);
    Ok(())
}

/// `trace`: export a snapshot's span ring as a Chrome trace-event /
/// Perfetto-loadable JSON timeline.
pub fn trace(o: &Opts) -> Result<(), String> {
    let doc = load_snapshot(o)?;
    let trace = kdd_obs::trace_events(&doc)?;
    let rendered = trace.render();
    match o.out.as_deref() {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            let n = trace.get("traceEvents").and_then(kdd_obs::Json::as_arr).map_or(0, <[_]>::len);
            eprintln!("wrote {n} trace events to {path} (load in ui.perfetto.dev)");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// `obs-diff`: thresholded comparison of two snapshot documents — the
/// obs analogue of `perfbench --gate`. Exits non-zero on any breach or
/// structural mismatch.
pub fn obs_diff(o: &Opts) -> Result<(), String> {
    use kdd_obs::{diff_snapshots, json, DiffOptions};
    let (base_path, cur_path) = match o.positional.as_slice() {
        [a, b] => (a, b),
        _ => return Err("obs-diff needs exactly two snapshot files: <baseline> <candidate>".into()),
    };
    let load = |path: &str| -> Result<kdd_obs::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let base = load(base_path)?;
    let cur = load(cur_path)?;
    let mut opts = DiffOptions::default();
    if let Some(t) = o.threshold {
        opts.threshold = t;
    }
    let report = diff_snapshots(&base, &cur, &opts);
    print!("{}", report.render());
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{cur_path} drifted from {base_path}"))
    }
}

/// Human-readable view of a validated snapshot document.
fn render_report(doc: &kdd_obs::Json) {
    use kdd_obs::Json;
    let num = |v: Option<&Json>| v.and_then(Json::as_f64).unwrap_or(0.0);
    let totals = doc.get("totals");
    let table = |name: &str| totals.and_then(|t| t.get(name));
    let counter = |key: &str| num(table("counters").and_then(|c| c.get(key)));
    let derived = |key: &str| num(table("derived").and_then(|d| d.get(key)));

    println!("{} snapshot", doc.get("schema").and_then(Json::as_str).unwrap_or("kdd-obs"));
    println!(
        "requests: {:.0}  hit ratio {:.1}%  (read hit {:.1}%)",
        counter("obs.requests"),
        derived("cache.hit_ratio") * 100.0,
        derived("cache.read_hit_ratio") * 100.0
    );
    println!(
        "ssd writes: {:.0} data + {:.0} delta + {:.0} meta pages  (meta {:.1}%, WAF {:.2})",
        counter("ssd.data_writes"),
        counter("ssd.delta_writes"),
        counter("ssd.meta_writes"),
        derived("cache.metadata_fraction") * 100.0,
        derived("ssd.waf")
    );
    println!(
        "raid: {:.0} member reads, {:.0} member writes; cleaner: {:.0} cleanings, {:.0} parity updates",
        counter("raid.reads"),
        counter("raid.writes"),
        counter("cleaner.cleanings"),
        counter("cleaner.parity_updates")
    );
    if let Some(Json::Obj(gauges)) = table("gauges") {
        let g = |k: &str| gauges.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "now: backlog {:.0} rows, stale {:.0} rows, staged {:.0} deltas, metalog {:.0}/{:.0} pages ({:.1}%)",
            g("cleaner.backlog_rows"),
            g("raid.stale_rows"),
            g("nvram.staged_deltas"),
            g("metalog.pages_used"),
            g("metalog.pages_total"),
            derived("metalog.occupancy") * 100.0
        );
    }

    // "Where the microseconds go": per-stage simulated-time totals from
    // the v2 latency-attribution table, largest first.
    if let Some(Json::Obj(stages)) = doc.get("stages") {
        let mut rows: Vec<(&str, f64, f64)> = stages
            .iter()
            .map(|(name, h)| (name.as_str(), num(h.get("sum")), num(h.get("count"))))
            .filter(|&(_, sum, count)| sum > 0.0 || count > 0.0)
            .collect();
        let total: f64 = rows.iter().map(|&(_, sum, _)| sum).sum();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if !rows.is_empty() {
            println!("\nwhere the microseconds go ({:.0} us attributed):", total / 1e3);
            println!("{:>20} {:>12} {:>10} {:>7}", "stage", "total(us)", "spans", "share");
            for (name, sum, count) in rows {
                println!(
                    "{name:>20} {:>12.0} {count:>10.0} {:>6.1}%",
                    sum / 1e3,
                    if total > 0.0 { sum / total * 100.0 } else { 0.0 }
                );
            }
        }
    }

    if let Some(ts) = doc.get("timeseries").and_then(Json::as_arr) {
        println!("\ntimeseries ({} samples):", ts.len());
        println!(
            "{:>8} {:>9} {:>10} {:>8} {:>7} {:>7} {:>9}",
            "t(s)", "requests", "ssd_wr", "backlog", "stale", "staged", "metalog%"
        );
        // Show at most 12 rows: the head and the tail of the series.
        let n = ts.len();
        let shown: Vec<usize> =
            if n <= 12 { (0..n).collect() } else { (0..6).chain(n - 6..n).collect() };
        let mut last = None;
        for &i in &shown {
            if let Some(prev) = last {
                if i > prev + 1 {
                    println!("{:>8}", "...");
                }
            }
            last = Some(i);
            let Some(s) = ts.get(i) else { continue };
            let f = |k: &str| num(s.get(k));
            let ssd_wr = f("ssd_data_writes") + f("ssd_delta_writes") + f("ssd_meta_writes");
            println!(
                "{:>8.1} {:>9.0} {:>10.0} {:>8.0} {:>7.0} {:>7.0} {:>8.1}%",
                f("at_ns") / 1e9,
                f("requests"),
                ssd_wr,
                f("backlog_rows"),
                f("stale_rows"),
                f("staged_deltas"),
                f("metalog_occupancy") * 100.0
            );
        }
    }

    if let Some(wear) = doc.get("wear") {
        println!(
            "\nwear: {:.0} blocks, max erase {:.0}",
            num(wear.get("count")),
            num(wear.get("max"))
        );
        if let Some(buckets) = wear.get("buckets").and_then(Json::as_arr) {
            for b in buckets {
                if let Some([lo, n]) = b.as_arr().map(|a| [num(a.first()), num(a.get(1))]) {
                    println!("  >= {lo:>6.0} erases: {n:.0} blocks");
                }
            }
        }
    }

    if let Some(spans) = doc.get("spans") {
        let pushed = num(spans.get("pushed"));
        let dropped = num(spans.get("dropped"));
        println!("\nspans: {pushed:.0} recorded, {dropped:.0} dropped by the ring");
        if dropped > 0.0 {
            let cap = num(spans.get("capacity"));
            println!(
                "WARNING: span ring overflowed — {dropped:.0} of {pushed:.0} spans were \
                 dropped (ring capacity {cap:.0}); rerun with a larger --ring-capacity to \
                 keep them"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_flags_and_positionals() {
        let o = Opts::parse(&s(&[
            "--workload",
            "fin1",
            "--scale",
            "500",
            "--policy",
            "kdd-25",
            "file.spc",
        ]))
        .unwrap();
        assert_eq!(o.workload.as_deref(), Some("fin1"));
        assert_eq!(o.scale, 500);
        assert_eq!(o.positional, vec!["file.spc"]);
        assert_eq!(o.policies().unwrap(), vec![PolicyKind::Kdd(0.25)]);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Opts::parse(&s(&["--bogus", "1"])).is_err());
        assert!(Opts::parse(&s(&["--scale"])).is_err());
        assert!(Opts::parse(&s(&["--scale", "x"])).is_err());
    }

    #[test]
    fn workload_names_resolve() {
        for (name, pt) in [
            ("fin1", PaperTrace::Fin1),
            ("fin2", PaperTrace::Fin2),
            ("hm0", PaperTrace::Hm0),
            ("web0", PaperTrace::Web0),
        ] {
            let o = Opts::parse(&s(&["--workload", name])).unwrap();
            assert_eq!(o.paper_trace().unwrap(), pt);
        }
        let o = Opts::parse(&s(&["--workload", "zzz"])).unwrap();
        assert!(o.paper_trace().is_err());
    }

    #[test]
    fn gen_stats_sim_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir().join(format!("kddtool-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.spc");
        let o = Opts::parse(&s(&[
            "--workload",
            "fin2",
            "--scale",
            "4000",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        gen_trace(&o).unwrap();
        let o2 = Opts::parse(&s(&["--format", "spc", "--in", path.to_str().unwrap()])).unwrap();
        stats(&o2).unwrap();
        let o3 = Opts::parse(&s(&[
            "--in",
            path.to_str().unwrap(),
            "--policy",
            "kdd-25",
            "--cache-frac",
            "0.2",
        ]))
        .unwrap();
        sim(&o3).unwrap();
        if let Err(e) = std::fs::remove_dir_all(&dir) {
            eprintln!("tempdir cleanup failed ({}): {e}", dir.display());
        }
    }

    #[test]
    fn replay_smoke() {
        let o = Opts::parse(&s(&["--workload", "hm0", "--scale", "4000", "--policy", "kdd-12"]))
            .unwrap();
        replay(&o).unwrap();
    }

    #[test]
    fn fio_smoke() {
        let o =
            Opts::parse(&s(&["--read-rate", "0.5", "--scale", "8192", "--policy", "wt"])).unwrap();
        fio(&o).unwrap();
    }
}
