//! `kddtool` — command-line workbench for the KDD stack.
//!
//! ```text
//! kddtool gen-trace --workload fin1 --scale 200 --format spc --out fin1.spc
//! kddtool stats --format spc fin1.spc
//! kddtool sim --workload fin1 --scale 200 --policy kdd-25 --cache-frac 0.15
//! kddtool replay --workload hm0 --scale 200 --policy all
//! kddtool fio --read-rate 0.25 --scale 1024 --policy all
//! kddtool faults --plan "ssd@120:transient,disk1@50:drop,any@900:power"
//! ```

mod cmd;

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        exit(2);
    };
    let opts = cmd::Opts::parse(rest).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage();
        exit(2);
    });
    let result = match cmd.as_str() {
        "gen-trace" => cmd::gen_trace(&opts),
        "stats" => cmd::stats(&opts),
        "sim" => cmd::sim(&opts),
        "replay" => cmd::replay(&opts),
        "fio" => cmd::fio(&opts),
        "faults" => cmd::faults(&opts),
        "report" => cmd::report(&opts),
        "trace" => cmd::trace(&opts),
        "obs-diff" => cmd::obs_diff(&opts),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "kddtool — KDD endurable-SSD-cache workbench

commands:
  gen-trace   generate a synthetic paper trace and write it to disk
              --workload fin1|fin2|hm0|web0  --scale N
              --format spc|msr  --out FILE
  stats       Table-I statistics of a trace file
              --format spc|msr  <FILE>  [--json]
  sim         trace-driven cache simulation (hit ratio, SSD traffic)
              --workload ...|--in FILE --format ...  --scale N
              --policy nossd|wt|wa|wb|leavo|kdd-50|kdd-25|kdd-12|all
              --cache-frac F (of unique pages; default 0.15)
  replay      open-loop latency replay (Figure 9 style)
              same selectors as sim
              --obs FILE write a kdd-obs snapshot (single --policy only;
              --ring-capacity N --sample-interval-ms N tune the recorder)
  fio         closed-loop Zipf load (Figures 10/11 style)
              --read-rate F  --scale N  --policy ...
              --obs FILE as in replay
  faults      fault-injection drill on the full engine (RPO-0 check)
              --plan \"ssd@120:transient,disk1@50:drop,any@900:power\"
              or --ops N --faults K for a seeded random plan
  report      render a kdd-obs observability snapshot (v1 or v2)
              <FILE.json> to read a saved snapshot, or
              --workload ... --scale N to drive a fresh observed run
              [--json] for the raw document
              --ring-capacity N --sample-interval-ms N tune the recorder
  trace       export a snapshot's span ring as Chrome trace-event JSON
              (Perfetto-loadable); same inputs as report, --out FILE
  obs-diff    thresholded comparison of two snapshots (CI gate)
              <baseline.json> <candidate.json>  [--threshold F (0.01)]

common:       --seed N (default 42)"
    );
}
