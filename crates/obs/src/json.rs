//! Hand-rolled JSON value with a byte-stable renderer and strict parser.
//!
//! The vendored `serde_json` stand-in renders Debug output, which is not
//! parseable JSON, so every machine-readable artifact in the workspace
//! (the `kdd-obs` snapshots here, the `kdd-perfbench/v1` trajectory
//! files in `kdd-bench`) goes through this module instead: objects,
//! arrays, strings, f64 numbers and booleans — exactly the subset those
//! schemas use. Objects render from a `BTreeMap`, so the same document
//! always serialises to the same bytes (KDD003 determinism).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Mutable array payload, if this is an array.
    pub fn as_arr_mut(&mut self) -> Option<&mut Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON text (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        // The range check above keeps the cast exact.
        #[allow(clippy::cast_possible_truncation)]
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:.3}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: build an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parse a JSON document. Returns `Err` with a byte offset on malformed
/// input (including trailing garbage).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\n' || c == b'\t' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(b.get(start..*pos).unwrap_or_default())
        .map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = utf8_len(c);
                let chunk = b.get(*pos..*pos + len).ok_or("truncated utf8")?;
                let s = std::str::from_utf8(chunk).map_err(|_| "bad utf8".to_string())?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_render_and_parse() {
        let doc = obj(vec![
            ("schema", Json::Str("kdd-obs/v1".to_string())),
            ("page_size", Json::Num(4096.0)),
            (
                "runs",
                Json::Arr(vec![obj(vec![
                    ("label", Json::Str("before".to_string())),
                    (
                        "entries",
                        Json::Arr(vec![obj(vec![
                            ("name", Json::Str("xor_4k".to_string())),
                            ("ns_per_iter", Json::Num(161.25)),
                            ("mb_per_s", Json::Num(25403.0)),
                        ])]),
                    ),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("parse");
        assert_eq!(back, doc);
        // A second render of the parsed document is byte-identical.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::Str("line\n\"quoted\"\tπ".to_string());
        let text = doc.render();
        assert_eq!(parse(&text).expect("parse"), doc);
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(BTreeMap::new()).render(), "{}\n");
    }
}
