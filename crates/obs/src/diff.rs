//! Thresholded snapshot differ: the obs analogue of `perfbench --gate`.
//!
//! [`diff_snapshots`] compares two `kdd-obs` snapshot documents —
//! counter totals, derived ratios, per-stage time totals and the wear
//! histogram — and flags any drift beyond a threshold. CI runs it
//! (`kddtool obs-diff`) between the committed `OBS_engine.json` and a
//! freshly regenerated one: because every stamp in a snapshot is
//! simulated time, the regeneration is byte-identical unless engine
//! behaviour actually changed, so any reported drift is a real
//! behavioural regression (or an intentional change that should come
//! with a regenerated baseline).
//!
//! Counters, stage totals and wear are integer totals compared by
//! *relative* drift; derived ratios (hit ratio, WAF, occupancy) are
//! already normalised and compared by *absolute* delta against the same
//! threshold.

use crate::json::Json;

/// Knobs for [`diff_snapshots`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Maximum tolerated drift: relative (fraction of the baseline) for
    /// integer totals, absolute for derived ratios.
    pub threshold: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        // Tight by design: snapshots are deterministic, so any drift is a
        // code-behaviour change. 1% absorbs only trivial recounts.
        DiffOptions { threshold: 0.01 }
    }
}

/// One compared value.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the value (e.g. `stages.parity_rmw.total_ns`).
    pub key: String,
    /// Value in the baseline document.
    pub base: f64,
    /// Value in the candidate document.
    pub cur: f64,
    /// Measured drift (relative or absolute depending on the table).
    pub drift: f64,
    /// True when `drift` exceeds the threshold.
    pub breach: bool,
}

/// The full comparison result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Every value compared, in deterministic key order.
    pub entries: Vec<DiffEntry>,
    /// Structural problems: schema mismatches, keys present on only one
    /// side. Any problem fails the diff.
    pub problems: Vec<String>,
    /// The threshold the entries were judged against.
    pub threshold: f64,
}

impl DiffReport {
    /// True when nothing breached and the documents are structurally
    /// comparable.
    pub fn ok(&self) -> bool {
        self.problems.is_empty() && self.entries.iter().all(|e| !e.breach)
    }

    /// Entries that exceeded the threshold.
    pub fn breaches(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.breach)
    }

    /// Human-readable report: every problem, every drifted entry, and a
    /// verdict line mirroring `perfbench --gate`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.problems {
            out.push_str(&format!("  problem: {p}\n"));
        }
        for e in &self.entries {
            if e.drift == 0.0 && !e.breach {
                continue;
            }
            let verdict = if e.breach { "FAIL" } else { "ok" };
            out.push_str(&format!(
                "  {:<44} {:>14} -> {:>14}  drift {:+8.3}%  {verdict}\n",
                e.key,
                trim_num(e.base),
                trim_num(e.cur),
                e.drift * 100.0
            ));
        }
        let breaches = self.breaches().count();
        if self.ok() {
            out.push_str(&format!(
                "obs-diff: ok — {} values within ±{:.1}% of baseline\n",
                self.entries.len(),
                self.threshold * 100.0
            ));
        } else {
            out.push_str(&format!(
                "obs-diff: FAIL — {} problem(s), {breaches} value(s) beyond ±{:.1}%\n",
                self.problems.len(),
                self.threshold * 100.0
            ));
        }
        out
    }
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        // Exact by the range check above.
        #[allow(clippy::cast_possible_truncation)]
        let i = v as i64;
        format!("{i}")
    } else {
        format!("{v:.4}")
    }
}

/// Collect the numeric leaves of an object as sorted `(key, value)`
/// pairs (`BTreeMap` iteration keeps this deterministic).
fn numeric_leaves(node: &Json) -> Vec<(String, f64)> {
    match node {
        Json::Obj(map) => {
            map.iter().filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n))).collect()
        }
        _ => Vec::new(),
    }
}

/// Compare one table of numeric leaves. `relative` selects relative
/// (integer totals) vs absolute (ratios) drift.
fn diff_table(
    prefix: &str,
    base: Option<&Json>,
    cur: Option<&Json>,
    relative: bool,
    opts: &DiffOptions,
    report: &mut DiffReport,
) {
    let (base, cur) = match (base, cur) {
        (Some(b), Some(c)) => (b, c),
        (None, None) => return,
        (Some(_), None) => {
            report.problems.push(format!("{prefix}: missing from candidate document"));
            return;
        }
        (None, Some(_)) => {
            report.problems.push(format!("{prefix}: missing from baseline document"));
            return;
        }
    };
    let bleaves = numeric_leaves(base);
    let cleaves = numeric_leaves(cur);
    let lookup = |leaves: &[(String, f64)], key: &str| {
        leaves.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    };
    for (key, bval) in &bleaves {
        let Some(cval) = lookup(&cleaves, key) else {
            report.problems.push(format!("{prefix}.{key}: missing from candidate document"));
            continue;
        };
        let drift = if relative {
            if *bval == 0.0 {
                if cval == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (cval - bval) / bval
            }
        } else {
            cval - bval
        };
        report.entries.push(DiffEntry {
            key: format!("{prefix}.{key}"),
            base: *bval,
            cur: cval,
            drift,
            breach: drift.abs() > opts.threshold,
        });
    }
    for (key, _) in &cleaves {
        if lookup(&bleaves, key).is_none() {
            report.problems.push(format!("{prefix}.{key}: missing from baseline document"));
        }
    }
}

/// The per-stage table exports full histograms; gate on each stage's
/// total simulated time (`sum`) — the "where the microseconds go" number.
fn stage_totals(doc: &Json) -> Option<Json> {
    let stages = doc.get("stages")?;
    let Json::Obj(map) = stages else { return None };
    let totals: std::collections::BTreeMap<String, Json> = map
        .iter()
        .filter_map(|(name, hist)| {
            hist.get("sum")
                .and_then(Json::as_f64)
                .map(|s| (format!("{name}.total_ns"), Json::Num(s)))
        })
        .collect();
    Some(Json::Obj(totals))
}

/// Compare two snapshot documents. `base` is the committed reference,
/// `cur` the regenerated candidate. Byte-identical documents always
/// produce an empty, passing report.
pub fn diff_snapshots(base: &Json, cur: &Json, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport { threshold: opts.threshold, ..DiffReport::default() };
    let schema = |d: &Json| d.get("schema").and_then(Json::as_str).map(str::to_string);
    match (schema(base), schema(cur)) {
        (Some(a), Some(b)) if a == b => {}
        (a, b) => report.problems.push(format!("schema mismatch: baseline {a:?}, candidate {b:?}")),
    }
    diff_table(
        "counters",
        base.get("totals").and_then(|t| t.get("counters")),
        cur.get("totals").and_then(|t| t.get("counters")),
        true,
        opts,
        &mut report,
    );
    diff_table(
        "derived",
        base.get("totals").and_then(|t| t.get("derived")),
        cur.get("totals").and_then(|t| t.get("derived")),
        false,
        opts,
        &mut report,
    );
    diff_table(
        "stages",
        stage_totals(base).as_ref(),
        stage_totals(cur).as_ref(),
        true,
        opts,
        &mut report,
    );
    let wear_tot = |d: &Json| {
        d.get("wear").map(|w| {
            let pick = |k: &str| w.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            Json::Obj(
                [("count", pick("count")), ("max", pick("max")), ("sum", pick("sum"))]
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(v)))
                    .collect(),
            )
        })
    };
    diff_table("wear", wear_tot(base).as_ref(), wear_tot(cur).as_ref(), true, opts, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RecorderConfig};
    use crate::registry::Log2Hist;
    use crate::ring::{Completion, HitClass, ReqKind};
    use crate::snapshot::Sample;
    use crate::stage::Stage;
    use kdd_util::SimTime;

    fn snapshot() -> Json {
        let r = Recorder::new(RecorderConfig::default());
        let mut c = Completion::new(ReqKind::Write, 7, HitClass::WriteHitDelta, SimTime(46_000));
        c.stages.add(Stage::DeltaEncode, SimTime(30_000));
        c.stages.add(Stage::RaidWrite, SimTime(16_000));
        r.record(c);
        let fin = Sample {
            at: r.now(),
            host_written_bytes: 4096,
            nand_written_bytes: 8192,
            ..Sample::default()
        };
        r.export(&fin, &Log2Hist::new()).expect("enabled")
    }

    #[test]
    fn identical_documents_pass_with_no_findings() {
        let a = snapshot();
        let b = crate::json::parse(&a.render()).expect("reparse");
        let report = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(report.ok(), "unexpected findings: {}", report.render());
        assert!(report.breaches().next().is_none());
        assert!(report.render().contains("obs-diff: ok"));
    }

    #[test]
    fn perturbed_stage_total_breaches_the_gate() {
        let a = snapshot();
        let text = a.render();
        // Inflate delta_encode's total well beyond the threshold (the
        // stage table renders "sum": 30000 once: in stages.delta_encode).
        let b =
            crate::json::parse(&text.replace("\"sum\": 30000", "\"sum\": 60000")).expect("parse");
        let report = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(!report.ok());
        let breach = report.breaches().find(|e| e.key == "stages.delta_encode.total_ns");
        let breach = breach.expect("stage total breach");
        assert_eq!(breach.base, 30_000.0);
        assert_eq!(breach.cur, 60_000.0);
        assert!(report.render().contains("obs-diff: FAIL"));
    }

    #[test]
    fn drift_within_threshold_passes_and_zero_baselines_flag_new_traffic() {
        let a = snapshot();
        let text = a.render();
        // cache.read_hits is 0 in both; make the candidate non-zero.
        let b =
            crate::json::parse(&text.replace("\"cache.read_hits\": 0", "\"cache.read_hits\": 5"))
                .expect("parse");
        let report = diff_snapshots(&a, &b, &DiffOptions { threshold: 0.5 });
        let e =
            report.entries.iter().find(|e| e.key == "counters.cache.read_hits").expect("compared");
        assert!(e.breach, "0 -> 5 must breach any finite threshold");
    }

    #[test]
    fn structural_divergence_is_a_problem_not_a_panic() {
        let a = snapshot();
        let b = crate::json::parse(r#"{"schema": "kdd-obs/v1", "totals": {"counters": {}}}"#)
            .expect("parse");
        let report = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(!report.ok());
        assert!(report.problems.iter().any(|p| p.contains("schema mismatch")));
        assert!(report.problems.iter().any(|p| p.contains("missing from candidate")));
    }
}
