//! Periodic samples and the versioned `kdd-obs` snapshot schema.
//!
//! A [`Sample`] is an all-integer point-in-time reading of the stack —
//! cache traffic, SSD endurance, stale-parity backlog, metadata-log
//! occupancy — keyed on *simulated* time so seeded replays produce
//! byte-identical timeseries (KDD003). Derived ratios (write
//! amplification, hit ratio, occupancy) are computed only at export via
//! [`crate::frac`], never accumulated in floating point (KDD007).

use crate::frac;
use crate::json::{obj, Json};
use kdd_util::SimTime;

/// Integer mirror of `kdd_cache::stats::CacheStats`.
///
/// `kdd-obs` sits below the cache crate in the dependency graph, so the
/// cache exports its totals through this struct (see
/// `CacheStats::counters()`) instead of the registry depending on the
/// cache types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names match CacheStats one-to-one
pub struct CacheCounters {
    pub read_hits: u64,
    pub read_misses: u64,
    pub write_hits: u64,
    pub write_misses: u64,
    pub ssd_data_writes: u64,
    pub ssd_delta_writes: u64,
    pub ssd_meta_writes: u64,
    pub ssd_reads: u64,
    pub raid_reads: u64,
    pub raid_writes: u64,
    pub evictions: u64,
    pub parity_updates: u64,
    pub cleanings: u64,
    pub faults_observed: u64,
    pub fault_retries: u64,
    pub fault_fallbacks: u64,
    pub torn_pages_detected: u64,
}

impl CacheCounters {
    /// Total requests folded into these counters.
    pub fn requests(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Hits (read + write) out of all requests.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total SSD page writes across data, delta and metadata classes.
    pub fn ssd_writes_pages(&self) -> u64 {
        self.ssd_data_writes + self.ssd_delta_writes + self.ssd_meta_writes
    }
}

/// One point on the snapshot timeseries. Every field is an integer read
/// from the stack at a simulated-time instant; ratios are derived at
/// export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Simulated time of the reading.
    pub at: SimTime,
    /// Cache traffic totals at this instant.
    pub cache: CacheCounters,
    /// Host bytes written to the SSD so far.
    pub host_written_bytes: u64,
    /// NAND bytes physically written (≥ host bytes; WAF numerator).
    pub nand_written_bytes: u64,
    /// Total block erases performed by the FTL.
    pub erases: u64,
    /// Largest per-block erase count (wear ceiling).
    pub max_erase: u64,
    /// RAID rows whose parity is currently stale.
    pub stale_rows: u64,
    /// Rows queued for the cleaner (the stale-parity backlog).
    pub backlog_rows: u64,
    /// Compressed deltas staged in NVRAM awaiting commit.
    pub staged_deltas: u64,
    /// Metadata-log pages currently occupied.
    pub metalog_pages_used: u64,
    /// Metadata-log capacity in pages.
    pub metalog_pages_total: u64,
}

impl Sample {
    /// Export as a flat JSON object with derived ratios attached.
    pub fn export(&self) -> Json {
        let c = &self.cache;
        obj(vec![
            ("at_ns", Json::Num(self.at.as_nanos() as f64)),
            ("requests", Json::Num(c.requests() as f64)),
            ("read_hits", Json::Num(c.read_hits as f64)),
            ("read_misses", Json::Num(c.read_misses as f64)),
            ("write_hits", Json::Num(c.write_hits as f64)),
            ("write_misses", Json::Num(c.write_misses as f64)),
            ("hit_ratio", Json::Num(frac(c.hits(), c.requests()))),
            ("ssd_reads", Json::Num(c.ssd_reads as f64)),
            ("ssd_data_writes", Json::Num(c.ssd_data_writes as f64)),
            ("ssd_delta_writes", Json::Num(c.ssd_delta_writes as f64)),
            ("ssd_meta_writes", Json::Num(c.ssd_meta_writes as f64)),
            ("metadata_fraction", Json::Num(frac(c.ssd_meta_writes, c.ssd_writes_pages()))),
            ("raid_reads", Json::Num(c.raid_reads as f64)),
            ("raid_writes", Json::Num(c.raid_writes as f64)),
            ("host_written_bytes", Json::Num(self.host_written_bytes as f64)),
            ("nand_written_bytes", Json::Num(self.nand_written_bytes as f64)),
            ("waf", Json::Num(frac(self.nand_written_bytes, self.host_written_bytes))),
            ("erases", Json::Num(self.erases as f64)),
            ("max_erase", Json::Num(self.max_erase as f64)),
            ("stale_rows", Json::Num(self.stale_rows as f64)),
            ("backlog_rows", Json::Num(self.backlog_rows as f64)),
            ("staged_deltas", Json::Num(self.staged_deltas as f64)),
            ("metalog_pages_used", Json::Num(self.metalog_pages_used as f64)),
            ("metalog_pages_total", Json::Num(self.metalog_pages_total as f64)),
            (
                "metalog_occupancy",
                Json::Num(frac(self.metalog_pages_used, self.metalog_pages_total)),
            ),
        ])
    }
}

/// Top-level keys every `kdd-obs/v1` snapshot must carry. `kdd-obs/v2`
/// additionally requires the `stages` table ([`V2_ONLY_KEYS`]).
pub const REQUIRED_KEYS: &[&str] = &["schema", "totals", "timeseries", "wear", "spans"];

/// Top-level keys required by `kdd-obs/v2` on top of [`REQUIRED_KEYS`].
pub const V2_ONLY_KEYS: &[&str] = &["stages"];

/// Schema versions [`validate_snapshot`] accepts.
pub const ACCEPTED_SCHEMAS: &[&str] = &[crate::SCHEMA_V1, crate::SCHEMA];

/// Validate a `kdd-obs` snapshot document: schema stamp, required
/// top-level keys, metric tables under `totals`, per-stage tables (v2),
/// and a non-empty timeseries. Returns a list of problems (empty =
/// valid).
///
/// Both `kdd-obs/v1` and `kdd-obs/v2` documents are accepted, each
/// checked against its own key set. Any other schema stamp returns a
/// single "schema version mismatch" diagnostic naming the accepted
/// versions — not a misleading field-by-field failure list for a
/// document we never understood in the first place.
pub fn validate_snapshot(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let schema = doc.get("schema").and_then(Json::as_str);
    let v2 = match schema {
        Some(s) if s == crate::SCHEMA => true,
        Some(s) if s == crate::SCHEMA_V1 => false,
        other => {
            return vec![format!(
                "schema version mismatch: found {other:?}, accepted versions are {:?} and {:?}",
                crate::SCHEMA_V1,
                crate::SCHEMA
            )];
        }
    };
    for key in REQUIRED_KEYS {
        if doc.get(key).is_none() {
            problems.push(format!("{key}: missing"));
        }
    }
    if v2 {
        for key in V2_ONLY_KEYS {
            if doc.get(key).is_none() {
                problems.push(format!("{key}: missing (required by {})", crate::SCHEMA));
            }
        }
        if let Some(Json::Obj(stages)) = doc.get("stages") {
            for (name, hist) in stages {
                for field in ["count", "sum", "max", "buckets"] {
                    if hist.get(field).is_none() {
                        problems.push(format!("stages.{name}.{field}: missing"));
                    }
                }
            }
        } else if doc.get("stages").is_some() {
            problems.push("stages: not an object".to_string());
        }
    }
    if let Some(totals) = doc.get("totals") {
        for table in ["counters", "gauges", "hists", "derived"] {
            if totals.get(table).is_none() {
                problems.push(format!("totals.{table}: missing"));
            }
        }
    }
    match doc.get("timeseries").and_then(Json::as_arr) {
        Some([]) => problems.push("timeseries: empty".to_string()),
        Some(_) => {}
        None => {
            if doc.get("timeseries").is_some() {
                problems.push("timeseries: not an array".to_string());
            }
        }
    }
    if let Some(spans) = doc.get("spans") {
        for key in ["pushed", "dropped", "events"] {
            if spans.get(key).is_none() {
                problems.push(format!("spans.{key}: missing"));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios_handle_zero_denominators() {
        let s = Sample::default();
        let doc = s.export();
        assert_eq!(doc.get("hit_ratio").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("waf").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("metadata_fraction").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("metalog_occupancy").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn validator_flags_missing_keys() {
        let text = format!(r#"{{"schema": "{}", "totals": {{}}}}"#, crate::SCHEMA);
        let doc = crate::json::parse(&text).expect("parse");
        let problems = validate_snapshot(&doc);
        assert!(problems.iter().any(|p| p.contains("timeseries: missing")));
        assert!(problems.iter().any(|p| p.contains("wear: missing")));
        assert!(problems.iter().any(|p| p.contains("spans: missing")));
        assert!(problems.iter().any(|p| p.contains("stages: missing")));
        assert!(problems.iter().any(|p| p.contains("totals.counters")));
    }

    #[test]
    fn unknown_schema_yields_one_named_version_mismatch() {
        let doc = crate::json::parse(r#"{"schema": "bogus/v0", "totals": {}}"#).expect("parse");
        let problems = validate_snapshot(&doc);
        assert_eq!(problems.len(), 1, "no field-list noise for a foreign document");
        let p = problems.first().expect("one problem");
        assert!(p.contains("schema version mismatch"), "got: {p}");
        assert!(p.contains("bogus/v0") && p.contains("kdd-obs/v1") && p.contains("kdd-obs/v2"));
    }

    #[test]
    fn v1_documents_are_still_accepted_without_stages() {
        let text = r#"{
            "schema": "kdd-obs/v1",
            "totals": {"counters": {}, "gauges": {}, "hists": {}, "derived": {}},
            "timeseries": [{"at_ns": 0}],
            "wear": {"count": 0, "sum": 0, "max": 0, "buckets": []},
            "spans": {"pushed": 0, "dropped": 0, "events": []}
        }"#;
        let doc = crate::json::parse(text).expect("parse");
        assert_eq!(validate_snapshot(&doc), Vec::<String>::new());
    }
}
