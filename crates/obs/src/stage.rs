//! The pipeline-stage taxonomy and per-request stage-time accumulator.
//!
//! A request's service time is opaque in `kdd-obs/v1`: one number, no
//! attribution. The [`Stage`] taxonomy names every place simulated time
//! is spent — cache lookup, delta codec, staging/NVRAM, metadata-log
//! commit, RAID member-disk traffic, parity maintenance, cleaner and
//! group-commit work — and [`StageTimes`] accumulates nanoseconds per
//! stage as child spans of the request that spent them. The conservation
//! invariant (enforced in tests): the sum of a span's stage times never
//! exceeds its service time, because every stage charge is a discrete
//! increment of the same simulated clock.
//!
//! Accumulation is integer-only (KDD007) and the accumulator is a flat
//! `Copy` array, so instrumenting a hot path costs a bounds-checked add
//! and no allocation (KDD006).

use crate::json::Json;
use kdd_util::SimTime;
use std::collections::BTreeMap;

/// Where simulated time is spent while serving requests.
///
/// Foreground stages are charged as child spans of the request that
/// incurred them; [`Stage::CleanerPass`] and [`Stage::GroupCommitFlush`]
/// also name first-class *background* spans (work done outside any one
/// request: explicit cleaner passes, deferred metalog group flushes,
/// recovery). [`Stage::as_str`] names are part of the `kdd-obs/v2`
/// schema and cross-checked by the KDD011 lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Cache index probe. Charged zero simulated time by the current
    /// cost model; reserved so the schema already names it.
    CacheLookup,
    /// XOR-delta compression of a write hit (CPU cost).
    DeltaEncode,
    /// Delta decompression + combine on a cached-read hit (CPU cost).
    DeltaDecode,
    /// SSD page reads (cache data, DEZ pages, metadata).
    SsdRead,
    /// SSD page writes filling or evicting cache data pages.
    SsdWrite,
    /// Packing staged deltas into DEZ pages and persisting them.
    StagingCommit,
    /// Metadata-log page persistence (mapping commits).
    MetalogCommit,
    /// RAID member-disk reads on the miss / pass-through path.
    RaidRead,
    /// RAID member-disk data writes (write-through, delta write-back).
    RaidWrite,
    /// Parity maintenance for stale rows (RMW or full-row rewrite).
    ParityRmw,
    /// Degraded-mode reconstruction, resync and rebuild traffic.
    RaidReconstruct,
    /// A cleaner pass over the stale-parity backlog (background span).
    CleanerPass,
    /// A deferred metalog group-commit flush (background span).
    GroupCommitFlush,
}

impl Stage {
    /// Every stage, in export order.
    pub const ALL: [Stage; 13] = [
        Stage::CacheLookup,
        Stage::DeltaEncode,
        Stage::DeltaDecode,
        Stage::SsdRead,
        Stage::SsdWrite,
        Stage::StagingCommit,
        Stage::MetalogCommit,
        Stage::RaidRead,
        Stage::RaidWrite,
        Stage::ParityRmw,
        Stage::RaidReconstruct,
        Stage::CleanerPass,
        Stage::GroupCommitFlush,
    ];

    /// Number of stages (the length of [`Stage::ALL`]).
    pub const COUNT: usize = Stage::ALL.len();

    /// Stable snake_case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::CacheLookup => "cache_lookup",
            Stage::DeltaEncode => "delta_encode",
            Stage::DeltaDecode => "delta_decode",
            Stage::SsdRead => "ssd_read",
            Stage::SsdWrite => "ssd_write",
            Stage::StagingCommit => "staging_commit",
            Stage::MetalogCommit => "metalog_commit",
            Stage::RaidRead => "raid_read",
            Stage::RaidWrite => "raid_write",
            Stage::ParityRmw => "parity_rmw",
            Stage::RaidReconstruct => "raid_reconstruct",
            Stage::CleanerPass => "cleaner_pass",
            Stage::GroupCommitFlush => "group_commit_flush",
        }
    }

    /// Dense index into per-stage tables (position in [`Stage::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Stage::CacheLookup => 0,
            Stage::DeltaEncode => 1,
            Stage::DeltaDecode => 2,
            Stage::SsdRead => 3,
            Stage::SsdWrite => 4,
            Stage::StagingCommit => 5,
            Stage::MetalogCommit => 6,
            Stage::RaidRead => 7,
            Stage::RaidWrite => 8,
            Stage::ParityRmw => 9,
            Stage::RaidReconstruct => 10,
            Stage::CleanerPass => 11,
            Stage::GroupCommitFlush => 12,
        }
    }
}

/// Per-span stage-time accumulator: nanoseconds spent in each [`Stage`].
///
/// `Copy` and allocation-free so it can ride inside
/// [`crate::Completion`] through the span ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTimes {
    ns: [u64; Stage::COUNT],
}

impl Default for StageTimes {
    fn default() -> Self {
        Self::new()
    }
}

impl StageTimes {
    /// An all-zero accumulator.
    pub fn new() -> Self {
        StageTimes { ns: [0; Stage::COUNT] }
    }

    /// Charge `dt` of simulated time to `stage`.
    pub fn add(&mut self, stage: Stage, dt: SimTime) {
        if let Some(slot) = self.ns.get_mut(stage.index()) {
            *slot = slot.saturating_add(dt.as_nanos());
        }
    }

    /// Nanoseconds charged to `stage` so far.
    pub fn get(&self, stage: Stage) -> u64 {
        self.ns.get(stage.index()).copied().unwrap_or(0)
    }

    /// Saturating sum of all stage charges, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().fold(0u64, |acc, v| acc.saturating_add(*v))
    }

    /// True when no stage has been charged.
    pub fn is_zero(&self) -> bool {
        self.ns.iter().all(|v| *v == 0)
    }

    /// Fold every charge in `other` into `self`.
    pub fn merge(&mut self, other: &StageTimes) {
        for stage in Stage::ALL {
            let dt = other.get(stage);
            if dt > 0 {
                if let Some(slot) = self.ns.get_mut(stage.index()) {
                    *slot = slot.saturating_add(dt);
                }
            }
        }
    }

    /// Iterate the stages with a non-zero charge, in [`Stage::ALL`] order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL.into_iter().filter_map(|s| {
            let ns = self.get(s);
            (ns > 0).then_some((s, ns))
        })
    }

    /// Export as `{stage_name: ns, ...}` with only non-zero stages listed.
    pub fn export(&self) -> Json {
        let map: BTreeMap<String, Json> = self
            .iter_nonzero()
            .map(|(s, ns)| (s.as_str().to_string(), Json::Num(ns as f64)))
            .collect();
        Json::Obj(map)
    }

    /// Guard that attributes every advance of `clock` inside its scope to
    /// `stage` — see [`StageGuard`].
    pub fn guard<'a>(&'a mut self, stage: Stage, clock: &'a mut SimTime) -> StageGuard<'a> {
        let start = *clock;
        StageGuard { stage, start, clock, times: self }
    }
}

/// Scope guard charging simulated-time advances to one stage.
///
/// Created by [`StageTimes::guard`] (or [`crate::Recorder::stage`]): it
/// snapshots the clock on entry, hands the clock back out through
/// [`StageGuard::clock`], and on drop charges whatever the scope added
/// to the clock to its stage. Purely arithmetic — cheap enough to wrap
/// hot paths even when the recorder is disabled.
#[derive(Debug)]
pub struct StageGuard<'a> {
    stage: Stage,
    start: SimTime,
    clock: &'a mut SimTime,
    times: &'a mut StageTimes,
}

impl StageGuard<'_> {
    /// The simulated clock being watched; advance it as usual inside the
    /// guarded scope.
    pub fn clock(&mut self) -> &mut SimTime {
        self.clock
    }
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        let dt = self.clock.saturating_sub(self.start);
        if dt > SimTime::ZERO {
            self.times.add(self.stage, dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_match_all_order() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i, "{:?} index must match its ALL position", s);
            assert!(seen.insert(s.as_str()), "duplicate stage name {:?}", s.as_str());
        }
        assert_eq!(seen.len(), Stage::COUNT);
    }

    #[test]
    fn accumulator_adds_merges_and_exports_nonzero_only() {
        let mut a = StageTimes::new();
        assert!(a.is_zero());
        a.add(Stage::DeltaEncode, SimTime::from_micros(30));
        a.add(Stage::DeltaEncode, SimTime::from_micros(30));
        a.add(Stage::RaidWrite, SimTime::from_micros(16));
        let mut b = StageTimes::new();
        b.add(Stage::RaidWrite, SimTime::from_micros(4));
        b.add(Stage::MetalogCommit, SimTime::from_micros(1));
        a.merge(&b);
        assert_eq!(a.get(Stage::DeltaEncode), 60_000);
        assert_eq!(a.get(Stage::RaidWrite), 20_000);
        assert_eq!(a.get(Stage::MetalogCommit), 1_000);
        assert_eq!(a.total_ns(), 81_000);
        let doc = a.export();
        assert_eq!(doc.get("delta_encode").and_then(Json::as_f64), Some(60_000.0));
        assert!(doc.get("cache_lookup").is_none(), "zero stages are not exported");
    }

    #[test]
    fn guard_charges_clock_advances_to_its_stage() {
        let mut times = StageTimes::new();
        let mut t = SimTime::from_micros(5);
        {
            let mut g = times.guard(Stage::SsdRead, &mut t);
            *g.clock() += SimTime::from_micros(7);
        }
        {
            // A scope that does not advance the clock charges nothing.
            let mut g = times.guard(Stage::RaidRead, &mut t);
            let _ = g.clock();
        }
        assert_eq!(t, SimTime::from_micros(12));
        assert_eq!(times.get(Stage::SsdRead), 7_000);
        assert_eq!(times.get(Stage::RaidRead), 0);
    }
}
