//! `kdd-obs` — deterministic observability for the KDD reproduction.
//!
//! The paper's claims are quantitative (SSD write traffic saved, erase
//! cycles avoided, stale-parity cleaning kept off the critical path), so
//! the stack needs a single place where those numbers are collected and
//! exported. This crate provides three pieces:
//!
//! * [`registry`] — typed counters/gauges/[`Log2Hist`] histograms keyed
//!   by `&'static str` (no `String` allocation on hot paths), exported in
//!   `BTreeMap` order for byte-stable output;
//! * [`ring`] — structured I/O lifecycle spans ([`Completion`] →
//!   [`SpanEvent`]) and first-class background spans captured into a
//!   bounded [`SpanRing`];
//! * [`stage`] — the [`Stage`] taxonomy and the [`StageTimes`]
//!   accumulator attributing each span's service time to child stages
//!   (latency attribution, `kdd-obs/v2`);
//! * [`snapshot`] — periodic [`Sample`]s keyed on *simulated* time and
//!   the versioned snapshot document, validated by [`validate_snapshot`]
//!   (v1 and v2 accepted);
//! * [`trace`] — a deterministic Chrome trace-event / Perfetto exporter
//!   over the span ring ([`trace_events`]);
//! * [`diff`] — the thresholded snapshot differ behind `kddtool
//!   obs-diff` ([`diff_snapshots`]).
//!
//! Everything funnels through a cloneable [`Recorder`] handle that
//! defaults to a no-op sink: when disabled, each call is one branch on an
//! `Option`, so instrumented hot paths keep their perf trajectory.
//!
//! Determinism rules (KDD003/KDD007): the recorder never reads a wall
//! clock — all timestamps are simulated time supplied by the caller —
//! and all accumulation is integer-only, with floats derived once at
//! export via [`frac`]. Two seeded replays therefore produce
//! byte-identical snapshots.

pub mod diff;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod snapshot;
pub mod stage;
pub mod trace;

pub use diff::{diff_snapshots, DiffEntry, DiffOptions, DiffReport};
pub use json::Json;
pub use recorder::{Recorder, RecorderConfig};
pub use registry::{CounterId, GaugeId, HistId, Log2Hist, Registry};
pub use ring::{BackgroundSpan, Completion, HitClass, ReqKind, SpanBody, SpanEvent, SpanRing};
pub use snapshot::{validate_snapshot, CacheCounters, Sample};
pub use stage::{Stage, StageGuard, StageTimes};
pub use trace::trace_events;

/// Schema identifier stamped into every snapshot document.
pub const SCHEMA: &str = "kdd-obs/v2";

/// The previous schema version, still accepted by [`validate_snapshot`].
pub const SCHEMA_V1: &str = "kdd-obs/v1";

/// The one place ratio math lives: `num / den`, returning 0.0 uniformly
/// when the denominator is zero. `CacheStats::hit_ratio`,
/// `metadata_fraction`, WAF and occupancy all route through here.
pub fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frac_returns_zero_on_empty_denominator() {
        assert_eq!(frac(0, 0), 0.0);
        assert_eq!(frac(5, 0), 0.0);
        assert_eq!(frac(1, 2), 0.5);
        assert_eq!(frac(3, 3), 1.0);
    }
}
