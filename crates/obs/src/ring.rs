//! I/O lifecycle spans and the bounded ring buffer that captures them.
//!
//! Each engine/simulator request produces one [`Completion`]; the
//! recorder stamps it with simulated-time enter/exit and a sequence
//! number to form a [`SpanEvent`]. Background work that belongs to no
//! single request — cleaner passes, deferred metalog group flushes,
//! recovery — is captured as first-class [`BackgroundSpan`]s on the same
//! ring. Events land in a fixed-capacity [`SpanRing`] — the newest N
//! survive, and the number of overwritten events is reported so a
//! truncated trace is never mistaken for a complete one.

use crate::json::{obj, Json};
use crate::stage::{Stage, StageTimes};
use kdd_util::SimTime;

/// Direction of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A host read.
    Read,
    /// A host write.
    Write,
}

impl ReqKind {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            ReqKind::Read => "read",
            ReqKind::Write => "write",
        }
    }
}

/// How the cache serviced a request — the KDD hit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitClass {
    /// Read served from the SSD cache.
    ReadHit,
    /// Read missed the cache and went to the RAID array.
    ReadMiss,
    /// Write hit the cache (class not further refined).
    WriteHit,
    /// Write hit stored as a compressed XOR delta (DEZ page), parity left
    /// stale for the cleaner — the paper's §III-C fast path.
    WriteHitDelta,
    /// Write hit that fell back to a full write-through (incompressible
    /// delta or staging full).
    WriteHitThrough,
    /// Write missed the cache.
    WriteMiss,
    /// Request bypassed the cache entirely (degraded pass-through mode).
    PassThrough,
}

impl HitClass {
    /// Stable snake_case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            HitClass::ReadHit => "read_hit",
            HitClass::ReadMiss => "read_miss",
            HitClass::WriteHit => "write_hit",
            HitClass::WriteHitDelta => "write_hit_delta",
            HitClass::WriteHitThrough => "write_hit_through",
            HitClass::WriteMiss => "write_miss",
            HitClass::PassThrough => "pass_through",
        }
    }
}

/// Everything observed about one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Read or write.
    pub kind: ReqKind,
    /// Logical block address of the request.
    pub lba: u64,
    /// Hit classification.
    pub class: HitClass,
    /// Simulated service time.
    pub service: SimTime,
    /// SSD page reads performed on behalf of this request.
    pub ssd_reads: u32,
    /// SSD page writes (data + delta + metadata) for this request.
    pub ssd_writes: u32,
    /// RAID member-disk reads for this request.
    pub raid_reads: u32,
    /// RAID member-disk writes for this request.
    pub raid_writes: u32,
    /// Delta-compression ratio in milli-units (compressed size × 1000 /
    /// page size); 0 when no delta was produced.
    pub comp_milli: u32,
    /// Faults observed while serving this request.
    pub faults: u32,
    /// Retries performed while serving this request.
    pub retries: u32,
    /// Per-stage attribution of the service time (child spans). The sum
    /// never exceeds `service` — the conservation invariant.
    pub stages: StageTimes,
}

impl Completion {
    /// A zeroed completion for `kind`/`lba`/`class`/`service`; callers
    /// fill in the traffic, fault and stage fields they know.
    pub fn new(kind: ReqKind, lba: u64, class: HitClass, service: SimTime) -> Self {
        Completion {
            kind,
            lba,
            class,
            service,
            ssd_reads: 0,
            ssd_writes: 0,
            raid_reads: 0,
            raid_writes: 0,
            comp_milli: 0,
            faults: 0,
            retries: 0,
            stages: StageTimes::new(),
        }
    }
}

/// One unit of background work (no owning request): a cleaner pass, a
/// deferred group-commit flush, a recovery action. The `stage` names the
/// wrapper; `stages` attributes the time spent inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundSpan {
    /// The background stage this span represents.
    pub stage: Stage,
    /// Simulated duration of the pass.
    pub service: SimTime,
    /// Per-stage attribution of the work done inside the pass.
    pub stages: StageTimes,
}

/// What a span on the ring describes: a host request or background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanBody {
    /// A completed host request.
    Request(Completion),
    /// A completed background pass.
    Background(BackgroundSpan),
}

/// A span stamped with its position in the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// 1-based event sequence number (requests and background spans share
    /// one sequence).
    pub seq: u64,
    /// Simulated time the work started.
    pub enter: SimTime,
    /// Simulated time the work completed.
    pub exit: SimTime,
    /// What the span describes.
    pub body: SpanBody,
}

impl SpanEvent {
    /// The request completion, when this span is one.
    pub fn completion(&self) -> Option<&Completion> {
        match &self.body {
            SpanBody::Request(c) => Some(c),
            SpanBody::Background(_) => None,
        }
    }

    /// Export as a flat JSON object. Requests carry the full traffic
    /// breakdown; background spans carry `kind: "background"` and use the
    /// stage name as their class.
    pub fn export(&self) -> Json {
        match &self.body {
            SpanBody::Request(c) => obj(vec![
                ("seq", Json::Num(self.seq as f64)),
                ("enter_ns", Json::Num(self.enter.as_nanos() as f64)),
                ("exit_ns", Json::Num(self.exit.as_nanos() as f64)),
                ("kind", Json::Str(c.kind.as_str().to_string())),
                ("lba", Json::Num(c.lba as f64)),
                ("class", Json::Str(c.class.as_str().to_string())),
                ("service_ns", Json::Num(c.service.as_nanos() as f64)),
                ("ssd_reads", Json::Num(f64::from(c.ssd_reads))),
                ("ssd_writes", Json::Num(f64::from(c.ssd_writes))),
                ("raid_reads", Json::Num(f64::from(c.raid_reads))),
                ("raid_writes", Json::Num(f64::from(c.raid_writes))),
                ("comp_milli", Json::Num(f64::from(c.comp_milli))),
                ("faults", Json::Num(f64::from(c.faults))),
                ("retries", Json::Num(f64::from(c.retries))),
                ("stages", c.stages.export()),
            ]),
            SpanBody::Background(b) => obj(vec![
                ("seq", Json::Num(self.seq as f64)),
                ("enter_ns", Json::Num(self.enter.as_nanos() as f64)),
                ("exit_ns", Json::Num(self.exit.as_nanos() as f64)),
                ("kind", Json::Str("background".to_string())),
                ("class", Json::Str(b.stage.as_str().to_string())),
                ("service_ns", Json::Num(b.service.as_nanos() as f64)),
                ("stages", b.stages.export()),
            ]),
        }
    }
}

/// Fixed-capacity ring of the most recent [`SpanEvent`]s.
#[derive(Debug, Clone)]
pub struct SpanRing {
    events: Vec<SpanEvent>,
    cap: usize,
    next: usize,
    pushed: u64,
}

impl SpanRing {
    /// A ring holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SpanRing { events: Vec::with_capacity(cap), cap, next: 0, pushed: 0 }
    }

    /// Append an event, overwriting the oldest once full.
    pub fn push(&mut self, e: SpanEvent) {
        if self.events.len() < self.cap {
            self.events.push(e);
        } else if let Some(slot) = self.events.get_mut(self.next) {
            *slot = e;
        }
        self.next = (self.next + 1) % self.cap;
        self.pushed += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.pushed.saturating_sub(self.events.len() as u64)
    }

    /// Ring capacity (events retained once full).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Iterate the retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        let split = if self.events.len() < self.cap { 0 } else { self.next };
        let (tail, head) = (
            self.events.get(split..).unwrap_or_default(),
            self.events.get(..split).unwrap_or_default(),
        );
        tail.iter().chain(head.iter())
    }

    /// Export as `{pushed, dropped, capacity, events: [...]}`.
    pub fn export(&self) -> Json {
        obj(vec![
            ("pushed", Json::Num(self.pushed as f64)),
            ("dropped", Json::Num(self.dropped() as f64)),
            ("capacity", Json::Num(self.cap as f64)),
            ("events", Json::Arr(self.iter().map(SpanEvent::export).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> SpanEvent {
        SpanEvent {
            seq,
            enter: SimTime(seq * 10),
            exit: SimTime(seq * 10 + 5),
            body: SpanBody::Request(Completion::new(
                ReqKind::Read,
                seq,
                HitClass::ReadHit,
                SimTime(5),
            )),
        }
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops() {
        let mut r = SpanRing::new(4);
        for s in 1..=10u64 {
            r.push(ev(s));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.dropped(), 6);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest-first, newest retained");
    }

    #[test]
    fn ring_below_capacity_drops_nothing() {
        let mut r = SpanRing::new(8);
        for s in 1..=3u64 {
            r.push(ev(s));
        }
        assert_eq!(r.dropped(), 0);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = SpanRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn background_spans_export_stage_name_as_class() {
        let mut stages = StageTimes::new();
        stages.add(Stage::ParityRmw, SimTime::from_micros(40));
        let e = SpanEvent {
            seq: 7,
            enter: SimTime(100),
            exit: SimTime(40_100),
            body: SpanBody::Background(BackgroundSpan {
                stage: Stage::CleanerPass,
                service: SimTime(40_000),
                stages,
            }),
        };
        let doc = e.export();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("background"));
        assert_eq!(doc.get("class").and_then(Json::as_str), Some("cleaner_pass"));
        assert_eq!(
            doc.get("stages").and_then(|s| s.get("parity_rmw")).and_then(Json::as_f64),
            Some(40_000.0)
        );
        assert!(doc.get("lba").is_none(), "background spans have no request fields");
    }
}
