//! The [`Recorder`] handle: the one type the rest of the stack talks to.
//!
//! A recorder is either *disabled* — the default, a `None` inside, so
//! every call is a branch and an immediate return — or *enabled*, a
//! shared handle (`Arc<Mutex<..>>`, mirroring `FaultInjector`) over the
//! metrics registry, span ring, per-stage latency histograms and sample
//! timeseries. The mutex is poison-recovering: observability must never
//! take down an I/O path.
//!
//! All time here is *simulated* time supplied by the instrumented
//! component; the recorder never reads a clock itself (KDD003/KDD007).

use crate::frac;
use crate::json::{obj, Json};
use crate::registry::{CounterId, GaugeId, HistId, Log2Hist, Registry};
use crate::ring::{BackgroundSpan, Completion, ReqKind, SpanBody, SpanEvent, SpanRing};
use crate::snapshot::{CacheCounters, Sample};
use crate::stage::{Stage, StageGuard, StageTimes};
use kdd_util::SimTime;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Configuration for an enabled recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Simulated-time spacing between periodic samples.
    pub sample_interval: SimTime,
    /// Capacity of the span ring buffer.
    pub ring_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { sample_interval: SimTime::from_micros(250_000), ring_capacity: 256 }
    }
}

/// Pre-registered ids for every metric the stack emits, so hot-path
/// updates are index stores with no key lookup.
#[derive(Debug, Clone, Copy)]
struct Ids {
    // Counters mirrored from CacheStats.
    read_hits: CounterId,
    read_misses: CounterId,
    write_hits: CounterId,
    write_misses: CounterId,
    evictions: CounterId,
    cleanings: CounterId,
    parity_updates: CounterId,
    ssd_reads: CounterId,
    ssd_data_writes: CounterId,
    ssd_delta_writes: CounterId,
    ssd_meta_writes: CounterId,
    raid_reads: CounterId,
    raid_writes: CounterId,
    faults_observed: CounterId,
    fault_retries: CounterId,
    fault_fallbacks: CounterId,
    torn_pages: CounterId,
    // Recorder-owned counters.
    requests: CounterId,
    background_spans: CounterId,
    // Gauges refreshed from the latest sample.
    backlog_rows: GaugeId,
    stale_rows: GaugeId,
    staged_deltas: GaugeId,
    metalog_pages_used: GaugeId,
    metalog_pages_total: GaugeId,
    erases: GaugeId,
    max_erase: GaugeId,
    host_written_bytes: GaugeId,
    nand_written_bytes: GaugeId,
    // Histograms.
    lat_read_ns: HistId,
    lat_write_ns: HistId,
    comp_milli: HistId,
}

impl Ids {
    fn register(r: &mut Registry) -> Ids {
        Ids {
            read_hits: r.register_counter("cache.read_hits"),
            read_misses: r.register_counter("cache.read_misses"),
            write_hits: r.register_counter("cache.write_hits"),
            write_misses: r.register_counter("cache.write_misses"),
            evictions: r.register_counter("cache.evictions"),
            cleanings: r.register_counter("cleaner.cleanings"),
            parity_updates: r.register_counter("cleaner.parity_updates"),
            ssd_reads: r.register_counter("ssd.reads"),
            ssd_data_writes: r.register_counter("ssd.data_writes"),
            ssd_delta_writes: r.register_counter("ssd.delta_writes"),
            ssd_meta_writes: r.register_counter("ssd.meta_writes"),
            raid_reads: r.register_counter("raid.reads"),
            raid_writes: r.register_counter("raid.writes"),
            faults_observed: r.register_counter("faults.observed"),
            fault_retries: r.register_counter("faults.retries"),
            fault_fallbacks: r.register_counter("faults.fallbacks"),
            torn_pages: r.register_counter("recovery.torn_pages"),
            requests: r.register_counter("obs.requests"),
            background_spans: r.register_counter("obs.background_spans"),
            backlog_rows: r.register_gauge("cleaner.backlog_rows"),
            stale_rows: r.register_gauge("raid.stale_rows"),
            staged_deltas: r.register_gauge("nvram.staged_deltas"),
            metalog_pages_used: r.register_gauge("metalog.pages_used"),
            metalog_pages_total: r.register_gauge("metalog.pages_total"),
            erases: r.register_gauge("ssd.erases"),
            max_erase: r.register_gauge("ssd.max_erase"),
            host_written_bytes: r.register_gauge("ssd.host_written_bytes"),
            nand_written_bytes: r.register_gauge("ssd.nand_written_bytes"),
            lat_read_ns: r.register_hist("lat.read_ns"),
            lat_write_ns: r.register_hist("lat.write_ns"),
            comp_milli: r.register_hist("delta.comp_milli"),
        }
    }
}

#[derive(Debug)]
struct ObsCore {
    registry: Registry,
    ids: Ids,
    ring: SpanRing,
    /// Per-stage latency histograms indexed by [`Stage::index`]: one
    /// observation per span that charged the stage, in nanoseconds.
    stage_hists: Vec<Log2Hist>,
    samples: Vec<Sample>,
    interval: SimTime,
    now: SimTime,
    next_sample: SimTime,
    seq: u64,
}

impl ObsCore {
    fn observe_stages(&mut self, stages: &StageTimes) {
        for (stage, ns) in stages.iter_nonzero() {
            if let Some(h) = self.stage_hists.get_mut(stage.index()) {
                h.observe(ns);
            }
        }
    }

    fn note(&mut self, c: Completion, enter: SimTime, exit: SimTime) -> bool {
        self.seq += 1;
        self.registry.add(self.ids.requests, 1);
        match c.kind {
            ReqKind::Read => self.registry.observe(self.ids.lat_read_ns, c.service.as_nanos()),
            ReqKind::Write => self.registry.observe(self.ids.lat_write_ns, c.service.as_nanos()),
        }
        if c.comp_milli > 0 {
            self.registry.observe(self.ids.comp_milli, u64::from(c.comp_milli));
        }
        self.observe_stages(&c.stages);
        self.ring.push(SpanEvent { seq: self.seq, enter, exit, body: SpanBody::Request(c) });
        self.now >= self.next_sample
    }

    fn note_background(&mut self, b: BackgroundSpan, enter: SimTime, exit: SimTime) -> bool {
        self.seq += 1;
        self.registry.add(self.ids.background_spans, 1);
        // The wrapper itself is an observation of its own stage; the
        // inner breakdown lands in the per-stage histograms too.
        if let Some(h) = self.stage_hists.get_mut(b.stage.index()) {
            h.observe(b.service.as_nanos());
        }
        self.observe_stages(&b.stages);
        self.ring.push(SpanEvent { seq: self.seq, enter, exit, body: SpanBody::Background(b) });
        self.now >= self.next_sample
    }

    fn sync_cache(&mut self, c: &CacheCounters) {
        let ids = self.ids;
        let r = &mut self.registry;
        r.set_counter(ids.read_hits, c.read_hits);
        r.set_counter(ids.read_misses, c.read_misses);
        r.set_counter(ids.write_hits, c.write_hits);
        r.set_counter(ids.write_misses, c.write_misses);
        r.set_counter(ids.evictions, c.evictions);
        r.set_counter(ids.cleanings, c.cleanings);
        r.set_counter(ids.parity_updates, c.parity_updates);
        r.set_counter(ids.ssd_reads, c.ssd_reads);
        r.set_counter(ids.ssd_data_writes, c.ssd_data_writes);
        r.set_counter(ids.ssd_delta_writes, c.ssd_delta_writes);
        r.set_counter(ids.ssd_meta_writes, c.ssd_meta_writes);
        r.set_counter(ids.raid_reads, c.raid_reads);
        r.set_counter(ids.raid_writes, c.raid_writes);
        r.set_counter(ids.faults_observed, c.faults_observed);
        r.set_counter(ids.fault_retries, c.fault_retries);
        r.set_counter(ids.fault_fallbacks, c.fault_fallbacks);
        r.set_counter(ids.torn_pages, c.torn_pages_detected);
    }

    fn refresh_gauges(&mut self, s: &Sample) {
        let to_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let ids = self.ids;
        let r = &mut self.registry;
        r.set_gauge(ids.backlog_rows, to_i64(s.backlog_rows));
        r.set_gauge(ids.stale_rows, to_i64(s.stale_rows));
        r.set_gauge(ids.staged_deltas, to_i64(s.staged_deltas));
        r.set_gauge(ids.metalog_pages_used, to_i64(s.metalog_pages_used));
        r.set_gauge(ids.metalog_pages_total, to_i64(s.metalog_pages_total));
        r.set_gauge(ids.erases, to_i64(s.erases));
        r.set_gauge(ids.max_erase, to_i64(s.max_erase));
        r.set_gauge(ids.host_written_bytes, to_i64(s.host_written_bytes));
        r.set_gauge(ids.nand_written_bytes, to_i64(s.nand_written_bytes));
    }

    fn derived(&self, fin: &Sample) -> Json {
        let c = &fin.cache;
        obj(vec![
            ("cache.hit_ratio", Json::Num(frac(c.hits(), c.requests()))),
            ("cache.read_hit_ratio", Json::Num(frac(c.read_hits, c.read_hits + c.read_misses))),
            ("cache.metadata_fraction", Json::Num(frac(c.ssd_meta_writes, c.ssd_writes_pages()))),
            ("ssd.waf", Json::Num(frac(fin.nand_written_bytes, fin.host_written_bytes))),
            ("metalog.occupancy", Json::Num(frac(fin.metalog_pages_used, fin.metalog_pages_total))),
        ])
    }

    /// Export the per-stage table: every declared stage (stable schema),
    /// each as its `Log2Hist` `{count, sum, max, buckets}` where `sum` is
    /// total simulated nanoseconds charged to the stage.
    fn export_stages(&self) -> Json {
        let map: BTreeMap<String, Json> = Stage::ALL
            .into_iter()
            .map(|s| {
                let hist = self.stage_hists.get(s.index()).cloned().unwrap_or_default().export();
                (s.as_str().to_string(), hist)
            })
            .collect();
        Json::Obj(map)
    }
}

/// Cloneable handle to the observability sink. The default is disabled:
/// every method returns immediately after one `Option` branch, which is
/// what keeps the no-op overhead inside the perf budget.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<ObsCore>>>,
}

impl Recorder {
    /// The no-op recorder.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with the given sampling/ring configuration.
    pub fn new(config: RecorderConfig) -> Recorder {
        let interval = SimTime(config.sample_interval.0.max(1));
        let mut registry = Registry::new();
        let ids = Ids::register(&mut registry);
        let core = ObsCore {
            registry,
            ids,
            ring: SpanRing::new(config.ring_capacity),
            stage_hists: vec![Log2Hist::new(); Stage::COUNT],
            samples: Vec::new(),
            interval,
            now: SimTime::ZERO,
            next_sample: interval,
            seq: 0,
        };
        Recorder { inner: Some(Arc::new(Mutex::new(core))) }
    }

    /// True when events are actually being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock<'a>(core: &'a Arc<Mutex<ObsCore>>) -> std::sync::MutexGuard<'a, ObsCore> {
        core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stage guard: attribute every advance of `clock` inside the guarded
    /// scope to `stage` in `times`. Pure accumulator arithmetic — cheap
    /// whether or not the recorder is enabled, so instrumented components
    /// can wrap hot paths unconditionally and hand the accumulated
    /// [`StageTimes`] to [`Recorder::record`] (inside a
    /// [`Completion`]) or [`Recorder::record_background`] when the
    /// request completes.
    pub fn stage<'a>(
        &self,
        stage: Stage,
        clock: &'a mut SimTime,
        times: &'a mut StageTimes,
    ) -> StageGuard<'a> {
        times.guard(stage, clock)
    }

    /// Record a completion using the recorder's internal simulated clock:
    /// the request enters at the current clock and exits `service` later.
    /// Returns true when a periodic sample is due (call
    /// [`Recorder::push_sample`] with a fresh [`Sample`]).
    pub fn record(&self, c: Completion) -> bool {
        let Some(core) = &self.inner else { return false };
        let mut g = Self::lock(core);
        let enter = g.now;
        let exit = SimTime(enter.0.saturating_add(c.service.0));
        g.now = exit;
        g.note(c, enter, exit)
    }

    /// Record a completion with caller-supplied enter/exit stamps (the
    /// simulator drivers own their own clocks). The recorder clock only
    /// moves forward. Returns true when a periodic sample is due.
    pub fn record_at(&self, c: Completion, enter: SimTime, exit: SimTime) -> bool {
        let Some(core) = &self.inner else { return false };
        let mut g = Self::lock(core);
        g.now = SimTime(g.now.0.max(exit.0));
        g.note(c, enter, exit)
    }

    /// Record a background span (cleaner pass, group-commit flush,
    /// recovery) of duration `service` starting at the recorder's current
    /// clock, with `stages` attributing the work inside it. Advances the
    /// internal clock like [`Recorder::record`]. Returns true when a
    /// periodic sample is due.
    pub fn record_background(&self, stage: Stage, service: SimTime, stages: StageTimes) -> bool {
        let Some(core) = &self.inner else { return false };
        let mut g = Self::lock(core);
        let enter = g.now;
        let exit = SimTime(enter.0.saturating_add(service.0));
        g.now = exit;
        g.note_background(BackgroundSpan { stage, service, stages }, enter, exit)
    }

    /// Append a timeseries sample and schedule the next one.
    pub fn push_sample(&self, s: Sample) {
        let Some(core) = &self.inner else { return };
        let mut g = Self::lock(core);
        g.now = SimTime(g.now.0.max(s.at.0));
        g.samples.push(s);
        g.next_sample = SimTime(g.now.0.saturating_add(g.interval.0));
    }

    /// True when the simulated clock has passed the next sample point.
    pub fn sample_due(&self) -> bool {
        let Some(core) = &self.inner else { return false };
        let g = Self::lock(core);
        g.now >= g.next_sample
    }

    /// Current simulated time as seen by the recorder.
    pub fn now(&self) -> SimTime {
        let Some(core) = &self.inner else { return SimTime::ZERO };
        Self::lock(core).now
    }

    /// Mirror the cache-layer counter totals into the registry.
    pub fn sync_cache(&self, c: &CacheCounters) {
        let Some(core) = &self.inner else { return };
        Self::lock(core).sync_cache(c);
    }

    /// Export the full `kdd-obs/v2` snapshot. `fin` is the final sample
    /// (always appended to the timeseries and used to refresh gauges and
    /// derived ratios); `wear` is the per-block erase-count histogram.
    /// Returns `None` on a disabled recorder. Idempotent: exporting twice
    /// with the same `fin` yields byte-identical documents.
    pub fn export(&self, fin: &Sample, wear: &Log2Hist) -> Option<Json> {
        let core = self.inner.as_ref()?;
        let mut g = Self::lock(core);
        g.sync_cache(&fin.cache);
        g.refresh_gauges(fin);
        let mut totals = g.registry.export();
        if let Json::Obj(map) = &mut totals {
            map.insert("derived".to_string(), g.derived(fin));
        }
        let mut timeseries: Vec<Json> = g.samples.iter().map(Sample::export).collect();
        timeseries.push(fin.export());
        Some(obj(vec![
            ("schema", Json::Str(crate::SCHEMA.to_string())),
            ("totals", totals),
            ("stages", g.export_stages()),
            ("timeseries", Json::Arr(timeseries)),
            ("wear", wear.export()),
            ("spans", g.ring.export()),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::HitClass;
    use crate::snapshot::validate_snapshot;

    fn completion(lba: u64, service: SimTime) -> Completion {
        Completion::new(ReqKind::Write, lba, HitClass::WriteHitDelta, service)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(!r.record(completion(1, SimTime(100))));
        assert!(!r.record_background(Stage::CleanerPass, SimTime(50), StageTimes::new()));
        assert!(!r.sample_due());
        assert!(r.export(&Sample::default(), &Log2Hist::new()).is_none());
    }

    #[test]
    fn internal_clock_advances_and_samples_come_due() {
        let cfg = RecorderConfig { sample_interval: SimTime::from_micros(10), ring_capacity: 16 };
        let r = Recorder::new(cfg);
        // 9 µs of traffic: not due yet.
        assert!(!r.record(completion(0, SimTime::from_micros(9))));
        // Crossing 10 µs: due.
        assert!(r.record(completion(1, SimTime::from_micros(2))));
        let s = Sample { at: r.now(), ..Sample::default() };
        r.push_sample(s);
        assert!(!r.sample_due(), "push_sample reschedules");
    }

    #[test]
    fn export_is_idempotent_and_valid() {
        let r = Recorder::new(RecorderConfig::default());
        r.record(completion(3, SimTime::from_micros(50)));
        let fin = Sample {
            at: r.now(),
            cache: CacheCounters { write_hits: 1, ..CacheCounters::default() },
            host_written_bytes: 4096,
            nand_written_bytes: 8192,
            ..Sample::default()
        };
        let mut wear = Log2Hist::new();
        wear.observe(3);
        let a = r.export(&fin, &wear).expect("enabled").render();
        let b = r.export(&fin, &wear).expect("enabled").render();
        assert_eq!(a, b, "export must not mutate recorder state");
        let doc = crate::json::parse(&a).expect("parse");
        assert_eq!(validate_snapshot(&doc), Vec::<String>::new());
        let derived = doc.get("totals").and_then(|t| t.get("derived")).expect("derived");
        assert_eq!(derived.get("ssd.waf").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn stage_charges_land_in_the_stage_table_and_span() {
        let r = Recorder::new(RecorderConfig::default());
        let mut c = completion(9, SimTime::from_micros(46));
        c.stages.add(Stage::DeltaEncode, SimTime::from_micros(30));
        c.stages.add(Stage::RaidWrite, SimTime::from_micros(16));
        r.record(c);
        let mut bg = StageTimes::new();
        bg.add(Stage::ParityRmw, SimTime::from_micros(24));
        r.record_background(Stage::CleanerPass, SimTime::from_micros(24), bg);
        let doc = r.export(&Sample { at: r.now(), ..Sample::default() }, &Log2Hist::new());
        let doc = doc.expect("enabled");
        let stages = doc.get("stages").expect("stages table");
        let sum = |name: &str| {
            stages.get(name).and_then(|h| h.get("sum")).and_then(Json::as_f64).unwrap_or(-1.0)
        };
        assert_eq!(sum("delta_encode"), 30_000.0);
        assert_eq!(sum("raid_write"), 16_000.0);
        assert_eq!(sum("parity_rmw"), 24_000.0);
        assert_eq!(sum("cleaner_pass"), 24_000.0);
        assert_eq!(sum("cache_lookup"), 0.0, "declared stages export even when idle");
        // The background span rides the same ring with the stage name as
        // its class, and the request span carries its stage breakdown.
        let events = doc.get("spans").and_then(|s| s.get("events")).and_then(Json::as_arr);
        let events = events.expect("events");
        assert_eq!(events.len(), 2);
        let req = events.first().expect("request span");
        assert_eq!(
            req.get("stages").and_then(|s| s.get("delta_encode")).and_then(Json::as_f64),
            Some(30_000.0)
        );
        let bg = events.get(1).expect("background span");
        assert_eq!(bg.get("kind").and_then(Json::as_str), Some("background"));
        assert_eq!(bg.get("class").and_then(Json::as_str), Some("cleaner_pass"));
        // Counter split: one request, one background span.
        let counters = doc.get("totals").and_then(|t| t.get("counters")).expect("counters");
        assert_eq!(counters.get("obs.requests").and_then(Json::as_f64), Some(1.0));
        assert_eq!(counters.get("obs.background_spans").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn recorder_stage_guard_accumulates_into_times() {
        let r = Recorder::disabled();
        let mut times = StageTimes::new();
        let mut t = SimTime::ZERO;
        {
            let mut g = r.stage(Stage::MetalogCommit, &mut t, &mut times);
            *g.clock() += SimTime::from_micros(8);
        }
        assert_eq!(times.get(Stage::MetalogCommit), 8_000);
        assert_eq!(t, SimTime::from_micros(8));
    }
}
