//! Typed metrics registry with static keys.
//!
//! Metrics are registered once (usually at `Recorder` construction) and
//! updated through copyable integer ids, so the hot path never hashes or
//! allocates a `String`. Export walks the metric tables into a
//! `BTreeMap`-backed [`Json`] object, which keeps the rendered bytes
//! stable regardless of registration order (KDD003).
//!
//! All accumulation is integer-only; floating point appears only in
//! derived ratios computed at export time (see [`crate::frac`]), so
//! replays cannot diverge through float summation order (KDD007).

use crate::json::Json;
use std::collections::BTreeMap;

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (a point-in-time level, may go down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered log2-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A power-of-two bucketed histogram over `u64` observations.
///
/// Bucket 0 holds exactly the value 0; bucket `i >= 1` holds the range
/// `[2^(i-1), 2^i - 1]`. 65 buckets cover the full `u64` domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Hist { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Smallest value that lands in bucket `i` (saturating at the top).
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            let shift = u32::try_from(i - 1).unwrap_or(64);
            1u64.checked_shl(shift).unwrap_or(u64::MAX)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        if let Some(b) = self.buckets.get_mut(Self::bucket_index(v)) {
            *b += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Occupancy of bucket `i` (0 for out-of-range indices).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Export as `{count, sum, max, buckets: [[lo, n], ...]}` with only
    /// the non-empty buckets listed.
    pub fn export(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                Json::Arr(vec![Json::Num(Self::bucket_lo(i) as f64), Json::Num(*n as f64)])
            })
            .collect();
        crate::json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            ("max", Json::Num(self.max as f64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// The metric tables. Ids index into the vectors, so updates are a bounds
/// check plus an integer store.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, i64)>,
    hists: Vec<(&'static str, Log2Hist)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter under a static key.
    pub fn register_counter(&mut self, key: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(k, _)| *k == key) {
            return CounterId(i);
        }
        self.counters.push((key, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge under a static key.
    pub fn register_gauge(&mut self, key: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(k, _)| *k == key) {
            return GaugeId(i);
        }
        self.gauges.push((key, 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram under a static key.
    pub fn register_hist(&mut self, key: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(k, _)| *k == key) {
            return HistId(i);
        }
        self.hists.push((key, Log2Hist::new()));
        HistId(self.hists.len() - 1)
    }

    /// Add `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        if let Some((_, v)) = self.counters.get_mut(id.0) {
            *v = v.saturating_add(delta);
        }
    }

    /// Overwrite a counter with an externally accumulated total (used to
    /// mirror `CacheStats`-style structs into the registry).
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        if let Some((_, v)) = self.counters.get_mut(id.0) {
            *v = value;
        }
    }

    /// Current value of a counter (0 for a foreign id).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters.get(id.0).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Set a gauge to a level.
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        if let Some((_, v)) = self.gauges.get_mut(id.0) {
            *v = value;
        }
    }

    /// Current value of a gauge (0 for a foreign id).
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges.get(id.0).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Record an observation into a histogram.
    pub fn observe(&mut self, id: HistId, v: u64) {
        if let Some((_, h)) = self.hists.get_mut(id.0) {
            h.observe(v);
        }
    }

    /// Read access to a histogram.
    pub fn hist(&self, id: HistId) -> Option<&Log2Hist> {
        self.hists.get(id.0).map(|(_, h)| h)
    }

    /// Export every metric as `{counters: {...}, gauges: {...},
    /// hists: {...}}`, keys sorted by the `BTreeMap`.
    pub fn export(&self) -> Json {
        let counters: BTreeMap<String, Json> =
            self.counters.iter().map(|(k, v)| ((*k).to_string(), Json::Num(*v as f64))).collect();
        let gauges: BTreeMap<String, Json> =
            self.gauges.iter().map(|(k, v)| ((*k).to_string(), Json::Num(*v as f64))).collect();
        let hists: BTreeMap<String, Json> =
            self.hists.iter().map(|(k, h)| ((*k).to_string(), h.export())).collect();
        crate::json::obj(vec![
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("hists", Json::Obj(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_boundaries_are_exact() {
        // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
        assert_eq!(Log2Hist::bucket_index(0), 0);
        assert_eq!(Log2Hist::bucket_index(1), 1);
        assert_eq!(Log2Hist::bucket_index(2), 2);
        assert_eq!(Log2Hist::bucket_index(3), 2);
        assert_eq!(Log2Hist::bucket_index(4), 3);
        assert_eq!(Log2Hist::bucket_index(7), 3);
        assert_eq!(Log2Hist::bucket_index(8), 4);
        for k in 0..63u32 {
            let v = 1u64 << k;
            assert_eq!(Log2Hist::bucket_index(v), k as usize + 1, "2^{k}");
            // Top of the same bucket: 2^(k+1) - 1.
            assert_eq!(Log2Hist::bucket_index((v << 1) - 1), k as usize + 1, "2^{}-1", k + 1);
        }
        assert_eq!(Log2Hist::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Hist::bucket_lo(0), 0);
        assert_eq!(Log2Hist::bucket_lo(1), 1);
        assert_eq!(Log2Hist::bucket_lo(4), 8);
        assert_eq!(Log2Hist::bucket_lo(64), 1u64 << 63);
    }

    #[test]
    fn hist_accumulates_and_exports_nonzero_buckets_only() {
        let mut h = Log2Hist::new();
        for v in [0u64, 1, 3, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 3, 3
        assert_eq!(h.bucket(10), 1); // 1000 in [512, 1023]
        let doc = h.export();
        let buckets = doc.get("buckets").and_then(Json::as_arr).expect("buckets");
        assert_eq!(buckets.len(), 4, "only non-empty buckets exported");
    }

    #[test]
    fn registry_ids_are_stable_and_dedup_by_key() {
        let mut r = Registry::new();
        let a = r.register_counter("x.a");
        let b = r.register_counter("x.b");
        let a2 = r.register_counter("x.a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        r.add(a, 2);
        r.add(a, 3);
        r.set_counter(b, 7);
        assert_eq!(r.counter(a), 5);
        assert_eq!(r.counter(b), 7);
        let g = r.register_gauge("g.level");
        r.set_gauge(g, -4);
        assert_eq!(r.gauge(g), -4);
    }

    #[test]
    fn export_orders_keys_lexicographically() {
        let mut r = Registry::new();
        r.register_counter("z.last");
        r.register_counter("a.first");
        let doc = r.export();
        let text = doc.render();
        let a = text.find("a.first").expect("a.first");
        let z = text.find("z.last").expect("z.last");
        assert!(a < z, "BTreeMap export must sort keys");
    }
}
