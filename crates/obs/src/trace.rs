//! Chrome trace-event export: render a snapshot's span ring as a
//! Perfetto-loadable timeline.
//!
//! [`trace_events`] turns the `spans.events` of a `kdd-obs` snapshot
//! into the [Trace Event Format] consumed by `chrome://tracing` and
//! [Perfetto]: complete (`"ph": "X"`) slices with microsecond `ts`/`dur`,
//! one thread track for host requests and one for background work. Each
//! span's stage breakdown is laid out as child slices packed from the
//! parent's start — the conservation invariant (stage sum ≤ service)
//! guarantees they fit inside the parent, so the viewer nests them.
//!
//! The export is a pure function of the snapshot document: events are
//! ordered per track by timestamp (ties broken by ring order), and all
//! numbers derive from the integer nanosecond stamps, so the rendered
//! bytes are deterministic (KDD003).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::json::{obj, Json};
use std::collections::BTreeMap;

/// Track (thread) id for host-request spans.
const TID_REQUESTS: u64 = 1;
/// Track (thread) id for background spans (cleaner, flush, recovery).
const TID_BACKGROUND: u64 = 2;
/// Process id stamped on every event (one simulated engine).
const PID: u64 = 1;

/// One slice before JSON rendering, keyed for deterministic ordering.
struct Slice {
    tid: u64,
    ts_ns: u64,
    dur_ns: u64,
    name: String,
    cat: String,
    args: Vec<(String, Json)>,
}

fn num(v: &Json, key: &str) -> Option<u64> {
    let n = v.get(key)?.as_f64()?;
    if n.is_finite() && n >= 0.0 {
        // Stamps originate from u64 nanoseconds; this inverts the export cast.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(n as u64)
    } else {
        None
    }
}

/// Convert integer nanoseconds to the trace format's microsecond floats.
fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1000.0)
}

fn metadata(name: &str, tid: Option<u64>, value: &str) -> Json {
    let mut pairs = vec![
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::Num(PID as f64)),
        ("name", Json::Str(name.to_string())),
        ("args", obj(vec![("name", Json::Str(value.to_string()))])),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", Json::Num(tid as f64)));
    }
    obj(pairs)
}

fn slice_to_json(s: &Slice) -> Json {
    let mut args: BTreeMap<String, Json> = s.args.iter().cloned().collect();
    args.insert("dur_ns".to_string(), Json::Num(s.dur_ns as f64));
    obj(vec![
        ("ph", Json::Str("X".to_string())),
        ("name", Json::Str(s.name.clone())),
        ("cat", Json::Str(s.cat.clone())),
        ("ts", us(s.ts_ns)),
        ("dur", us(s.dur_ns)),
        ("pid", Json::Num(PID as f64)),
        ("tid", Json::Num(s.tid as f64)),
        ("args", Json::Obj(args)),
    ])
}

/// Expand one exported span event into its parent slice plus child stage
/// slices packed sequentially from the parent's start.
fn expand_event(event: &Json, out: &mut Vec<Slice>) -> Result<(), String> {
    let enter = num(event, "enter_ns").ok_or("span event missing enter_ns")?;
    let exit = num(event, "exit_ns").ok_or("span event missing exit_ns")?;
    let kind = event.get("kind").and_then(Json::as_str).ok_or("span event missing kind")?;
    let class = event.get("class").and_then(Json::as_str).ok_or("span event missing class")?;
    let seq = num(event, "seq").unwrap_or(0);
    let tid = if kind == "background" { TID_BACKGROUND } else { TID_REQUESTS };
    let dur = exit.saturating_sub(enter);

    let mut args: Vec<(String, Json)> = vec![("seq".to_string(), Json::Num(seq as f64))];
    for key in ["lba", "ssd_reads", "ssd_writes", "raid_reads", "raid_writes", "comp_milli"] {
        if let Some(v) = num(event, key) {
            if key == "lba" || v > 0 {
                args.push((key.to_string(), Json::Num(v as f64)));
            }
        }
    }
    out.push(Slice {
        tid,
        ts_ns: enter,
        dur_ns: dur,
        name: format!("{kind}:{class}"),
        cat: kind.to_string(),
        args,
    });

    // Child stage slices: the exported breakdown is `{stage: ns}` in
    // BTreeMap (name) order; pack them back-to-back from the parent's
    // start. Conservation (sum ≤ service) keeps them inside the parent.
    if let Some(Json::Obj(stages)) = event.get("stages") {
        let mut cursor = enter;
        for (stage, v) in stages {
            let Some(ns) = v.as_f64().filter(|n| n.is_finite() && *n > 0.0) else { continue };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ns = ns as u64;
            out.push(Slice {
                tid,
                ts_ns: cursor,
                dur_ns: ns,
                name: stage.clone(),
                cat: "stage".to_string(),
                args: vec![("seq".to_string(), Json::Num(seq as f64))],
            });
            cursor = cursor.saturating_add(ns);
        }
        if cursor.saturating_sub(enter) > dur {
            return Err(format!(
                "span seq {seq}: stage breakdown ({} ns) exceeds service ({dur} ns)",
                cursor.saturating_sub(enter)
            ));
        }
    }
    Ok(())
}

/// Render a snapshot document's span ring as a Chrome trace-event JSON
/// document (`{"displayTimeUnit": "ms", "traceEvents": [...]}`).
///
/// Events are grouped per track and sorted by timestamp (stable on ring
/// order), so `ts` is monotonically non-decreasing within each `tid` —
/// the property the proptest in `tests/observability.rs` pins. Returns
/// `Err` when the document has no span events or an event violates the
/// stage-time conservation invariant.
pub fn trace_events(doc: &Json) -> Result<Json, String> {
    let events = doc
        .get("spans")
        .and_then(|s| s.get("events"))
        .and_then(Json::as_arr)
        .ok_or("document has no spans.events array")?;
    if events.is_empty() {
        return Err("spans.events is empty: nothing to trace".to_string());
    }
    let mut slices = Vec::new();
    for event in events {
        expand_event(event, &mut slices)?;
    }
    // Stable sort by (track, timestamp): per-track monotonic ts, ring
    // order preserved on ties.
    slices.sort_by_key(|s| (s.tid, s.ts_ns));

    let mut out = vec![
        metadata("process_name", None, "kdd engine (simulated time)"),
        metadata("thread_name", Some(TID_REQUESTS), "requests"),
        metadata("thread_name", Some(TID_BACKGROUND), "background"),
    ];
    out.extend(slices.iter().map(slice_to_json));
    Ok(obj(vec![("displayTimeUnit", Json::Str("ms".to_string())), ("traceEvents", Json::Arr(out))]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RecorderConfig};
    use crate::registry::Log2Hist;
    use crate::ring::{Completion, HitClass, ReqKind};
    use crate::snapshot::Sample;
    use crate::stage::{Stage, StageTimes};
    use kdd_util::SimTime;

    fn snapshot_with_traffic() -> Json {
        let r = Recorder::new(RecorderConfig::default());
        let mut c = Completion::new(ReqKind::Write, 7, HitClass::WriteHitDelta, SimTime(46_000));
        c.stages.add(Stage::DeltaEncode, SimTime(30_000));
        c.stages.add(Stage::RaidWrite, SimTime(16_000));
        r.record(c);
        let mut bg = StageTimes::new();
        bg.add(Stage::ParityRmw, SimTime(24_000));
        r.record_background(Stage::CleanerPass, SimTime(24_000), bg);
        r.export(&Sample { at: r.now(), ..Sample::default() }, &Log2Hist::new())
            .expect("enabled recorder")
    }

    #[test]
    fn trace_nests_stage_slices_inside_parents_per_track() {
        let doc = snapshot_with_traffic();
        let trace = trace_events(&doc).expect("trace");
        let events = trace.get("traceEvents").and_then(Json::as_arr).expect("events");
        // 3 metadata + 2 parents + 3 stage children.
        assert_eq!(events.len(), 8);
        let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for e in events {
            if e.get("ph").and_then(Json::as_str) != Some("X") {
                continue;
            }
            let tid = e.get("tid").and_then(Json::as_f64).expect("tid");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let tid = tid as u64;
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            let prev = last_ts.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
            assert!(ts >= prev, "ts must be non-decreasing per track");
        }
        // The request parent and its first child share a start; the child
        // slices cover delta_encode then raid_write in name order.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("stage"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, vec!["delta_encode", "raid_write", "parity_rmw"]);
    }

    #[test]
    fn trace_rejects_conservation_violations() {
        let mut doc = snapshot_with_traffic();
        // Corrupt the first event's breakdown so stages exceed service.
        let text = doc.render().replace("\"delta_encode\": 30000", "\"delta_encode\": 99999999");
        doc = crate::json::parse(&text).expect("parse");
        let err = trace_events(&doc).expect_err("must reject");
        assert!(err.contains("exceeds service"), "got: {err}");
    }

    #[test]
    fn trace_requires_span_events() {
        let doc = crate::json::parse(r#"{"spans": {"events": []}}"#).expect("parse");
        assert!(trace_events(&doc).is_err());
    }
}
