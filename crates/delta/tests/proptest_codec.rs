//! Property tests: the delta codec must round-trip *anything*, and the
//! XOR algebra must hold for arbitrary page pairs.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_delta::codec::{compress, decompress, Compressor};
use kdd_delta::content::PageMutator;
use kdd_delta::xor::{xor_into, xor_pages};
use proptest::prelude::*;

proptest! {
    /// compress ∘ decompress == identity for arbitrary bytes.
    #[test]
    fn codec_roundtrips_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// Compressed size is never more than input + 1 (the raw fallback).
    #[test]
    fn codec_never_expands_beyond_header(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert!(compress(&data).len() <= data.len() + 1);
    }

    /// Sparse data (mostly zeros) compresses substantially.
    #[test]
    fn sparse_data_compresses(
        positions in proptest::collection::vec(0usize..4096, 0..100),
        values in proptest::collection::vec(1u8..=255, 100),
    ) {
        let mut page = vec![0u8; 4096];
        for (i, &pos) in positions.iter().enumerate() {
            page[pos] = values[i % values.len()];
        }
        let c = compress(&page);
        // ≤100 scattered non-zero bytes: must compress below 20% + slack.
        prop_assert!(c.len() < 900, "sparse page compressed to {}", c.len());
        prop_assert_eq!(decompress(&c).unwrap(), page);
    }

    /// XOR is an involution: (a ⊕ b) ⊕ b == a, and order does not matter.
    #[test]
    fn xor_algebra(
        a in proptest::collection::vec(any::<u8>(), 1..2048),
        b_seed in any::<u64>(),
    ) {
        let b: Vec<u8> = a.iter().enumerate()
            .map(|(i, &x)| x ^ (b_seed.wrapping_mul(i as u64 + 1) >> 32) as u8)
            .collect();
        let d1 = xor_pages(&a, &b);
        let d2 = xor_pages(&b, &a);
        prop_assert_eq!(&d1, &d2, "xor is symmetric");
        let mut back = b.clone();
        xor_into(&mut back, &d1);
        prop_assert_eq!(back, a);
    }

    /// The full KDD data path: old ⊕ new → compress → decompress → apply
    /// recovers new exactly, for arbitrary version pairs.
    #[test]
    fn delta_pipeline_recovers_new_version(
        old in proptest::collection::vec(any::<u8>(), 512),
        flips in proptest::collection::vec((0usize..512, any::<u8>()), 0..64),
    ) {
        let mut new = old.clone();
        for (pos, val) in flips {
            new[pos] = val;
        }
        let delta = xor_pages(&old, &new);
        let stored = compress(&delta);
        let recovered_delta = decompress(&stored).unwrap();
        let mut rebuilt = old.clone();
        xor_into(&mut rebuilt, &recovered_delta);
        prop_assert_eq!(rebuilt, new);
    }

    /// Adversarial input for the hash-chain finder: pages stitched from
    /// short repeated motifs at varying periods, including periods below
    /// MIN_MATCH (overlapping matches, where a match's source extends into
    /// the region being produced) and hash-collision-prone step patterns.
    #[test]
    fn match_finder_roundtrips_adversarial_overlap(
        motif in proptest::collection::vec(any::<u8>(), 1..9),
        reps in 1usize..1500,
        prefix in proptest::collection::vec(any::<u8>(), 0..32),
        suffix in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut page = prefix;
        for _ in 0..reps {
            page.extend_from_slice(&motif);
            if page.len() >= 6000 {
                break;
            }
        }
        page.extend_from_slice(&suffix);
        let c = compress(&page);
        prop_assert!(c.len() <= page.len() + 1);
        prop_assert_eq!(decompress(&c).unwrap(), page);
    }

    /// Trace-derived shape: XOR deltas of clustered seeded mutations (the
    /// exact page class the engine's write-hit path feeds the codec).
    #[test]
    fn match_finder_roundtrips_trace_derived_deltas(
        seed in any::<u64>(),
        change in 1u32..60,
        run_len in 1usize..256,
        versions in 1usize..5,
    ) {
        let mut m = PageMutator::new(4096, f64::from(change) / 100.0, run_len, seed);
        let mut prev = m.initial_page();
        for _ in 0..versions {
            let next = m.mutate(&prev);
            let delta = xor_pages(&prev, &next);
            let c = compress(&delta);
            prop_assert!(c.len() <= delta.len() + 1);
            prop_assert_eq!(decompress(&c).unwrap(), delta);
            prev = next;
        }
    }

    /// A reused [`Compressor`] (the engine's per-instance scratch state)
    /// produces byte-identical output to a fresh one on every page of a
    /// random mixed sequence — scratch reuse must not leak state.
    #[test]
    fn compressor_reuse_matches_fresh_on_random_sequence(
        pages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..4096), 1..6),
    ) {
        let mut shared = Compressor::new();
        for page in &pages {
            let reused = shared.compress(page);
            prop_assert_eq!(&reused, &compress(page), "reuse diverged");
            prop_assert_eq!(decompress(&reused).unwrap(), page.clone());
        }
    }
}
