//! Delta substrate for KDD: XOR deltas, a fast delta compressor, content
//! generators with controlled similarity, and the paper's Gaussian
//! delta-size model.
//!
//! KDD's endurance win comes from storing the *compressed XOR* of the old
//! and new versions of a page instead of a second full copy. Real
//! applications change only 5–20 % of the bits in a block per write
//! (TRAP-Array, Peabody, DTFS — paper §II-C), so the XOR is mostly zeros
//! and compresses extremely well.
//!
//! Two consumers exist in this workspace:
//!
//! * the *prototype-style* engine operates on real page contents and uses
//!   [`codec`] to produce actual compressed deltas (the paper's prototype
//!   uses lzo; our codec plays that role);
//! * the *trace-driven simulator* has no page contents and uses
//!   [`model::GaussianDeltaModel`] exactly as §IV-A2 prescribes
//!   ("delta compression ratio values follow Gaussian distribution with an
//!   average equaling 50%, 25%, and 12%").

#![warn(missing_docs)]

pub mod codec;
pub mod content;
pub mod model;
pub mod xor;

pub use codec::{compress, decompress, CompressError, DeltaCodec};
pub use content::PageMutator;
pub use model::{DeltaSizeModel, FixedDeltaModel, GaussianDeltaModel};
pub use xor::{is_all_zero, xor2_into, xor_into, xor_pages, xor_pages_into, zero_fraction};
