//! Word-wide XOR primitives.
//!
//! XOR is the hot loop of the whole system: it computes deltas, applies
//! deltas, and updates RAID parity. All routines process 8 bytes per step
//! on the aligned body of the buffers; the compiler auto-vectorises the
//! `u64` loop to SIMD on x86-64.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

/// Load a native-endian word from a `chunks_exact(8)` chunk without an
/// indexing or `try_into` panic path: `zip` bounds both sides.
#[inline]
fn ne_word(chunk: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    for (d, s) in w.iter_mut().zip(chunk) {
        *d = *s;
    }
    u64::from_ne_bytes(w)
}

/// XOR `src` into `dst` in place (`dst[i] ^= src[i]`).
///
/// # Panics
/// Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor operands must have equal length");
    // Split both buffers into u64-aligned middles; head/tail byte-wise.
    let n = dst.len();
    let body = n / 8 * 8;
    let (dst_body, dst_tail) = dst.split_at_mut(body);
    let (src_body, src_tail) = src.split_at(body);
    for (d, s) in dst_body.chunks_exact_mut(8).zip(src_body.chunks_exact(8)) {
        let x = ne_word(d) ^ ne_word(s);
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= s;
    }
}

/// XOR two pages into a fresh buffer (the delta of `old` and `new`).
///
/// # Panics
/// Panics if lengths differ.
pub fn xor_pages(old: &[u8], new: &[u8]) -> Vec<u8> {
    let mut out = old.to_vec();
    xor_into(&mut out, new);
    out
}

/// Fraction of bytes in `buf` that are zero — a cheap proxy for how well an
/// XOR delta will compress (used by tests and diagnostics).
pub fn zero_fraction(buf: &[u8]) -> f64 {
    if buf.is_empty() {
        return 1.0;
    }
    let zeros = buf.iter().filter(|&&b| b == 0).count();
    zeros as f64 / buf.len() as f64
}

/// True if every byte of `buf` is zero (word-wide scan).
pub fn is_all_zero(buf: &[u8]) -> bool {
    let body = buf.len() / 8 * 8;
    let (head, tail) = buf.split_at(body.min(buf.len()));
    head.chunks_exact(8).all(|c| ne_word(c) == 0) && tail.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let old: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let new: Vec<u8> = (0..4096).map(|i| (i % 193) as u8).collect();
        let delta = xor_pages(&old, &new);
        // old ^ delta == new
        let mut rebuilt = old.clone();
        xor_into(&mut rebuilt, &delta);
        assert_eq!(rebuilt, new);
        // new ^ delta == old
        let mut back = new.clone();
        xor_into(&mut back, &delta);
        assert_eq!(back, old);
    }

    #[test]
    fn xor_identical_pages_is_zero() {
        let page = vec![0xabu8; 4096];
        let delta = xor_pages(&page, &page);
        assert!(is_all_zero(&delta));
        assert_eq!(zero_fraction(&delta), 1.0);
    }

    #[test]
    fn xor_unaligned_length() {
        let a: Vec<u8> = (0..13).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..13).map(|i| (i * 7) as u8).collect();
        let d = xor_pages(&a, &b);
        for i in 0..13 {
            assert_eq!(d[i], a[i] ^ b[i]);
        }
    }

    #[test]
    fn zero_fraction_counts() {
        assert_eq!(zero_fraction(&[]), 1.0);
        assert_eq!(zero_fraction(&[0, 0, 1, 1]), 0.5);
        assert!(!is_all_zero(&[0, 0, 0, 9]));
        assert!(is_all_zero(&[0u8; 17]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut a = [0u8; 4];
        xor_into(&mut a, &[0u8; 5]);
    }
}
