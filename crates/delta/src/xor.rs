//! Word-wide XOR primitives.
//!
//! XOR is the hot loop of the whole system: it computes deltas, applies
//! deltas, and updates RAID parity. All routines process 8 bytes per step
//! on the aligned body of the buffers; the compiler auto-vectorises the
//! `u64` loop to SIMD on x86-64.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

/// Load a native-endian word from a `chunks_exact(8)` chunk without an
/// indexing or `try_into` panic path: `zip` bounds both sides.
#[inline]
fn ne_word(chunk: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    for (d, s) in w.iter_mut().zip(chunk) {
        *d = *s;
    }
    u64::from_ne_bytes(w)
}

/// XOR `src` into `dst` in place (`dst[i] ^= src[i]`).
///
/// # Panics
/// Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor operands must have equal length");
    // Split both buffers into u64-aligned middles; head/tail byte-wise.
    let n = dst.len();
    let body = n / 8 * 8;
    let (dst_body, dst_tail) = dst.split_at_mut(body);
    let (src_body, src_tail) = src.split_at(body);
    for (d, s) in dst_body.chunks_exact_mut(8).zip(src_body.chunks_exact(8)) {
        let x = ne_word(d) ^ ne_word(s);
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= s;
    }
}

/// XOR `src` into *two* destinations in one pass (`d1[i] ^= src[i]`,
/// `d2[i] ^= src[i]`). Used where a delta must be folded into both the P
/// parity and another accumulator without re-reading `src`.
///
/// # Panics
/// Panics if lengths differ.
pub fn xor2_into(d1: &mut [u8], d2: &mut [u8], src: &[u8]) {
    assert_eq!(d1.len(), src.len(), "xor operands must have equal length");
    assert_eq!(d2.len(), src.len(), "xor operands must have equal length");
    let body = src.len() / 8 * 8;
    let (d1_body, d1_tail) = d1.split_at_mut(body);
    let (d2_body, d2_tail) = d2.split_at_mut(body);
    let (src_body, src_tail) = src.split_at(body);
    for ((a, b), s) in
        d1_body.chunks_exact_mut(8).zip(d2_body.chunks_exact_mut(8)).zip(src_body.chunks_exact(8))
    {
        let w = ne_word(s);
        let x = ne_word(a) ^ w;
        a.copy_from_slice(&x.to_ne_bytes());
        let y = ne_word(b) ^ w;
        b.copy_from_slice(&y.to_ne_bytes());
    }
    for ((a, b), s) in d1_tail.iter_mut().zip(d2_tail.iter_mut()).zip(src_tail) {
        *a ^= s;
        *b ^= s;
    }
}

/// XOR two pages into a caller-provided buffer (`out[i] = old[i] ^ new[i]`)
/// without allocating — the zero-alloc twin of [`xor_pages`].
///
/// # Panics
/// Panics if lengths differ.
pub fn xor_pages_into(out: &mut [u8], old: &[u8], new: &[u8]) {
    assert_eq!(out.len(), old.len(), "xor operands must have equal length");
    assert_eq!(out.len(), new.len(), "xor operands must have equal length");
    let body = out.len() / 8 * 8;
    let (out_body, out_tail) = out.split_at_mut(body);
    let (old_body, old_tail) = old.split_at(body);
    let (new_body, new_tail) = new.split_at(body);
    for ((o, a), b) in
        out_body.chunks_exact_mut(8).zip(old_body.chunks_exact(8)).zip(new_body.chunks_exact(8))
    {
        let x = ne_word(a) ^ ne_word(b);
        o.copy_from_slice(&x.to_ne_bytes());
    }
    for ((o, a), b) in out_tail.iter_mut().zip(old_tail).zip(new_tail) {
        *o = a ^ b;
    }
}

/// XOR two pages into a fresh buffer (the delta of `old` and `new`).
///
/// # Panics
/// Panics if lengths differ.
pub fn xor_pages(old: &[u8], new: &[u8]) -> Vec<u8> {
    // kdd-waiver(KDD006): allocating convenience wrapper; hot paths use `xor_pages_into`.
    let mut out = old.to_vec();
    xor_into(&mut out, new);
    out
}

/// Fraction of bytes in `buf` that are zero — a cheap proxy for how well an
/// XOR delta will compress (used by tests and diagnostics).
///
/// Zero bytes are counted eight at a time with the SWAR zero-byte detect
/// (`(w - LO) & !w & HI` sets each byte's high bit iff the byte is zero).
pub fn zero_fraction(buf: &[u8]) -> f64 {
    if buf.is_empty() {
        return 1.0;
    }
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let body = buf.len() / 8 * 8;
    let (head, tail) = buf.split_at(body);
    let mut zeros: u64 = 0;
    for c in head.chunks_exact(8) {
        let w = ne_word(c);
        zeros += u64::from((w.wrapping_sub(LO) & !w & HI).count_ones());
    }
    zeros += tail.iter().filter(|&&b| b == 0).count() as u64;
    zeros as f64 / buf.len() as f64
}

/// True if every byte of `buf` is zero (word-wide scan).
pub fn is_all_zero(buf: &[u8]) -> bool {
    let body = buf.len() / 8 * 8;
    let (head, tail) = buf.split_at(body);
    head.chunks_exact(8).all(|c| ne_word(c) == 0) && tail.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let old: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let new: Vec<u8> = (0..4096).map(|i| (i % 193) as u8).collect();
        let delta = xor_pages(&old, &new);
        // old ^ delta == new
        let mut rebuilt = old.clone();
        xor_into(&mut rebuilt, &delta);
        assert_eq!(rebuilt, new);
        // new ^ delta == old
        let mut back = new.clone();
        xor_into(&mut back, &delta);
        assert_eq!(back, old);
    }

    #[test]
    fn xor_identical_pages_is_zero() {
        let page = vec![0xabu8; 4096];
        let delta = xor_pages(&page, &page);
        assert!(is_all_zero(&delta));
        assert_eq!(zero_fraction(&delta), 1.0);
    }

    #[test]
    fn xor_unaligned_length() {
        let a: Vec<u8> = (0..13).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..13).map(|i| (i * 7) as u8).collect();
        let d = xor_pages(&a, &b);
        for i in 0..13 {
            assert_eq!(d[i], a[i] ^ b[i]);
        }
    }

    #[test]
    fn zero_fraction_counts() {
        assert_eq!(zero_fraction(&[]), 1.0);
        assert_eq!(zero_fraction(&[0, 0, 1, 1]), 0.5);
        assert!(!is_all_zero(&[0, 0, 0, 9]));
        assert!(is_all_zero(&[0u8; 17]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut a = [0u8; 4];
        xor_into(&mut a, &[0u8; 5]);
    }

    #[test]
    fn xor2_matches_two_single_passes() {
        for len in [0usize, 1, 7, 8, 9, 13, 64, 65, 4096] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let a0: Vec<u8> = (0..len).map(|i| (i * 5 + 3) as u8).collect();
            let b0: Vec<u8> = (0..len).map(|i| (i * 91 + 7) as u8).collect();
            let (mut a, mut b) = (a0.clone(), b0.clone());
            xor2_into(&mut a, &mut b, &src);
            let (mut ea, mut eb) = (a0, b0);
            xor_into(&mut ea, &src);
            xor_into(&mut eb, &src);
            assert_eq!(a, ea, "len={len}");
            assert_eq!(b, eb, "len={len}");
        }
    }

    #[test]
    fn xor_pages_into_matches_alloc_version() {
        for len in [0usize, 1, 9, 13, 4096] {
            let old: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let new: Vec<u8> = (0..len).map(|i| (i % 193) as u8).collect();
            let mut out = vec![0xEEu8; len];
            xor_pages_into(&mut out, &old, &new);
            assert_eq!(out, xor_pages(&old, &new), "len={len}");
        }
    }

    #[test]
    fn zero_fraction_word_scan_matches_bytewise() {
        for len in [0usize, 1, 7, 8, 9, 31, 4096] {
            let buf: Vec<u8> =
                (0..len).map(|i| if i % 3 == 0 { 0 } else { (i * 17 + 1) as u8 }).collect();
            let expect = if len == 0 {
                1.0
            } else {
                buf.iter().filter(|&&b| b == 0).count() as f64 / len as f64
            };
            assert_eq!(zero_fraction(&buf), expect, "len={len}");
        }
        // 0x80 must not trip the SWAR zero detect.
        assert_eq!(zero_fraction(&[0x80u8; 16]), 0.0);
        assert_eq!(zero_fraction(&[0x01u8; 16]), 0.0);
    }
}
