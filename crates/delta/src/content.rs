//! Synthetic page contents with controlled content locality.
//!
//! The prototype-style experiments need real page bytes whose successive
//! versions differ by a tunable fraction — the "content locality" knob the
//! paper inherits from TRAP-Array: "only 5% to 20% of bits inside a data
//! block are changed on a write operation" (§II-C).
//!
//! [`PageMutator`] produces an initial page and then derives new versions
//! by rewriting a chosen fraction of the page in small clustered runs
//! (changes in real blocks cluster in fields/records rather than spraying
//! single bits).

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_util::rng::seeded_rng;
use rand::rngs::StdRng;
use rand::RngExt;

/// Generates page versions with a controlled fraction of changed bytes.
#[derive(Debug)]
pub struct PageMutator {
    page_size: usize,
    /// Fraction of bytes rewritten per mutation, in (0, 1].
    change_fraction: f64,
    /// Length of each changed run in bytes.
    run_len: usize,
    rng: StdRng,
}

impl PageMutator {
    /// Create a mutator for `page_size`-byte pages where each mutation
    /// rewrites about `change_fraction` of the page in runs of `run_len`.
    ///
    /// # Panics
    /// Panics unless `0 < change_fraction <= 1` and `run_len > 0`.
    pub fn new(page_size: usize, change_fraction: f64, run_len: usize, seed: u64) -> Self {
        assert!(change_fraction > 0.0 && change_fraction <= 1.0);
        assert!(run_len > 0 && page_size > 0);
        PageMutator {
            page_size,
            change_fraction,
            run_len: run_len.min(page_size),
            rng: seeded_rng(seed),
        }
    }

    /// Page size this mutator produces.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Produce an initial page: textual-record-like content (mixed entropy,
    /// resembles OLTP rows more than pure random bytes).
    pub fn initial_page(&mut self) -> Vec<u8> {
        let mut page = vec![0u8; self.page_size];
        let mut off = 0;
        let mut row = 0u64;
        while off < self.page_size {
            let field = format!(
                "rec{:08x}|bal={:012};",
                row ^ self.rng.random::<u32>() as u64,
                self.rng.random_range(0u64..1_000_000_000)
            );
            let bytes = field.as_bytes();
            let n = bytes.len().min(self.page_size - off);
            page[off..off + n].copy_from_slice(&bytes[..n]);
            off += n;
            row += 1;
        }
        page
    }

    /// Derive the next version of `page`, rewriting ~`change_fraction` of it
    /// in clustered runs. Returns the new version; `page` is untouched.
    pub fn mutate(&mut self, page: &[u8]) -> Vec<u8> {
        assert_eq!(page.len(), self.page_size);
        let mut next = page.to_vec();
        let bytes_to_change =
            ((self.page_size as f64 * self.change_fraction).round() as usize).max(1);
        let runs = bytes_to_change.div_ceil(self.run_len).max(1);
        for _ in 0..runs {
            let len = self.run_len.min(bytes_to_change);
            let start = self.rng.random_range(0..=self.page_size - len);
            for b in &mut next[start..start + len] {
                *b = self.rng.random();
            }
        }
        next
    }

    /// Measured fraction of differing bytes between two versions.
    pub fn diff_fraction(a: &[u8], b: &[u8]) -> f64 {
        assert_eq!(a.len(), b.len());
        if a.is_empty() {
            return 0.0;
        }
        let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
        diff as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::compress;
    use crate::xor::xor_pages;

    #[test]
    fn mutation_changes_about_requested_fraction() {
        let mut m = PageMutator::new(4096, 0.10, 64, 7);
        let p0 = m.initial_page();
        let p1 = m.mutate(&p0);
        let f = PageMutator::diff_fraction(&p0, &p1);
        // Runs may overlap and a random byte can equal the old byte, so the
        // observed fraction is a bit below the target; bound loosely.
        assert!(f > 0.04 && f < 0.12, "diff fraction {f}");
    }

    #[test]
    fn xor_delta_of_versions_compresses_to_locality_level() {
        // With 10% of bytes changed, the XOR delta should compress to
        // roughly 10-20% of the page — matching the paper's "high content
        // locality" workloads.
        let mut m = PageMutator::new(4096, 0.10, 64, 11);
        let p0 = m.initial_page();
        let p1 = m.mutate(&p0);
        let delta = xor_pages(&p0, &p1);
        let c = compress(&delta);
        let ratio = c.len() as f64 / 4096.0;
        assert!(ratio < 0.25, "delta ratio {ratio}");
        assert!(ratio > 0.01, "suspiciously good ratio {ratio}");
    }

    #[test]
    fn initial_pages_are_distinct_and_full() {
        let mut m = PageMutator::new(1024, 0.5, 16, 3);
        let a = m.initial_page();
        let b = m.initial_page();
        assert_eq!(a.len(), 1024);
        assert_ne!(a, b);
        // Content is record-like, not all zero.
        assert!(a.iter().filter(|&&x| x == 0).count() < 100);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut m1 = PageMutator::new(512, 0.2, 8, 42);
        let mut m2 = PageMutator::new(512, 0.2, 8, 42);
        let a1 = m1.initial_page();
        let a2 = m2.initial_page();
        assert_eq!(a1, a2);
        assert_eq!(m1.mutate(&a1), m2.mutate(&a2));
    }

    #[test]
    fn full_rewrite_allowed() {
        let mut m = PageMutator::new(256, 1.0, 256, 9);
        let p0 = m.initial_page();
        let p1 = m.mutate(&p0);
        assert!(PageMutator::diff_fraction(&p0, &p1) > 0.9);
    }
}
