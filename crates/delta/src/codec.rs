//! A fast byte-oriented compressor specialised for XOR deltas.
//!
//! The paper's prototype compresses deltas with **lzo** "due to its superior
//! performance" (§IV-B1). We cannot ship lzo, so this module provides an
//! equivalent-speed codec built from two passes that match the structure of
//! XOR deltas:
//!
//! * **Zero-RLE** — an XOR delta of two similar pages is mostly `0x00`
//!   (only 5–20 % of bits change per write), so run-length encoding of zero
//!   bytes alone already reaches the paper's 12–50 % ratios; the scan is
//!   single-pass and word-wise (`trailing_zeros` locates run ends);
//! * **LZ** — an LZ77 with a hash-chain match finder (4-byte hash heads,
//!   per-position chain links, bounded probe depth) and 16-bit offsets
//!   catches repeated non-zero patterns (e.g. a record rewritten with a
//!   shifted field).
//!
//! Because compression runs on *every* write hit, the entry point is a
//! stateful [`Compressor`] that owns all match-finder scratch (epoch-stamped
//! head table + chain links + candidate output buffers) so steady-state
//! compression performs exactly one allocation: the returned buffer. A
//! sampled **compressibility probe** routes each page before any full pass
//! runs: near-all-zero pages take the RLE pass alone, zero-free pages with
//! repeating 4-grams take the LZ pass alone, zero-free pages without
//! repetition are stored raw immediately, and only the ambiguous middle runs
//! both passes and keeps the smaller output.
//!
//! The output format is unchanged from the original two-pass codec: a
//! one-byte header records which representation was chosen and the worst
//! case output is `input + 1` bytes. [`compress`] remains as a stateless
//! convenience wrapper (it builds a throwaway [`Compressor`]).

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

/// Which representation a compressed buffer uses (the header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaCodec {
    /// Verbatim copy (incompressible input).
    Raw = 0,
    /// Zero run-length encoding.
    ZeroRle = 1,
    /// LZ77 with hash-chain match finder, 16-bit window.
    Lz = 2,
}

/// Errors surfaced when decoding a compressed delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The buffer is empty or its header byte is unknown.
    BadHeader,
    /// The token stream ended mid-token.
    Truncated,
    /// A match referenced data before the start of the output.
    BadMatchOffset,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::BadHeader => write!(f, "unknown or missing codec header"),
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadMatchOffset => write!(f, "LZ match offset out of range"),
        }
    }
}

impl std::error::Error for CompressError {}

// ---- Zero-RLE ----------------------------------------------------------
//
// Token stream:
//   control byte 0x00..=0x7F : literal run of (c + 1) bytes follows
//   control byte 0x80..=0xFF : run of (c - 0x7F) zero bytes (1..=128)
// Long runs are emitted as multiple tokens (a 4 KiB all-zero page costs
// 32 control bytes).

/// Load 8 little-endian bytes at `pos` (caller guarantees `pos + 8 <= len`).
#[inline]
fn le_word_at(data: &[u8], pos: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&data[pos..pos + 8]);
    u64::from_le_bytes(w)
}

/// Length of the run of `0x00` bytes starting at `start`, scanned a word at
/// a time; the first non-zero byte is located with `trailing_zeros` on the
/// little-endian word, so memory order maps to bit order.
#[inline]
fn zero_run_len(data: &[u8], start: usize) -> usize {
    let mut i = start;
    while i + 8 <= data.len() {
        let w = le_word_at(data, i);
        if w != 0 {
            return i + (w.trailing_zeros() / 8) as usize - start;
        }
        i += 8;
    }
    while i < data.len() && data[i] == 0 {
        i += 1;
    }
    i - start
}

#[inline]
fn emit_zero_run(out: &mut Vec<u8>, mut run: usize) {
    while run > 0 {
        let n = run.min(128);
        out.push(0x7F + n as u8);
        run -= n;
    }
}

fn zero_rle_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < data.len() {
        if data[i] == 0 {
            let run = zero_run_len(data, i);
            i += run;
            emit_zero_run(out, run);
        } else {
            let start = i;
            // A literal run ends at the next *profitable* zero run: a single
            // zero inside literals is cheaper left as a literal byte than as
            // a token boundary (1 control byte either way, but splitting the
            // literal adds a control byte). The run length is hoisted so each
            // byte is scanned exactly once — the terminating zero run is
            // carried into `pending` instead of being re-scanned.
            let mut pending = 0;
            while i < data.len() {
                if data[i] == 0 {
                    let run = zero_run_len(data, i);
                    if run >= 2 || i + run == data.len() {
                        pending = run;
                        break;
                    }
                    i += run; // lone interior zero stays in the literal
                } else {
                    i += 1;
                }
            }
            let mut lit = &data[start..i];
            while !lit.is_empty() {
                let n = lit.len().min(128);
                out.push((n - 1) as u8);
                out.extend_from_slice(&lit[..n]);
                lit = &lit[n..];
            }
            i += pending;
            emit_zero_run(out, pending);
        }
    }
}

fn zero_rle_decompress(mut s: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
    while let Some((&c, rest)) = s.split_first() {
        s = rest;
        if c >= 0x80 {
            let n = (c - 0x7F) as usize;
            out.resize(out.len() + n, 0);
        } else {
            let n = c as usize + 1;
            if s.len() < n {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&s[..n]);
            s = &s[n..];
        }
    }
    Ok(())
}

// ---- LZ77 ---------------------------------------------------------------
//
// Token stream:
//   control byte c, bit7 clear : literal run of (c + 1) bytes follows
//   control byte c, bit7 set   : match of length ((c & 0x7F) + MIN_MATCH),
//                                followed by u16-le distance (1..=65535)
//                                back from the current output position.

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
const HASH_BITS: u32 = 13;
/// How many chain candidates the finder examines per position. Depth 16 is
/// the classic fast-level trade-off: nearly all of the ratio of an unbounded
/// search at a small fraction of the probes.
const CHAIN_DEPTH: usize = 16;
/// A match at least this long is accepted without walking further chain
/// candidates (a longer match could save at most a few control bytes).
const GOOD_LEN: usize = 32;
/// Inputs shorter than this skip the probe and run both passes (sampling a
/// few hundred bytes is not cheaper than just compressing them).
const PROBE_MIN: usize = 1024;

#[inline]
fn lz_hash(bytes: &[u8]) -> usize {
    // Callers guarantee `bytes.len() >= MIN_MATCH`; zip keeps the load
    // panic-free regardless (short input hashes the available prefix).
    let mut w = [0u8; 4];
    for (d, s) in w.iter_mut().zip(bytes) {
        *d = *s;
    }
    let v = u32::from_le_bytes(w);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Extend a match whose first `MIN_MATCH` bytes the caller has already
/// verified, eight bytes at a time: XOR the two windows and locate the first
/// differing byte with `trailing_zeros`.
#[inline]
fn match_len(data: &[u8], cand: usize, pos: usize, max_len: usize) -> usize {
    let mut len = MIN_MATCH;
    while len + 8 <= max_len {
        let x = le_word_at(data, cand + len) ^ le_word_at(data, pos + len);
        if x != 0 {
            return len + (x.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max_len && data[cand + len] == data[pos + len] {
        len += 1;
    }
    len
}

#[inline]
fn flush_literals(out: &mut Vec<u8>, data: &[u8], from: usize, to: usize) {
    let mut lit = &data[from..to];
    while !lit.is_empty() {
        let n = lit.len().min(128);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lit[..n]);
        lit = &lit[n..];
    }
}

// ---- Compressibility probe ----------------------------------------------

/// Which passes the sampled probe decided to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Ambiguous content: run both passes, keep the smaller.
    Both,
    /// Near-all-zero page: the RLE pass alone is already near-optimal.
    RleOnly,
    /// Zero-free page with repeating 4-grams: only LZ can win.
    LzOnly,
    /// Zero-free page without sampled repetition: store raw immediately.
    Raw,
}

/// Compressibility probe: the exact SWAR [`crate::xor::zero_fraction`]
/// (one word-wise pass, ~35 GB/s — noise next to the passes it gates)
/// classifies the zero mass; when the page is essentially zero-free, 32
/// strided 4-grams are hashed into a tiny table to test for repetition.
fn probe(data: &[u8]) -> Route {
    if data.len() < PROBE_MIN {
        return Route::Both;
    }
    let zf = crate::xor::zero_fraction(data);
    if zf >= 0.75 {
        // XOR deltas of similar pages live here (80–95 % zero). RLE is
        // within a few control bytes of anything LZ could do on this class,
        // at a fraction of the match-finder's scan cost.
        return Route::RleOnly;
    }
    if zf > 1.0 / 16.0 {
        return Route::Both;
    }
    // Essentially zero-free: RLE degenerates to a literal copy, so the only
    // question is whether LZ can find matches. Sample 4-grams; two verified
    // repeats among 32 samples is strong evidence of periodic content.
    const GRAMS: usize = 32;
    let gstride = (data.len() - 4) / (GRAMS - 1);
    let mut seen = [0u64; 64];
    let mut dups = 0usize;
    for j in 0..GRAMS {
        let pos = j * gstride;
        let mut w = [0u8; 4];
        w.copy_from_slice(&data[pos..pos + 4]);
        let g = u32::from_le_bytes(w);
        let idx = (g.wrapping_mul(0x9E37_79B1) >> 26) as usize;
        let tagged = u64::from(g) | 1 << 32;
        if seen[idx] == tagged {
            dups += 1;
        } else {
            seen[idx] = tagged;
        }
    }
    if dups >= 2 {
        Route::LzOnly
    } else {
        Route::Raw
    }
}

// ---- Compressor ----------------------------------------------------------

/// Stateful compressor owning all match-finder scratch, so steady-state
/// [`Compressor::compress`] performs exactly one allocation (the returned
/// buffer).
///
/// The hash-head table is **epoch-stamped**: each entry packs
/// `(epoch << 32) | position`, the epoch increments on every LZ pass, and an
/// entry is live only if its epoch matches the current pass. Stale entries
/// from earlier pages are therefore self-invalidating without an O(table)
/// clear per call, and the output for a given input is byte-identical no
/// matter what was compressed before — determinism does not depend on
/// scratch contents.
pub struct Compressor {
    /// `hash -> (epoch << 32) | newest position`, live iff epoch matches.
    head: Vec<u64>,
    /// `position -> previous position with the same hash` at insert time
    /// (`u32::MAX` = end of chain). Only positions inserted in the current
    /// epoch are ever reachable, so stale links are never followed.
    chain: Vec<u32>,
    epoch: u32,
    /// Candidate outputs for the run-both-passes route.
    rle_buf: Vec<u8>,
    lz_buf: Vec<u8>,
}

impl Compressor {
    /// Construct a compressor with empty scratch; tables grow on first use
    /// and are reused for the lifetime of the value.
    #[must_use]
    pub fn new() -> Self {
        Compressor {
            // kdd-waiver(KDD006): one-time scratch construction; every
            // subsequent compress() reuses these buffers allocation-free.
            head: vec![0u64; 1 << HASH_BITS],
            chain: Vec::new(),
            epoch: 0,
            rle_buf: Vec::new(),
            lz_buf: Vec::new(),
        }
    }

    /// Compress a delta, choosing the smallest of {raw, zero-RLE, LZ}.
    /// Output format and worst case (`data.len() + 1` bytes) are identical
    /// to the stateless [`compress`].
    pub fn compress(&mut self, data: &[u8]) -> Vec<u8> {
        match probe(data) {
            Route::Raw => raw_copy(data),
            Route::RleOnly => {
                let mut out = Vec::with_capacity(data.len() / 4 + 16);
                out.push(DeltaCodec::ZeroRle as u8);
                zero_rle_compress(data, &mut out);
                finish(out, data)
            }
            Route::LzOnly => {
                let mut out = Vec::with_capacity(data.len() / 2 + 16);
                out.push(DeltaCodec::Lz as u8);
                self.lz_compress(data, &mut out);
                finish(out, data)
            }
            Route::Both => {
                let mut rle = std::mem::take(&mut self.rle_buf);
                rle.clear();
                rle.push(DeltaCodec::ZeroRle as u8);
                zero_rle_compress(data, &mut rle);

                let mut lz = std::mem::take(&mut self.lz_buf);
                lz.clear();
                lz.push(DeltaCodec::Lz as u8);
                self.lz_compress(data, &mut lz);

                let best = if rle.len() <= lz.len() { &rle } else { &lz };
                let out = if best.len() > data.len() {
                    raw_copy(data)
                } else {
                    let mut out = Vec::with_capacity(best.len());
                    out.extend_from_slice(best);
                    out
                };
                self.rle_buf = rle;
                self.lz_buf = lz;
                out
            }
        }
    }

    /// Advance the scratch epoch, clearing the head table only on wrap
    /// (once every 2^32 passes) so entries from prior passes self-expire.
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.head.fill(0);
            self.epoch = 1;
        }
    }

    /// Hash-chain LZ77: each position is linked to the previous position
    /// with the same 4-byte hash, and the finder walks up to [`CHAIN_DEPTH`]
    /// candidates keeping the longest match (first match wins ties, i.e. the
    /// shortest distance).
    fn lz_compress(&mut self, data: &[u8], out: &mut Vec<u8>) {
        self.bump_epoch();
        if self.chain.len() < data.len() {
            self.chain.resize(data.len(), 0);
        }
        let ep = u64::from(self.epoch) << 32;
        let live = |entry: u64| -> Option<usize> {
            (entry & !0xFFFF_FFFF == ep).then_some((entry & 0xFFFF_FFFF) as usize)
        };
        let mut i = 0;
        let mut lit_start = 0;
        while i + MIN_MATCH <= data.len() {
            let h = lz_hash(&data[i..]);
            let max_len = (data.len() - i).min(MAX_MATCH);
            let mut best_len = 0;
            let mut best_dist = 0;
            let mut cand = live(self.head[h]);
            let mut depth = CHAIN_DEPTH;
            while let Some(c) = cand {
                if i - c > u16::MAX as usize {
                    break;
                }
                // Cheap rejection: a candidate can only improve on the
                // current best if it matches at the first yet-unmatched byte.
                if best_len < max_len
                    && data[c + best_len] == data[i + best_len]
                    && data[c..c + MIN_MATCH] == data[i..i + MIN_MATCH]
                {
                    let len = match_len(data, c, i, max_len);
                    if len > best_len {
                        best_len = len;
                        best_dist = i - c;
                        if len >= max_len || len >= GOOD_LEN {
                            break;
                        }
                    }
                }
                depth -= 1;
                if depth == 0 {
                    break;
                }
                let prev = self.chain[c];
                // Chains are strictly position-decreasing; the guard makes
                // termination independent of scratch contents.
                cand = (prev != u32::MAX && (prev as usize) < c).then_some(prev as usize);
            }
            self.chain[i] = live(self.head[h]).map_or(u32::MAX, |p| p as u32);
            self.head[h] = ep | i as u64;
            if best_len >= MIN_MATCH {
                flush_literals(out, data, lit_start, i);
                out.push(0x80 | (best_len - MIN_MATCH) as u8);
                out.extend_from_slice(&(best_dist as u16).to_le_bytes());
                // Seed the tables inside the match (every other position —
                // the classic fast-level stride) so later data can still
                // reference it at half the insert cost.
                let end = i + best_len;
                i += 1;
                while i < end && i + MIN_MATCH <= data.len() {
                    let h = lz_hash(&data[i..]);
                    self.chain[i] = live(self.head[h]).map_or(u32::MAX, |p| p as u32);
                    self.head[h] = ep | i as u64;
                    i += 2;
                }
                i = end;
                lit_start = i;
            } else {
                i += 1;
            }
        }
        flush_literals(out, data, lit_start, data.len());
    }
}

impl Default for Compressor {
    fn default() -> Self {
        Compressor::new()
    }
}

/// Raw fallback: header byte + verbatim copy.
fn raw_copy(data: &[u8]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(data.len() + 1);
    raw.push(DeltaCodec::Raw as u8);
    raw.extend_from_slice(data);
    raw
}

/// Enforce the never-expands invariant on a candidate encoding.
fn finish(out: Vec<u8>, data: &[u8]) -> Vec<u8> {
    if out.len() > data.len() {
        raw_copy(data)
    } else {
        out
    }
}

fn lz_decompress(mut s: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
    while let Some((&c, rest)) = s.split_first() {
        s = rest;
        if c & 0x80 == 0 {
            let n = c as usize + 1;
            if s.len() < n {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&s[..n]);
            s = &s[n..];
        } else {
            let len = (c & 0x7F) as usize + MIN_MATCH;
            if s.len() < 2 {
                return Err(CompressError::Truncated);
            }
            let dist = u16::from_le_bytes([s[0], s[1]]) as usize;
            s = &s[2..];
            if dist == 0 || dist > out.len() {
                return Err(CompressError::BadMatchOffset);
            }
            let start = out.len() - dist;
            // Overlapping copies are legal (dist < len repeats a pattern).
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(())
}

// ---- Public API ---------------------------------------------------------

/// Compress a delta, choosing the smallest of {raw, zero-RLE, LZ}.
///
/// Worst case the output is `data.len() + 1` bytes (raw + header).
///
/// This is the stateless convenience entry point; hot paths should hold a
/// [`Compressor`] and call [`Compressor::compress`] to reuse the
/// match-finder scratch across calls. Both produce identical bytes.
///
/// # Examples
///
/// ```
/// use kdd_delta::codec::{compress, decompress};
///
/// // An XOR delta of two similar pages: mostly zeros.
/// let mut delta = vec![0u8; 4096];
/// delta[100..140].fill(0x5A);
/// let packed = compress(&delta);
/// assert!(packed.len() < 100);
/// assert_eq!(decompress(&packed).unwrap(), delta);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    Compressor::new().compress(data)
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (&header, payload) = data.split_first().ok_or(CompressError::BadHeader)?;
    let mut out = Vec::with_capacity(payload.len() * 4);
    match header {
        h if h == DeltaCodec::Raw as u8 => out.extend_from_slice(payload),
        h if h == DeltaCodec::ZeroRle as u8 => zero_rle_decompress(payload, &mut out)?,
        h if h == DeltaCodec::Lz as u8 => lz_decompress(payload, &mut out)?,
        _ => return Err(CompressError::BadHeader),
    }
    Ok(out)
}

/// Which codec a compressed buffer used (diagnostics / ablation).
pub fn codec_of(data: &[u8]) -> Option<DeltaCodec> {
    match data.first()? {
        0 => Some(DeltaCodec::Raw),
        1 => Some(DeltaCodec::ZeroRle),
        2 => Some(DeltaCodec::Lz),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "roundtrip failed");
        c.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(&[]), 1);
    }

    #[test]
    fn all_zero_page_compresses_hard() {
        let n = roundtrip(&vec![0u8; 4096]);
        assert!(n <= 40, "all-zero 4K page compressed to {n} bytes");
    }

    #[test]
    fn sparse_delta_hits_paper_ratios() {
        // 10% of bytes non-zero, scattered in clusters: the "medium content
        // locality" regime. Expect a ratio well under 25%.
        let mut page = vec![0u8; 4096];
        let mut x = 12345u64;
        for c in 0..40 {
            for k in 0..10 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                page[c * 100 + k] = (x >> 33) as u8 | 1;
            }
        }
        let n = roundtrip(&page);
        assert!(n < 1024, "sparse delta compressed to {n} (>25%)");
    }

    #[test]
    fn incompressible_costs_one_byte() {
        let mut x = 99u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let n = roundtrip(&data);
        assert!(n <= 4097, "raw fallback exceeded input+1: {n}");
    }

    #[test]
    fn repeated_pattern_uses_lz() {
        let pattern = b"transaction-row-0042;";
        let mut data = Vec::new();
        while data.len() < 4000 {
            data.extend_from_slice(pattern);
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() / 4, "LZ should crush repetition: {}", c.len());
        assert_eq!(codec_of(&c), Some(DeltaCodec::Lz));
    }

    #[test]
    fn single_bytes_and_boundaries() {
        roundtrip(&[0]);
        roundtrip(&[7]);
        roundtrip(&[0, 7]);
        roundtrip(&[7, 0]);
        roundtrip(&[1u8; 128]); // literal-run boundary
        roundtrip(&[1u8; 129]);
        roundtrip(&[0u8; 128]); // zero-run boundary
        roundtrip(&[0u8; 129]);
    }

    #[test]
    fn isolated_zeros_stay_in_literals() {
        // "a0b0c0..." — single zeros should not explode token count.
        let data: Vec<u8> =
            (0..256).map(|i| if i % 2 == 0 { (i % 250) as u8 + 1 } else { 0 }).collect();
        let n = roundtrip(&data);
        assert!(n <= data.len() + 1 + data.len() / 64, "token overhead too big: {n}");
    }

    #[test]
    fn truncated_streams_error() {
        let c = compress(&[9u8; 100]);
        for cut in 1..c.len().min(8) {
            let r = decompress(&c[..c.len() - cut]);
            // Either an error, or (if the cut happened to land on a token
            // boundary) a shorter output — never a panic and never equal.
            if let Ok(out) = r {
                assert_ne!(out.len(), 100);
            }
        }
        assert_eq!(decompress(&[]).unwrap_err(), CompressError::BadHeader);
        assert_eq!(decompress(&[0xEE]).unwrap_err(), CompressError::BadHeader);
    }

    #[test]
    fn bad_lz_offset_rejected() {
        // Hand-craft: header Lz, match token with dist 5 but empty output.
        let bad = [2u8, 0x80, 5, 0];
        assert_eq!(decompress(&bad).unwrap_err(), CompressError::BadMatchOffset);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // 1-byte period pattern forces overlapping copies in LZ.
        let data = vec![0x55u8; 1000];
        roundtrip(&data);
    }

    #[test]
    fn compressor_reuse_is_deterministic() {
        // The epoch-stamped scratch must make output a pure function of the
        // input: interleaving unrelated pages through one Compressor has to
        // produce byte-identical results to fresh compressors.
        let mut shared = Compressor::new();
        let pages: Vec<Vec<u8>> = vec![
            vec![0u8; 4096],
            (0..4096).map(|i| (i % 251) as u8).collect(),
            (0..4096).map(|i| u8::from(i % 7 == 0) * 0x33).collect(),
            b"transaction-row-0042;".repeat(200),
            (0..1500).map(|i| ((i * 2654435761u64) >> 24) as u8).collect(),
        ];
        for round in 0..3 {
            for page in &pages {
                let reused = shared.compress(page);
                let fresh = Compressor::new().compress(page);
                assert_eq!(reused, fresh, "round {round}: reuse changed output");
                assert_eq!(decompress(&reused).unwrap(), *page);
            }
        }
    }

    #[test]
    fn single_pass_rle_matches_bytewise_reference() {
        // Reference encoder: naive per-byte scan with the same token rules
        // (zero runs ≥ 2, or a terminal run of any length, become tokens).
        fn reference_rle(data: &[u8], out: &mut Vec<u8>) {
            let mut i = 0;
            while i < data.len() {
                if data[i] == 0 {
                    // At a token boundary every zero run becomes a token,
                    // whatever its length (only *interior* single zeros stay
                    // inside a literal run).
                    let zstart = i;
                    while i < data.len() && data[i] == 0 {
                        i += 1;
                    }
                    emit_zero_run(out, i - zstart);
                    continue;
                }
                let start = i;
                while i < data.len() {
                    if data[i] == 0 {
                        let mut j = i;
                        while j < data.len() && data[j] == 0 {
                            j += 1;
                        }
                        if j - i >= 2 || j == data.len() {
                            break;
                        }
                        i = j;
                    } else {
                        i += 1;
                    }
                }
                let mut lit = &data[start..i];
                while !lit.is_empty() {
                    let n = lit.len().min(128);
                    out.push((n - 1) as u8);
                    out.extend_from_slice(&lit[..n]);
                    lit = &lit[n..];
                }
                let zstart = i;
                while i < data.len() && data[i] == 0 {
                    i += 1;
                }
                emit_zero_run(out, i - zstart);
            }
        }
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![5],
            vec![5, 0],
            vec![0, 5],
            vec![1, 0, 2, 0, 0, 3],
            vec![0u8; 300],
            vec![9u8; 300],
            (0..1024).map(|i| if i % 3 == 0 { 0 } else { (i % 200) as u8 + 1 }).collect(),
            (0..1024).map(|i| u8::from(i % 150 > 120) * 7).collect(),
        ];
        for data in &cases {
            let mut fast = Vec::new();
            zero_rle_compress(data, &mut fast);
            let mut slow = Vec::new();
            reference_rle(data, &mut slow);
            assert_eq!(fast, slow, "single-pass RLE diverged on {} bytes", data.len());
            let mut back = Vec::new();
            zero_rle_decompress(&fast, &mut back).unwrap();
            assert_eq!(back, *data);
        }
    }

    #[test]
    fn probe_routes_match_content_classes() {
        let zeros = vec![0u8; 4096];
        assert_eq!(probe(&zeros), Route::RleOnly);
        let text = b"req=000001 op=write path=/vol0/seg001/blk ".repeat(100);
        assert_eq!(probe(&text), Route::LzOnly);
        let mut x = 0x9e3779b97f4a7c15u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        assert_eq!(probe(&noise), Route::Raw);
        assert!(probe(&noise[..512]) == Route::Both, "short inputs skip the probe");
    }
}
