//! A fast byte-oriented compressor specialised for XOR deltas.
//!
//! The paper's prototype compresses deltas with **lzo** "due to its superior
//! performance" (§IV-B1). We cannot ship lzo, so this module provides an
//! equivalent-speed codec built from two passes that match the structure of
//! XOR deltas:
//!
//! * **Zero-RLE** — an XOR delta of two similar pages is mostly `0x00`
//!   (only 5–20 % of bits change per write), so run-length encoding of zero
//!   bytes alone already reaches the paper's 12–50 % ratios;
//! * **LZ** — a greedy LZ77 with a 4-byte hash table and 16-bit offsets
//!   catches repeated non-zero patterns (e.g. a record rewritten with a
//!   shifted field).
//!
//! [`compress`] runs both and keeps the smaller output, falling back to a
//! raw copy when the data is incompressible, so the compressed size is
//! never more than one byte larger than the input. A one-byte header
//! records which representation was chosen.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

/// Which representation a compressed buffer uses (the header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaCodec {
    /// Verbatim copy (incompressible input).
    Raw = 0,
    /// Zero run-length encoding.
    ZeroRle = 1,
    /// Greedy LZ77, 16-bit window.
    Lz = 2,
}

/// Errors surfaced when decoding a compressed delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The buffer is empty or its header byte is unknown.
    BadHeader,
    /// The token stream ended mid-token.
    Truncated,
    /// A match referenced data before the start of the output.
    BadMatchOffset,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::BadHeader => write!(f, "unknown or missing codec header"),
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadMatchOffset => write!(f, "LZ match offset out of range"),
        }
    }
}

impl std::error::Error for CompressError {}

// ---- Zero-RLE ----------------------------------------------------------
//
// Token stream:
//   control byte 0x00..=0x7F : literal run of (c + 1) bytes follows
//   control byte 0x80..=0xFF : run of (c - 0x7F) zero bytes (1..=128)
// Long runs are emitted as multiple tokens (a 4 KiB all-zero page costs
// 32 control bytes).

/// Load 8 little-endian bytes at `pos` (caller guarantees `pos + 8 <= len`).
#[inline]
fn le_word_at(data: &[u8], pos: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&data[pos..pos + 8]);
    u64::from_le_bytes(w)
}

/// Length of the run of `0x00` bytes starting at `start`, scanned a word at
/// a time; the first non-zero byte is located with `trailing_zeros` on the
/// little-endian word, so memory order maps to bit order.
#[inline]
fn zero_run_len(data: &[u8], start: usize) -> usize {
    let mut i = start;
    while i + 8 <= data.len() {
        let w = le_word_at(data, i);
        if w != 0 {
            return i + (w.trailing_zeros() / 8) as usize - start;
        }
        i += 8;
    }
    while i < data.len() && data[i] == 0 {
        i += 1;
    }
    i - start
}

fn zero_rle_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < data.len() {
        if data[i] == 0 {
            let mut run = zero_run_len(data, i);
            i += run;
            while run > 0 {
                let n = run.min(128);
                out.push(0x7F + n as u8);
                run -= n;
            }
        } else {
            let start = i;
            // A literal run ends at the next *profitable* zero run: a single
            // zero inside literals is cheaper left as a literal byte than as
            // a token boundary (1 control byte either way, but splitting the
            // literal adds a control byte).
            while i < data.len() {
                if data[i] == 0 {
                    let zstart = i;
                    i += zero_run_len(data, i);
                    if i - zstart >= 2 || i == data.len() {
                        i = zstart;
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            let mut lit = &data[start..i];
            while !lit.is_empty() {
                let n = lit.len().min(128);
                out.push((n - 1) as u8);
                out.extend_from_slice(&lit[..n]);
                lit = &lit[n..];
            }
        }
    }
}

fn zero_rle_decompress(mut s: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
    while let Some((&c, rest)) = s.split_first() {
        s = rest;
        if c >= 0x80 {
            let n = (c - 0x7F) as usize;
            out.resize(out.len() + n, 0);
        } else {
            let n = c as usize + 1;
            if s.len() < n {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&s[..n]);
            s = &s[n..];
        }
    }
    Ok(())
}

// ---- LZ77 ---------------------------------------------------------------
//
// Token stream:
//   control byte c, bit7 clear : literal run of (c + 1) bytes follows
//   control byte c, bit7 set   : match of length ((c & 0x7F) + MIN_MATCH),
//                                followed by u16-le distance (1..=65535)
//                                back from the current output position.

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
const HASH_BITS: u32 = 13;

#[inline]
fn lz_hash(bytes: &[u8]) -> usize {
    // Callers guarantee `bytes.len() >= MIN_MATCH`; zip keeps the load
    // panic-free regardless (short input hashes the available prefix).
    let mut w = [0u8; 4];
    for (d, s) in w.iter_mut().zip(bytes) {
        *d = *s;
    }
    let v = u32::from_le_bytes(w);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn lz_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0;
    let mut lit_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut lit = &data[from..to];
        while !lit.is_empty() {
            let n = lit.len().min(128);
            out.push((n - 1) as u8);
            out.extend_from_slice(&lit[..n]);
            lit = &lit[n..];
        }
    };

    while i + MIN_MATCH <= data.len() {
        let h = lz_hash(&data[i..]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX
            && i - cand <= u16::MAX as usize
            && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH]
        {
            // Extend the match, eight bytes at a time: XOR the two windows
            // and locate the first differing byte with `trailing_zeros`.
            let max_len = (data.len() - i).min(MAX_MATCH);
            let mut len = MIN_MATCH;
            while len + 8 <= max_len {
                let x = le_word_at(data, cand + len) ^ le_word_at(data, i + len);
                if x != 0 {
                    len += (x.trailing_zeros() / 8) as usize;
                    break;
                }
                len += 8;
            }
            if len + 8 > max_len {
                while len < max_len && data[cand + len] == data[i + len] {
                    len += 1;
                }
            }
            flush_literals(out, lit_start, i);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            // Seed the table inside the match so later data can reference it.
            let end = i + len;
            i += 1;
            while i < end && i + MIN_MATCH <= data.len() {
                table[lz_hash(&data[i..])] = i;
                i += 1;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(out, lit_start, data.len());
}

fn lz_decompress(mut s: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
    while let Some((&c, rest)) = s.split_first() {
        s = rest;
        if c & 0x80 == 0 {
            let n = c as usize + 1;
            if s.len() < n {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&s[..n]);
            s = &s[n..];
        } else {
            let len = (c & 0x7F) as usize + MIN_MATCH;
            if s.len() < 2 {
                return Err(CompressError::Truncated);
            }
            let dist = u16::from_le_bytes([s[0], s[1]]) as usize;
            s = &s[2..];
            if dist == 0 || dist > out.len() {
                return Err(CompressError::BadMatchOffset);
            }
            let start = out.len() - dist;
            // Overlapping copies are legal (dist < len repeats a pattern).
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(())
}

// ---- Public API ---------------------------------------------------------

/// Compress a delta, choosing the smallest of {raw, zero-RLE, LZ}.
///
/// Worst case the output is `data.len() + 1` bytes (raw + header).
///
/// # Examples
///
/// ```
/// use kdd_delta::codec::{compress, decompress};
///
/// // An XOR delta of two similar pages: mostly zeros.
/// let mut delta = vec![0u8; 4096];
/// delta[100..140].fill(0x5A);
/// let packed = compress(&delta);
/// assert!(packed.len() < 100);
/// assert_eq!(decompress(&packed).unwrap(), delta);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut rle = Vec::with_capacity(data.len() / 4 + 16);
    rle.push(DeltaCodec::ZeroRle as u8);
    zero_rle_compress(data, &mut rle);

    let mut lz = Vec::with_capacity(data.len() / 4 + 16);
    lz.push(DeltaCodec::Lz as u8);
    lz_compress(data, &mut lz);

    let best = if rle.len() <= lz.len() { rle } else { lz };
    if best.len() > data.len() {
        let mut raw = Vec::with_capacity(data.len() + 1);
        raw.push(DeltaCodec::Raw as u8);
        raw.extend_from_slice(data);
        raw
    } else {
        best
    }
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (&header, payload) = data.split_first().ok_or(CompressError::BadHeader)?;
    let mut out = Vec::with_capacity(payload.len() * 4);
    match header {
        h if h == DeltaCodec::Raw as u8 => out.extend_from_slice(payload),
        h if h == DeltaCodec::ZeroRle as u8 => zero_rle_decompress(payload, &mut out)?,
        h if h == DeltaCodec::Lz as u8 => lz_decompress(payload, &mut out)?,
        _ => return Err(CompressError::BadHeader),
    }
    Ok(out)
}

/// Which codec a compressed buffer used (diagnostics / ablation).
pub fn codec_of(data: &[u8]) -> Option<DeltaCodec> {
    match data.first()? {
        0 => Some(DeltaCodec::Raw),
        1 => Some(DeltaCodec::ZeroRle),
        2 => Some(DeltaCodec::Lz),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "roundtrip failed");
        c.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(&[]), 1);
    }

    #[test]
    fn all_zero_page_compresses_hard() {
        let n = roundtrip(&vec![0u8; 4096]);
        assert!(n <= 40, "all-zero 4K page compressed to {n} bytes");
    }

    #[test]
    fn sparse_delta_hits_paper_ratios() {
        // 10% of bytes non-zero, scattered in clusters: the "medium content
        // locality" regime. Expect a ratio well under 25%.
        let mut page = vec![0u8; 4096];
        let mut x = 12345u64;
        for c in 0..40 {
            for k in 0..10 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                page[c * 100 + k] = (x >> 33) as u8 | 1;
            }
        }
        let n = roundtrip(&page);
        assert!(n < 1024, "sparse delta compressed to {n} (>25%)");
    }

    #[test]
    fn incompressible_costs_one_byte() {
        let mut x = 99u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let n = roundtrip(&data);
        assert!(n <= 4097, "raw fallback exceeded input+1: {n}");
    }

    #[test]
    fn repeated_pattern_uses_lz() {
        let pattern = b"transaction-row-0042;";
        let mut data = Vec::new();
        while data.len() < 4000 {
            data.extend_from_slice(pattern);
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() / 4, "LZ should crush repetition: {}", c.len());
        assert_eq!(codec_of(&c), Some(DeltaCodec::Lz));
    }

    #[test]
    fn single_bytes_and_boundaries() {
        roundtrip(&[0]);
        roundtrip(&[7]);
        roundtrip(&[0, 7]);
        roundtrip(&[7, 0]);
        roundtrip(&[1u8; 128]); // literal-run boundary
        roundtrip(&[1u8; 129]);
        roundtrip(&[0u8; 128]); // zero-run boundary
        roundtrip(&[0u8; 129]);
    }

    #[test]
    fn isolated_zeros_stay_in_literals() {
        // "a0b0c0..." — single zeros should not explode token count.
        let data: Vec<u8> =
            (0..256).map(|i| if i % 2 == 0 { (i % 250) as u8 + 1 } else { 0 }).collect();
        let n = roundtrip(&data);
        assert!(n <= data.len() + 1 + data.len() / 64, "token overhead too big: {n}");
    }

    #[test]
    fn truncated_streams_error() {
        let c = compress(&[9u8; 100]);
        for cut in 1..c.len().min(8) {
            let r = decompress(&c[..c.len() - cut]);
            // Either an error, or (if the cut happened to land on a token
            // boundary) a shorter output — never a panic and never equal.
            if let Ok(out) = r {
                assert_ne!(out.len(), 100);
            }
        }
        assert_eq!(decompress(&[]).unwrap_err(), CompressError::BadHeader);
        assert_eq!(decompress(&[0xEE]).unwrap_err(), CompressError::BadHeader);
    }

    #[test]
    fn bad_lz_offset_rejected() {
        // Hand-craft: header Lz, match token with dist 5 but empty output.
        let bad = [2u8, 0x80, 5, 0];
        assert_eq!(decompress(&bad).unwrap_err(), CompressError::BadMatchOffset);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // 1-byte period pattern forces overlapping copies in LZ.
        let data = vec![0x55u8; 1000];
        roundtrip(&data);
    }
}
