//! Property tests: the word-wise GF(2^8) bulk kernels against the scalar
//! table multiply, across every coefficient (const-specialised chains
//! *and* the split-nibble fallback) and odd/unaligned lengths.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_raid::gf256;
use proptest::prelude::*;

/// Deterministic "random-looking" page content.
fn content(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt).rotate_left(3)).collect()
}

/// Every coefficient × a sweep of word-tail lengths, checked against the
/// scalar field multiply byte by byte. This covers all sixteen
/// const-specialised chains (g^0..g^15) and the nibble fallback.
#[test]
fn all_256_coefficients_match_scalar_mul() {
    for c in 0u8..=255 {
        for len in [0usize, 1, 7, 8, 9, 31, 63, 64, 65, 300, 301, 511, 4096] {
            let src = content(len, c);
            let init = content(len, c.wrapping_add(97));
            let mut dst = init.clone();
            gf256::mul_slice_into(&mut dst, &src, c);
            for (i, ((&d, &s), &d0)) in dst.iter().zip(&src).zip(&init).enumerate() {
                assert_eq!(
                    d,
                    d0 ^ gf256::mul(c, s),
                    "mul_slice_into mismatch c={c:#04x} len={len} i={i}"
                );
            }
        }
    }
}

/// Same sweep for the fused P+Q kernel: P accumulates the raw bytes,
/// Q accumulates `c·src`, in one pass.
#[test]
fn all_256_coefficients_match_fused_pq() {
    for c in 0u8..=255 {
        for len in [0usize, 1, 7, 8, 9, 31, 300, 301] {
            let src = content(len, c.wrapping_add(7));
            let p0 = content(len, 0x11);
            let q0 = content(len, 0x77);
            let mut p = p0.clone();
            let mut q = q0.clone();
            gf256::mul2_slice_into(&mut p, &mut q, &src, c);
            for i in 0..len {
                assert_eq!(p[i], p0[i] ^ src[i], "fused P mismatch c={c:#04x} len={len} i={i}");
                assert_eq!(
                    q[i],
                    q0[i] ^ gf256::mul(c, src[i]),
                    "fused Q mismatch c={c:#04x} len={len} i={i}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random content, length and coefficient: the bulk kernel equals the
    /// scalar multiply, and the fused kernel equals two single passes.
    #[test]
    fn bulk_kernels_match_scalar(
        src in proptest::collection::vec(any::<u8>(), 0..600),
        init in any::<u8>(),
        c in any::<u8>(),
    ) {
        let len = src.len();
        let d0 = content(len, init);
        let mut dst = d0.clone();
        gf256::mul_slice_into(&mut dst, &src, c);
        for i in 0..len {
            prop_assert_eq!(dst[i], d0[i] ^ gf256::mul(c, src[i]));
        }

        let mut p = d0.clone();
        let mut q = dst.clone();
        let q0 = q.clone();
        gf256::mul2_slice_into(&mut p, &mut q, &src, c);
        for i in 0..len {
            prop_assert_eq!(p[i], d0[i] ^ src[i]);
            prop_assert_eq!(q[i], q0[i] ^ gf256::mul(c, src[i]));
        }
    }
}
