//! Property tests: the RAID array against a flat-array reference model,
//! under random operation sequences including delayed parity, failures
//! and rebuilds.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_raid::array::{RaidArray, RaidError};
use kdd_raid::layout::{Layout, RaidLevel};
use proptest::prelude::*;

const PS: usize = 128;

#[derive(Debug, Clone)]
enum Action {
    Write(u64, u8),
    WriteNoParity(u64, u8),
    Read(u64),
    CleanRow(u64),
    Resync,
}

fn action_strategy(capacity: u64) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..capacity, any::<u8>()).prop_map(|(l, t)| Action::Write(l, t)),
        (0..capacity, any::<u8>()).prop_map(|(l, t)| Action::WriteNoParity(l, t)),
        (0..capacity).prop_map(Action::Read),
        (0..capacity).prop_map(Action::CleanRow),
        Just(Action::Resync),
    ]
}

fn page(tag: u8) -> Vec<u8> {
    (0..PS).map(|i| tag ^ (i as u8).wrapping_mul(29)).collect()
}

fn check_against_model(
    level: RaidLevel,
    disks: usize,
    actions: &[Action],
) -> Result<(), TestCaseError> {
    let layout = Layout::new(level, disks, 4, 4 * 8);
    let mut array = RaidArray::new(layout, PS as u32);
    let capacity = array.capacity_pages();
    let mut model: Vec<Option<u8>> = vec![None; capacity as usize];
    let mut buf = vec![0u8; PS];

    for a in actions {
        match a {
            Action::Write(lba, tag) => {
                let lba = lba % capacity;
                array.write_page(lba, &page(*tag)).unwrap();
                model[lba as usize] = Some(*tag);
            }
            Action::WriteNoParity(lba, tag) => {
                let lba = lba % capacity;
                array.write_no_parity_update(lba, &page(*tag)).unwrap();
                model[lba as usize] = Some(*tag);
            }
            Action::Read(lba) => {
                let lba = lba % capacity;
                array.read_page(lba, &mut buf).unwrap();
                let expect = model[lba as usize].map(page).unwrap_or_else(|| vec![0u8; PS]);
                prop_assert_eq!(&buf, &expect, "read {} diverged from model", lba);
            }
            Action::CleanRow(lba) => {
                let row = array.layout().row_of(lba % capacity);
                if array.is_stale(row) {
                    array.resync(Some(&[row])).unwrap();
                    prop_assert!(!array.is_stale(row));
                }
            }
            Action::Resync => {
                array.resync(None).unwrap();
                prop_assert_eq!(array.stale_row_count(), 0);
            }
        }
    }

    // Final: resync everything, then survive any single failure (RAID-5)
    // with contents intact.
    array.resync(None).unwrap();
    if level != RaidLevel::Raid0 {
        for victim in 0..disks {
            let mut degraded = array.clone();
            degraded.fail_disk(victim);
            for (lba, m) in model.iter().enumerate() {
                degraded.read_page(lba as u64, &mut buf).unwrap();
                let expect = m.map(page).unwrap_or_else(|| vec![0u8; PS]);
                prop_assert_eq!(&buf, &expect, "degraded({}) read {} wrong", victim, lba);
            }
            degraded.rebuild().unwrap();
            for row in 0..degraded.layout().rows() {
                prop_assert!(degraded.verify_row(row).unwrap(), "row {row} after rebuild");
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn raid5_matches_model(actions in proptest::collection::vec(action_strategy(512), 1..60)) {
        check_against_model(RaidLevel::Raid5, 4, &actions)?;
    }

    #[test]
    fn raid6_matches_model(actions in proptest::collection::vec(action_strategy(512), 1..40)) {
        check_against_model(RaidLevel::Raid6, 5, &actions)?;
    }

    #[test]
    fn raid0_matches_model(actions in proptest::collection::vec(action_strategy(512), 1..60)) {
        // Raid0 has no parity; filter parity-flavoured actions to plain ops.
        let actions: Vec<Action> = actions
            .into_iter()
            .map(|a| match a {
                Action::WriteNoParity(l, t) => Action::Write(l, t),
                Action::CleanRow(l) => Action::Read(l),
                Action::Resync => Action::Read(0),
                other => other,
            })
            .collect();
        check_against_model(RaidLevel::Raid0, 4, &actions)?;
    }

    /// RAID-6 tolerates any double failure after resync.
    #[test]
    fn raid6_survives_double_failures(
        writes in proptest::collection::vec((0u64..256, any::<u8>()), 1..30),
        f1 in 0usize..5,
        f2 in 0usize..5,
    ) {
        prop_assume!(f1 != f2);
        let layout = Layout::new(RaidLevel::Raid6, 5, 4, 4 * 8);
        let mut array = RaidArray::new(layout, PS as u32);
        let cap = array.capacity_pages();
        let mut model: Vec<Option<u8>> = vec![None; cap as usize];
        for (lba, tag) in &writes {
            let lba = lba % cap;
            array.write_page(lba, &page(*tag)).unwrap();
            model[lba as usize] = Some(*tag);
        }
        array.fail_disk(f1);
        array.fail_disk(f2);
        let mut buf = vec![0u8; PS];
        for (lba, m) in model.iter().enumerate() {
            array.read_page(lba as u64, &mut buf).unwrap();
            let expect = m.map(page).unwrap_or_else(|| vec![0u8; PS]);
            prop_assert_eq!(&buf, &expect);
        }
    }

    /// A degraded read on a stale row is always refused, never silently
    /// wrong (the §I data-loss window made visible).
    #[test]
    fn stale_degraded_reads_always_refused(lba in 0u64..128, tag in any::<u8>()) {
        let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 8);
        let mut array = RaidArray::new(layout, PS as u32);
        let lba = lba % array.capacity_pages();
        array.write_page(lba, &page(tag)).unwrap();
        array.write_no_parity_update(lba, &page(tag ^ 0xFF)).unwrap();
        let row = array.layout().row_of(lba);
        // Fail a different member of the same row.
        let peer = array.layout().row_lpns(row).into_iter().find(|&l| l != lba).unwrap();
        let peer_disk = array.layout().locate(peer).disk;
        array.fail_disk(peer_disk);
        let mut buf = vec![0u8; PS];
        prop_assert_eq!(
            array.read_page(peer, &mut buf).unwrap_err(),
            RaidError::StaleParity { row }
        );
    }
}
