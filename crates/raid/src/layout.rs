//! Stripe geometry: mapping logical pages to (disk, disk-page) plus parity
//! placement.
//!
//! RAID-5 uses the *left-symmetric* layout (the Linux MD default the
//! paper's prototype runs on): parity rotates from the last disk toward
//! the first as the stripe number grows, and data units start on the disk
//! after the parity disk. RAID-6 places Q on the disk after P.
//!
//! Parity is page-granular: a **parity row** is one page on the parity
//! disk protecting the same-offset page of every data chunk in its stripe.
//! The row is the unit KDD tracks staleness at and the unit
//! `parity_update` repairs; `stripe` (the chunk-granular group) is what
//! the cache uses for set placement ("DAZ pages in the same parity stripe
//! are mapped to the same cache set", §III-B).

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use serde::{Deserialize, Serialize};

/// RAID level of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaidLevel {
    /// Striping, no redundancy.
    Raid0,
    /// Single rotating parity (left-symmetric).
    Raid5,
    /// P + Q (Reed–Solomon) rotating parity.
    Raid6,
}

impl RaidLevel {
    /// Number of parity units per stripe.
    pub fn parity_count(self) -> usize {
        match self {
            RaidLevel::Raid0 => 0,
            RaidLevel::Raid5 => 1,
            RaidLevel::Raid6 => 2,
        }
    }
}

/// Where a logical page lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLocation {
    /// Disk index within the array.
    pub disk: usize,
    /// Page offset within that disk.
    pub disk_page: u64,
    /// Chunk-granular stripe number.
    pub stripe: u64,
    /// Index of this page's data unit within its stripe (0-based).
    pub data_index: usize,
    /// Page-granular parity row this page belongs to.
    pub row: u64,
}

/// Immutable array geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// RAID level.
    pub level: RaidLevel,
    /// Total member disks.
    pub disks: usize,
    /// Pages per chunk (stripe unit). 64 KiB chunk / 4 KiB pages = 16.
    pub chunk_pages: u64,
    /// Capacity of each member disk, in pages (multiple of `chunk_pages`).
    pub disk_pages: u64,
}

impl Layout {
    /// Create a layout; validates the shape.
    ///
    /// # Panics
    /// Panics if there are too few disks for the level, `chunk_pages` is
    /// zero, or `disk_pages` is not a multiple of `chunk_pages`.
    pub fn new(level: RaidLevel, disks: usize, chunk_pages: u64, disk_pages: u64) -> Self {
        let min_disks = match level {
            RaidLevel::Raid0 => 2,
            RaidLevel::Raid5 => 3,
            RaidLevel::Raid6 => 4,
        };
        assert!(disks >= min_disks, "{level:?} needs at least {min_disks} disks");
        assert!(chunk_pages > 0, "chunk must hold at least one page");
        assert!(disk_pages > 0 && disk_pages % chunk_pages == 0, "disk size must be whole chunks");
        Layout { level, disks, chunk_pages, disk_pages }
    }

    /// Data units per stripe.
    pub fn data_disks(&self) -> usize {
        self.disks - self.level.parity_count()
    }

    /// Logical data pages the array exposes.
    pub fn capacity_pages(&self) -> u64 {
        self.disk_pages / self.chunk_pages * self.chunk_pages * self.data_disks() as u64
    }

    /// Number of stripes.
    pub fn stripes(&self) -> u64 {
        self.disk_pages / self.chunk_pages
    }

    /// Number of parity rows (pages per stripe × stripes).
    pub fn rows(&self) -> u64 {
        self.stripes() * self.chunk_pages
    }

    /// Pages of logical data protected by one parity row.
    pub fn row_width(&self) -> usize {
        self.data_disks()
    }

    /// Left-symmetric P-disk rotation: parity walks backwards from the last
    /// disk. Valid for every level; RAID-0 simply has no parity to place.
    fn rotated_parity_disk(&self, stripe: u64) -> usize {
        ((self.disks as u64 - 1) - (stripe % self.disks as u64)) as usize
    }

    /// Parity (P) disk of a stripe; `None` for RAID-0.
    pub fn parity_disk(&self, stripe: u64) -> Option<usize> {
        match self.level {
            RaidLevel::Raid0 => None,
            _ => Some(self.rotated_parity_disk(stripe)),
        }
    }

    /// Q-parity disk of a stripe; `None` unless RAID-6.
    pub fn q_disk(&self, stripe: u64) -> Option<usize> {
        match self.level {
            RaidLevel::Raid6 => Some((self.rotated_parity_disk(stripe) + 1) % self.disks),
            _ => None,
        }
    }

    /// Disk holding data unit `d` of `stripe`.
    pub fn data_disk(&self, stripe: u64, d: usize) -> usize {
        debug_assert!(d < self.data_disks());
        match self.level {
            RaidLevel::Raid0 => d,
            RaidLevel::Raid5 => {
                let p = self.rotated_parity_disk(stripe);
                (p + 1 + d) % self.disks
            }
            RaidLevel::Raid6 => {
                let q = (self.rotated_parity_disk(stripe) + 1) % self.disks;
                (q + 1 + d) % self.disks
            }
        }
    }

    /// Locate a logical page.
    ///
    /// # Panics
    /// Panics if `lpn` is beyond [`Layout::capacity_pages`].
    pub fn locate(&self, lpn: u64) -> PageLocation {
        assert!(lpn < self.capacity_pages(), "lpn {lpn} beyond capacity");
        let chunk = lpn / self.chunk_pages;
        let offset = lpn % self.chunk_pages;
        let dd = self.data_disks() as u64;
        let stripe = chunk / dd;
        let data_index = (chunk % dd) as usize;
        let disk = self.data_disk(stripe, data_index);
        PageLocation {
            disk,
            disk_page: stripe * self.chunk_pages + offset,
            stripe,
            data_index,
            row: stripe * self.chunk_pages + offset,
        }
    }

    /// Chunk-granular stripe of a logical page.
    pub fn stripe_of(&self, lpn: u64) -> u64 {
        lpn / (self.chunk_pages * self.data_disks() as u64)
    }

    /// Parity row of a logical page.
    pub fn row_of(&self, lpn: u64) -> u64 {
        let stripe = self.stripe_of(lpn);
        stripe * self.chunk_pages + lpn % self.chunk_pages
    }

    /// Stripe that owns a parity row.
    pub fn stripe_of_row(&self, row: u64) -> u64 {
        row / self.chunk_pages
    }

    /// The logical pages protected by parity row `row`, in data-index
    /// order.
    pub fn row_lpns(&self, row: u64) -> Vec<u64> {
        let stripe = row / self.chunk_pages;
        let offset = row % self.chunk_pages;
        let dd = self.data_disks() as u64;
        (0..dd).map(|d| (stripe * dd + d) * self.chunk_pages + offset).collect()
    }

    /// Disk page where parity row `row` stores P.
    pub fn parity_location(&self, row: u64) -> Option<(usize, u64)> {
        let stripe = row / self.chunk_pages;
        let offset = row % self.chunk_pages;
        self.parity_disk(stripe).map(|d| (d, stripe * self.chunk_pages + offset))
    }

    /// Disk page where parity row `row` stores Q.
    pub fn q_location(&self, row: u64) -> Option<(usize, u64)> {
        let stripe = row / self.chunk_pages;
        let offset = row % self.chunk_pages;
        self.q_disk(stripe).map(|d| (d, stripe * self.chunk_pages + offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l5() -> Layout {
        Layout::new(RaidLevel::Raid5, 5, 16, 16 * 64)
    }

    #[test]
    fn capacity_excludes_parity() {
        let l = l5();
        assert_eq!(l.data_disks(), 4);
        assert_eq!(l.capacity_pages(), 64 * 16 * 4);
        let l6 = Layout::new(RaidLevel::Raid6, 6, 16, 16 * 8);
        assert_eq!(l6.data_disks(), 4);
        let l0 = Layout::new(RaidLevel::Raid0, 4, 16, 16 * 8);
        assert_eq!(l0.data_disks(), 4);
    }

    #[test]
    fn parity_rotates_left_symmetric() {
        let l = l5();
        let ps: Vec<usize> = (0..5).map(|s| l.parity_disk(s).unwrap()).collect();
        assert_eq!(ps, vec![4, 3, 2, 1, 0]);
        assert_eq!(l.parity_disk(5), Some(4)); // wraps
    }

    #[test]
    fn data_never_lands_on_parity() {
        let l = l5();
        for stripe in 0..20 {
            let p = l.parity_disk(stripe).unwrap();
            for d in 0..l.data_disks() {
                assert_ne!(l.data_disk(stripe, d), p, "stripe {stripe} unit {d}");
            }
        }
        let l6 = Layout::new(RaidLevel::Raid6, 6, 8, 8 * 10);
        for stripe in 0..20 {
            let p = l6.parity_disk(stripe).unwrap();
            let q = l6.q_disk(stripe).unwrap();
            assert_ne!(p, q);
            for d in 0..l6.data_disks() {
                let dd = l6.data_disk(stripe, d);
                assert_ne!(dd, p);
                assert_ne!(dd, q);
            }
        }
    }

    #[test]
    fn locate_is_injective_per_disk() {
        let l = l5();
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..l.capacity_pages() {
            let loc = l.locate(lpn);
            assert!(loc.disk < l.disks);
            assert!(loc.disk_page < l.disk_pages);
            assert!(seen.insert((loc.disk, loc.disk_page)), "collision at lpn {lpn}");
        }
    }

    #[test]
    fn row_lpns_roundtrip() {
        let l = l5();
        for row in 0..l.rows() {
            let lpns = l.row_lpns(row);
            assert_eq!(lpns.len(), l.row_width());
            for &lpn in &lpns {
                assert_eq!(l.row_of(lpn), row, "lpn {lpn} row mismatch");
            }
            // All pages of a row share the stripe.
            let s = l.stripe_of_row(row);
            for &lpn in &lpns {
                assert_eq!(l.stripe_of(lpn), s);
            }
        }
    }

    #[test]
    fn row_members_on_distinct_disks() {
        let l = l5();
        for row in 0..64 {
            let mut disks: Vec<usize> = l.row_lpns(row).iter().map(|&p| l.locate(p).disk).collect();
            if let Some((pd, _)) = l.parity_location(row) {
                disks.push(pd);
            }
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), l.data_disks() + 1, "row {row} shares a disk");
        }
    }

    #[test]
    fn sequential_chunks_stripe_across_disks() {
        let l = l5();
        // First 4 chunks of stripe 0 must land on 4 different disks.
        let disks: Vec<usize> = (0..4).map(|c| l.locate(c * 16).disk).collect();
        let mut sorted = disks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "chunks not spread: {disks:?}");
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn locate_out_of_range_panics() {
        let l = l5();
        l.locate(l.capacity_pages());
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_disks_rejected() {
        Layout::new(RaidLevel::Raid6, 3, 8, 64);
    }
}
