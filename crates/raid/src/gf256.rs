//! GF(2^8) arithmetic for RAID-6 Q parity.
//!
//! RAID-6 computes `Q = Σ g^i · D_i` over the Galois field GF(2^8) with
//! the standard polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D) and
//! generator `g = 2` — the same field as the Linux kernel raid6 engine.
//! Log/exp tables make scalar multiplication a pair of lookups; the bulk
//! kernels ([`mul_slice_into`], [`mul2_slice_into`]) run word-at-a-time:
//!
//! * The sixteen coefficients `g^0..g^15` that real arrays use (Q parity
//!   for up to 16 data members) get const-specialised SWAR chains — a
//!   multiply-by-2 on eight packed bytes is three ANDs, a shift and a
//!   conditional XOR of the reduction polynomial, and `c·x` unrolls into
//!   at most eight such doublings selected by the bits of `c` at compile
//!   time. The per-word loop autovectorises cleanly (one wide load, no
//!   lane shuffles); see DESIGN.md "Hot paths & allocation discipline".
//! * Any other coefficient (degraded-mode reconstruction constants like
//!   `(g^x ⊕ g^y)^-1`) falls back to split-nibble tables: two 16-entry
//!   tables built once per call, `c·s = LO[s & 0xF] ⊕ HI[s >> 4]`, still
//!   processed over `u64` words.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::sync::OnceLock;

const POLY: u32 = 0x11D;

/// Per-byte masks for the packed multiply-by-2: low 7 bits, the high
/// (carry) bit, and the reduction polynomial replicated into each lane.
const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
const HI1: u64 = 0x8080_8080_8080_8080;
const P1D: u64 = 0x1d1d_1d1d_1d1d_1d1d;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u32 = 1;
        #[allow(clippy::needless_range_loop)]
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate so mul can skip the mod-255 on index sums.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Multiply two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics on zero (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(2^8)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divide `a` by `b`.
///
/// # Panics
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `g^k` for the generator g = 2.
#[inline]
pub fn pow_g(k: usize) -> u8 {
    tables().exp[k % 255]
}

/// Multiply eight packed field elements by 2 (g). Per byte:
/// `2·x = (x << 1) ⊕ (0x1D if x ≥ 0x80)`. The mask of per-byte 0xFF for
/// every lane whose high bit is set is `(hi << 1) − (hi >> 7)` with the
/// cross-byte borrows cancelling exactly because every lane subtracts
/// what its neighbour lends.
#[inline(always)]
fn mul2_word(w: u64) -> u64 {
    let hi = w & HI1;
    ((w & LO7) << 1) ^ (((hi << 1).wrapping_sub(hi >> 7)) & P1D)
}

/// Scalar `c·s` by the doubling chain — the byte-tail companion of the
/// word kernels (identical operation order, no table dependence).
#[inline(always)]
fn mul_byte_chain(c: u8, s: u8) -> u8 {
    let mut b = s;
    let mut acc = 0u8;
    for k in 0..8 {
        if c >> k & 1 != 0 {
            acc ^= b;
        }
        b = (b << 1) ^ (if b & 0x80 != 0 { 0x1D } else { 0 });
    }
    acc
}

/// `dst ^= C·src`, eight bytes per step. `C` is a compile-time constant,
/// so the doubling chain below collapses to straight-line code of depth
/// `bit-length(C)` with no per-iteration branches, which the loop
/// vectoriser turns into clean stride-1 SIMD. `inline(never)` pins one
/// isolated, predictably-vectorised copy per coefficient (inlining into
/// larger bodies was observed to break autovectorisation).
#[inline(never)]
fn chain_const_pw<const C: u8>(src: &[u8], dst: &mut [u8]) {
    let n = src.len().min(dst.len());
    let (dh, dt) = dst[..n].split_at_mut(n - n % 8);
    let (sh, st) = src[..n].split_at(n - n % 8);
    let mut t = [0u8; 8];
    for (dc, sc) in dh.chunks_exact_mut(8).zip(sh.chunks_exact(8)) {
        t.copy_from_slice(sc);
        let mut b = u64::from_ne_bytes(t);
        let mut acc = if C & 1 != 0 { b } else { 0 };
        if C >> 1 != 0 {
            b = mul2_word(b);
            if C >> 1 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 2 != 0 {
            b = mul2_word(b);
            if C >> 2 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 3 != 0 {
            b = mul2_word(b);
            if C >> 3 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 4 != 0 {
            b = mul2_word(b);
            if C >> 4 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 5 != 0 {
            b = mul2_word(b);
            if C >> 5 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 6 != 0 {
            b = mul2_word(b);
            if C >> 6 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 7 != 0 {
            b = mul2_word(b);
            if C >> 7 & 1 != 0 {
                acc ^= b;
            }
        }
        t.copy_from_slice(dc);
        let d = u64::from_ne_bytes(t);
        dc.copy_from_slice(&(d ^ acc).to_ne_bytes());
    }
    for (d, &s) in dt.iter_mut().zip(st) {
        *d ^= mul_byte_chain(C, s);
    }
}

/// Fused variant: `p ^= src` and `q ^= C·src` in one pass over `src` —
/// the P+Q stripe update reads each data/delta page once instead of
/// twice. Same chain shape as [`chain_const_pw`].
#[inline(never)]
fn chain2_const_pw<const C: u8>(src: &[u8], p: &mut [u8], q: &mut [u8]) {
    let n = src.len().min(p.len()).min(q.len());
    let (ph, pt) = p[..n].split_at_mut(n - n % 8);
    let (qh, qt) = q[..n].split_at_mut(n - n % 8);
    let (sh, st) = src[..n].split_at(n - n % 8);
    let mut t = [0u8; 8];
    for ((pc, qc), sc) in ph.chunks_exact_mut(8).zip(qh.chunks_exact_mut(8)).zip(sh.chunks_exact(8))
    {
        t.copy_from_slice(sc);
        let s = u64::from_ne_bytes(t);
        let mut b = s;
        let mut acc = if C & 1 != 0 { b } else { 0 };
        if C >> 1 != 0 {
            b = mul2_word(b);
            if C >> 1 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 2 != 0 {
            b = mul2_word(b);
            if C >> 2 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 3 != 0 {
            b = mul2_word(b);
            if C >> 3 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 4 != 0 {
            b = mul2_word(b);
            if C >> 4 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 5 != 0 {
            b = mul2_word(b);
            if C >> 5 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 6 != 0 {
            b = mul2_word(b);
            if C >> 6 & 1 != 0 {
                acc ^= b;
            }
        }
        if C >> 7 != 0 {
            b = mul2_word(b);
            if C >> 7 & 1 != 0 {
                acc ^= b;
            }
        }
        t.copy_from_slice(pc);
        pc.copy_from_slice(&(u64::from_ne_bytes(t) ^ s).to_ne_bytes());
        t.copy_from_slice(qc);
        qc.copy_from_slice(&(u64::from_ne_bytes(t) ^ acc).to_ne_bytes());
    }
    for ((pd, qd), &s) in pt.iter_mut().zip(qt).zip(st) {
        *pd ^= s;
        *qd ^= mul_byte_chain(C, s);
    }
}

/// Build the split-nibble tables for `c`:
/// `c·s = LO[s & 0xF] ⊕ HI[s >> 4]` by linearity over GF(2).
#[inline]
fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for n in 1..16u8 {
        lo[n as usize] = mul(c, n);
        hi[n as usize] = mul(c, n << 4);
    }
    (lo, hi)
}

/// Generic-coefficient fallback: split-nibble lookups over `u64` words.
#[inline(never)]
fn nibble_slice_into(dst: &mut [u8], src: &[u8], c: u8) {
    let (lo, hi) = nibble_tables(c);
    let n = dst.len().min(src.len());
    let (dh, dt) = dst[..n].split_at_mut(n - n % 8);
    let (sh, st) = src[..n].split_at(n - n % 8);
    let mut sb = [0u8; 8];
    let mut ab = [0u8; 8];
    for (dc, sc) in dh.chunks_exact_mut(8).zip(sh.chunks_exact(8)) {
        sb.copy_from_slice(sc);
        for (a, &s) in ab.iter_mut().zip(&sb) {
            *a = lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
        }
        sb.copy_from_slice(dc);
        let d = u64::from_ne_bytes(sb) ^ u64::from_ne_bytes(ab);
        dc.copy_from_slice(&d.to_ne_bytes());
    }
    for (d, &s) in dt.iter_mut().zip(st) {
        *d ^= lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
    }
}

/// Fused generic-coefficient fallback: `p ^= src`, `q ^= c·src`.
#[inline(never)]
fn nibble2_slice_into(p: &mut [u8], q: &mut [u8], src: &[u8], c: u8) {
    let (lo, hi) = nibble_tables(c);
    let n = src.len().min(p.len()).min(q.len());
    let (ph, pt) = p[..n].split_at_mut(n - n % 8);
    let (qh, qt) = q[..n].split_at_mut(n - n % 8);
    let (sh, st) = src[..n].split_at(n - n % 8);
    let mut sb = [0u8; 8];
    let mut ab = [0u8; 8];
    let mut tb = [0u8; 8];
    for ((pc, qc), sc) in ph.chunks_exact_mut(8).zip(qh.chunks_exact_mut(8)).zip(sh.chunks_exact(8))
    {
        sb.copy_from_slice(sc);
        for (a, &s) in ab.iter_mut().zip(&sb) {
            *a = lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
        }
        tb.copy_from_slice(pc);
        let p = u64::from_ne_bytes(tb) ^ u64::from_ne_bytes(sb);
        pc.copy_from_slice(&p.to_ne_bytes());
        tb.copy_from_slice(qc);
        let q = u64::from_ne_bytes(tb) ^ u64::from_ne_bytes(ab);
        qc.copy_from_slice(&q.to_ne_bytes());
    }
    for ((pd, qd), &s) in pt.iter_mut().zip(qt).zip(st) {
        *pd ^= s;
        *qd ^= lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
    }
}

/// Dispatch `$c` to the const-specialised kernel for the sixteen
/// coefficients a ≤16-member Q parity can use (`g^0..g^15`), or to the
/// split-nibble fallback for everything else.
macro_rules! dispatch_coeff {
    ($c:expr, $kernel:ident ! ($($arg:expr),*), $fallback:expr) => {
        match $c {
            0x01 => $kernel::<0x01>($($arg),*),
            0x02 => $kernel::<0x02>($($arg),*),
            0x04 => $kernel::<0x04>($($arg),*),
            0x08 => $kernel::<0x08>($($arg),*),
            0x10 => $kernel::<0x10>($($arg),*),
            0x20 => $kernel::<0x20>($($arg),*),
            0x40 => $kernel::<0x40>($($arg),*),
            0x80 => $kernel::<0x80>($($arg),*),
            0x1D => $kernel::<0x1D>($($arg),*),
            0x3A => $kernel::<0x3A>($($arg),*),
            0x74 => $kernel::<0x74>($($arg),*),
            0xE8 => $kernel::<0xE8>($($arg),*),
            0xCD => $kernel::<0xCD>($($arg),*),
            0x87 => $kernel::<0x87>($($arg),*),
            0x13 => $kernel::<0x13>($($arg),*),
            0x26 => $kernel::<0x26>($($arg),*),
            _ => $fallback,
        }
    };
}

/// `dst[i] ^= c · src[i]` — the bulk Q-parity kernel.
///
/// # Panics
/// Panics if lengths differ.
pub fn mul_slice_into(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    dispatch_coeff!(c, chain_const_pw!(src, dst), nibble_slice_into(dst, src, c));
}

/// Fused P+Q accumulate: `p[i] ^= src[i]` and `q[i] ^= c · src[i]` in a
/// single pass over `src` — the RAID-6 stripe update and
/// `parity_update_rmw` read each page once instead of twice.
///
/// # Panics
/// Panics if lengths differ.
pub fn mul2_slice_into(p: &mut [u8], q: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(p.len(), src.len());
    assert_eq!(q.len(), src.len());
    if c == 0 {
        // Q untouched; P still accumulates.
        chain_const_pw::<0x01>(src, p);
        return;
    }
    dispatch_coeff!(c, chain2_const_pw!(src, p, q), nibble2_slice_into(p, q, src, c));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_sampled() {
        for a in [1u8, 2, 3, 0x53, 0xCA, 0xFF] {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, inv(a)), 1, "a * a^-1 for {a:#x}");
            assert_eq!(div(a, a), 1);
        }
        assert_eq!(mul(0, 0x37), 0);
        assert_eq!(mul(0x37, 0), 0);
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        let vals = [0u8, 1, 2, 7, 0x80, 0x1D, 0xFE];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &vals {
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                }
            }
        }
    }

    #[test]
    fn distributes_over_xor() {
        let vals = [1u8, 2, 9, 0x53, 0xAA];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g = 2 must generate all 255 non-zero elements.
        let mut seen = [false; 256];
        for k in 0..255 {
            let v = pow_g(k);
            assert!(!seen[v as usize], "g^{k} repeats");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
        assert_eq!(pow_g(0), 1);
        assert_eq!(pow_g(255), 1); // wraps
    }

    #[test]
    fn known_products_match_kernel_field() {
        // Spot values for the 0x11D field.
        assert_eq!(mul(2, 0x80), 0x1D);
        assert_eq!(mul(2, 2), 4);
        assert_eq!(pow_g(8), 0x1D);
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xA5u8; 256];
            let mut expect = dst.clone();
            mul_slice_into(&mut dst, &src, c);
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= mul(c, *s);
            }
            assert_eq!(dst, expect, "c = {c:#x}");
        }
    }

    #[test]
    fn mul2_slice_matches_two_single_passes() {
        let src: Vec<u8> = (0..=255u8).rev().collect();
        for c in [0u8, 1, 2, 0x1D, 0x26, 0x9C, 0xFF] {
            let mut p = vec![0x5Au8; 256];
            let mut q = vec![0xC3u8; 256];
            let mut pe = p.clone();
            let mut qe = q.clone();
            mul2_slice_into(&mut p, &mut q, &src, c);
            for (e, s) in pe.iter_mut().zip(&src) {
                *e ^= s;
            }
            mul_slice_into(&mut qe, &src, c);
            assert_eq!(p, pe, "P at c = {c:#x}");
            assert_eq!(q, qe, "Q at c = {c:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }
}
