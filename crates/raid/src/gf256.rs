//! GF(2^8) arithmetic for RAID-6 Q parity.
//!
//! RAID-6 computes `Q = Σ g^i · D_i` over the Galois field GF(2^8) with
//! the standard polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D) and
//! generator `g = 2` — the same field as the Linux kernel raid6 engine.
//! Log/exp tables make multiplication a pair of lookups; bulk page
//! operations use [`mul_slice_into`].

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::sync::OnceLock;

const POLY: u32 = 0x11D;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u32 = 1;
        #[allow(clippy::needless_range_loop)]
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate so mul can skip the mod-255 on index sums.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Multiply two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics on zero (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(2^8)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divide `a` by `b`.
///
/// # Panics
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `g^k` for the generator g = 2.
#[inline]
pub fn pow_g(k: usize) -> u8 {
    tables().exp[k % 255]
}

/// `dst[i] ^= c · src[i]` — the bulk Q-parity kernel.
///
/// # Panics
/// Panics if lengths differ.
pub fn mul_slice_into(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_sampled() {
        for a in [1u8, 2, 3, 0x53, 0xCA, 0xFF] {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, inv(a)), 1, "a * a^-1 for {a:#x}");
            assert_eq!(div(a, a), 1);
        }
        assert_eq!(mul(0, 0x37), 0);
        assert_eq!(mul(0x37, 0), 0);
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        let vals = [0u8, 1, 2, 7, 0x80, 0x1D, 0xFE];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &vals {
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                }
            }
        }
    }

    #[test]
    fn distributes_over_xor() {
        let vals = [1u8, 2, 9, 0x53, 0xAA];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g = 2 must generate all 255 non-zero elements.
        let mut seen = [false; 256];
        for k in 0..255 {
            let v = pow_g(k);
            assert!(!seen[v as usize], "g^{k} repeats");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
        assert_eq!(pow_g(0), 1);
        assert_eq!(pow_g(255), 1); // wraps
    }

    #[test]
    fn known_products_match_kernel_field() {
        // Spot values for the 0x11D field.
        assert_eq!(mul(2, 0x80), 0x1D);
        assert_eq!(mul(2, 2), 4);
        assert_eq!(pow_g(8), 0x1D);
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xA5u8; 256];
            let mut expect = dst.clone();
            mul_slice_into(&mut dst, &src, c);
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= mul(c, *s);
            }
            assert_eq!(dst, expect, "c = {c:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }
}
