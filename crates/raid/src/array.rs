//! The RAID array: parity maintenance, degraded operation, rebuild, and
//! the two extra interfaces KDD needs.
//!
//! Beyond a textbook RAID-0/5/6, this array implements the paper's §III-A
//! additions:
//!
//! * [`RaidArray::write_no_parity_update`] — dispatch data to the member
//!   disk *without* touching parity, marking the parity row stale;
//! * [`RaidArray::parity_update_with_data`] — reconstruct-write repair:
//!   the caller (KDD's cleaner) supplies every data page of the row from
//!   cache, so the repair costs zero disk reads;
//! * [`RaidArray::parity_update_rmw`] — read-modify-write repair: read the
//!   stale parity and XOR it with the accumulated deltas (`P' = P ⊕ Δ`;
//!   for Q, `Q' = Q ⊕ g^d·Δ_d`);
//! * [`RaidArray::resync`] — full re-synchronisation from data disks, the
//!   recovery path after an SSD-cache failure (§III-E2).
//!
//! Degraded reads on a *stale* row refuse to reconstruct
//! ([`RaidError::StaleParity`]): that is precisely the window of
//! vulnerability the paper says LeavO leaves open and KDD closes by
//! updating parity before rebuild.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::gf256;
use crate::layout::{Layout, RaidLevel};
use kdd_blockdev::error::{DevError, FaultDomain};
use kdd_blockdev::fault::FaultInjector;
use kdd_blockdev::store::{MemStore, PageStore};
use kdd_delta::xor_into;
use kdd_util::hash::FastSet;
use kdd_util::PagePool;
use serde::{Deserialize, Serialize};

/// Direction of one member-disk operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Disk read.
    Read,
    /// Disk write.
    Write,
}

/// One physical I/O issued to a member disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskOp {
    /// Member-disk index.
    pub disk: usize,
    /// Page offset on that disk.
    pub disk_page: u64,
    /// Read or write.
    pub kind: IoKind,
}

/// The member-disk operations one array request generated — the input to
/// the timing layer.
#[derive(Debug, Clone, Default)]
pub struct RaidCost {
    /// Operations in issue order.
    pub ops: Vec<DiskOp>,
}

impl RaidCost {
    fn push(&mut self, disk: usize, disk_page: u64, kind: IoKind) {
        self.ops.push(DiskOp { disk, disk_page, kind });
    }

    /// Number of member reads.
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == IoKind::Read).count()
    }

    /// Number of member writes.
    pub fn writes(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == IoKind::Write).count()
    }

    /// Merge another cost into this one.
    pub fn merge(&mut self, other: RaidCost) {
        self.ops.extend(other.ops);
    }
}

/// Array-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaidError {
    /// Underlying device error.
    Dev(DevError),
    /// More member failures than the level tolerates.
    TooManyFailures,
    /// A degraded read hit a row whose parity is stale — the paper's
    /// window of vulnerability (data are unrecoverable until overwritten).
    StaleParity {
        /// The stale parity row.
        row: u64,
    },
    /// Operation requires a live disk that is failed.
    DiskFailed {
        /// The failed member.
        disk: usize,
    },
    /// Caller passed malformed arguments.
    BadArg(&'static str),
    /// Internal bookkeeping contradicted itself (a bug, surfaced as an
    /// error instead of a panic so a storage daemon can fail the request
    /// and keep serving other stripes).
    Inconsistent(&'static str),
}

impl From<DevError> for RaidError {
    fn from(e: DevError) -> Self {
        RaidError::Dev(e)
    }
}

impl std::fmt::Display for RaidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidError::Dev(e) => write!(f, "device error: {e}"),
            RaidError::TooManyFailures => write!(f, "too many member failures"),
            RaidError::StaleParity { row } => {
                write!(f, "degraded read on stale parity row {row}: data loss window")
            }
            RaidError::DiskFailed { disk } => write!(f, "member disk {disk} is failed"),
            RaidError::BadArg(s) => write!(f, "bad argument: {s}"),
            RaidError::Inconsistent(s) => write!(f, "internal inconsistency: {s}"),
        }
    }
}

impl std::error::Error for RaidError {}

/// Per-disk I/O counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DiskStats {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
}

/// A parity-protected disk array holding real page contents.
///
/// # Examples
///
/// The KDD write path: dispatch data without a parity update, then repair
/// the stale row with the accumulated delta.
///
/// ```
/// use kdd_raid::{Layout, RaidArray, RaidLevel};
/// use kdd_delta::xor_pages;
///
/// let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 8);
/// let mut array = RaidArray::new(layout, 512);
///
/// let v0 = vec![1u8; 512];
/// let v1 = vec![2u8; 512];
/// array.write_page(0, &v0).unwrap();                 // conventional small write
/// array.write_no_parity_update(0, &v1).unwrap();     // KDD: one member write
/// let row = array.layout().row_of(0);
/// assert!(array.is_stale(row));
///
/// let delta = xor_pages(&v0, &v1);
/// array.parity_update_rmw(row, &[(0, &delta)]).unwrap();
/// assert!(array.verify_row(row).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct RaidArray {
    layout: Layout,
    page_size: u32,
    disks: Vec<MemStore>,
    stale_rows: FastSet<u64>,
    stats: Vec<DiskStats>,
    injector: Option<FaultInjector>,
    pool: PagePool,
}

impl RaidArray {
    /// Build an array of `layout.disks` fresh member disks.
    pub fn new(layout: Layout, page_size: u32) -> Self {
        let disks =
            (0..layout.disks).map(|_| MemStore::new(layout.disk_pages, page_size)).collect();
        RaidArray {
            layout,
            page_size,
            disks,
            stale_rows: FastSet::default(),
            stats: vec![DiskStats::default(); layout.disks],
            injector: None,
            pool: PagePool::new(page_size as usize),
        }
    }

    /// Route every member-disk I/O through `injector`, member `i` reporting
    /// itself as [`FaultDomain::Disk`]`(i)`.
    pub fn attach_injector(&mut self, injector: FaultInjector) {
        for (i, disk) in self.disks.iter_mut().enumerate() {
            // kdd-waiver(KDD006): one-time attach; FaultInjector is an Arc handle, clone is a refcount bump.
            disk.attach_injector(injector.clone(), FaultDomain::Disk(i as u32));
        }
        self.injector = Some(injector);
    }

    /// Fold injector-declared device drops into the array's failure state so
    /// subsequent operations take the degraded paths. Called at every public
    /// entry point; cheap when no injector is attached.
    fn absorb_faults(&mut self) {
        // kdd-waiver(KDD006): FaultInjector is an Arc handle; clone is a refcount bump, not a page copy.
        let Some(inj) = self.injector.clone() else { return };
        for d in 0..self.disks.len() {
            if !self.disks[d].is_failed() && inj.is_dead(FaultDomain::Disk(d as u32)) {
                self.disks[d].fail();
            }
        }
    }

    /// The array geometry.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Logical capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.layout.capacity_pages()
    }

    /// Per-disk I/O counters.
    pub fn stats(&self) -> &[DiskStats] {
        &self.stats
    }

    /// Rows currently carrying stale parity.
    pub fn stale_rows(&self) -> impl Iterator<Item = u64> + '_ {
        self.stale_rows.iter().copied()
    }

    /// Number of stale parity rows.
    pub fn stale_row_count(&self) -> usize {
        self.stale_rows.len()
    }

    /// Whether `row` has stale parity.
    pub fn is_stale(&self, row: u64) -> bool {
        self.stale_rows.contains(&row)
    }

    /// Indexes of currently-failed members.
    pub fn failed_disks(&self) -> Vec<usize> {
        (0..self.disks.len()).filter(|&d| self.disks[d].is_failed()).collect()
    }

    fn check_failures(&mut self) -> Result<(), RaidError> {
        self.absorb_faults();
        let failed = self.failed_disks().len();
        if failed > self.layout.level.parity_count() {
            Err(RaidError::TooManyFailures)
        } else {
            Ok(())
        }
    }

    // ---- raw member access with accounting -----------------------------

    fn disk_read(
        &mut self,
        disk: usize,
        disk_page: u64,
        buf: &mut [u8],
        cost: &mut RaidCost,
    ) -> Result<(), RaidError> {
        self.disks[disk].read_page(disk_page, buf)?;
        self.stats[disk].reads += 1;
        cost.push(disk, disk_page, IoKind::Read);
        Ok(())
    }

    fn disk_write(
        &mut self,
        disk: usize,
        disk_page: u64,
        data: &[u8],
        cost: &mut RaidCost,
    ) -> Result<(), RaidError> {
        self.disks[disk].write_page(disk_page, data)?;
        self.stats[disk].writes += 1;
        cost.push(disk, disk_page, IoKind::Write);
        Ok(())
    }

    // ---- reads ----------------------------------------------------------

    /// Read a logical page, reconstructing from redundancy if its member
    /// disk is failed.
    pub fn read_page(&mut self, lpn: u64, buf: &mut [u8]) -> Result<RaidCost, RaidError> {
        self.check_failures()?;
        let loc = self.layout.locate(lpn);
        let mut cost = RaidCost::default();
        if !self.disks[loc.disk].is_failed() {
            match self.disk_read(loc.disk, loc.disk_page, buf, &mut cost) {
                Ok(()) => return Ok(cost),
                // The member died under this very read (injected drop or
                // persistent fault): absorb the failure and reconstruct
                // below, as a real array would.
                Err(RaidError::Dev(e))
                    if matches!(e, DevError::Failed { .. }) && !e.is_transient() =>
                {
                    self.check_failures()?;
                    if !self.disks[loc.disk].is_failed() {
                        return Err(RaidError::Dev(e));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // Degraded: reconstruct this page.
        if self.layout.level == RaidLevel::Raid0 {
            return Err(RaidError::TooManyFailures);
        }
        if self.is_stale(loc.row) {
            return Err(RaidError::StaleParity { row: loc.row });
        }
        let failed = self.failed_disks();
        let solved = self.solve_missing(loc.row, &failed, &mut cost)?;
        let (_, content) = solved
            .into_iter()
            .find(|(m, _)| *m == RowMember::Data(loc.data_index))
            .ok_or(RaidError::TooManyFailures)?;
        buf.copy_from_slice(&content);
        Ok(cost)
    }

    // ---- full-parity writes (the conventional path) ---------------------

    /// Write a logical page with a full parity update (read-modify-write
    /// or reconstruct-write, whichever needs fewer reads) — the paper's
    /// "small write" the cache is trying to avoid.
    pub fn write_page(&mut self, lpn: u64, data: &[u8]) -> Result<RaidCost, RaidError> {
        self.check_failures()?;
        if data.len() != self.page_size as usize {
            return Err(RaidError::BadArg("data must be one page"));
        }
        let loc = self.layout.locate(lpn);
        let mut cost = RaidCost::default();

        if self.layout.level == RaidLevel::Raid0 {
            self.disk_write(loc.disk, loc.disk_page, data, &mut cost)?;
            return Ok(cost);
        }

        let target_failed = self.disks[loc.disk].is_failed();
        let others: Vec<usize> =
            (0..self.layout.data_disks()).filter(|&d| d != loc.data_index).collect();
        let others_alive = others.iter().all(|&d| {
            let disk = self.layout.data_disk(loc.stripe, d);
            !self.disks[disk].is_failed()
        });
        let p_loc = self.layout.parity_location(loc.row);
        let q_loc = self.layout.q_location(loc.row);
        let p_alive = p_loc.is_some_and(|(d, _)| !self.disks[d].is_failed());
        let q_alive = q_loc.is_some_and(|(d, _)| !self.disks[d].is_failed());

        // RMW needs the target's old data and the old parity; reconstruct
        // needs every *other* data page. Pick what is possible, then what
        // is cheaper (fewer reads).
        let rmw_possible =
            !target_failed && !self.is_stale(loc.row) && (p_alive || q_loc.is_none());
        let recon_possible = others_alive;
        let rmw_reads = 1 + p_alive as usize + q_alive as usize;
        let recon_reads = others.len();

        let use_rmw = match (rmw_possible, recon_possible) {
            (true, true) => rmw_reads <= recon_reads,
            (true, false) => true,
            (false, true) => false,
            (false, false) => return Err(RaidError::TooManyFailures),
        };

        // Crash window: from here until the final member write the row's
        // data and parity may disagree. Mark it stale up front so a power
        // loss mid-sequence leaves a mark recovery can resync from; the
        // mark is cleared once the row is consistent again.
        self.stale_rows.insert(loc.row);

        if use_rmw {
            // Pooled buffers; error paths drop them back to the allocator,
            // which is fine — errors are cold.
            let mut delta = self.pool.acquire();
            self.disk_read(loc.disk, loc.disk_page, &mut delta, &mut cost)?;
            // delta = old ^ new
            xor_into(&mut delta, data);
            match (p_loc.filter(|_| p_alive), q_loc.filter(|_| q_alive)) {
                (Some((pd, pp)), Some((qd, qp))) => {
                    // Fused P+Q: fold the delta into both parities in one
                    // pass (per-device op order unchanged: each sees R,W).
                    let mut parity = self.pool.acquire();
                    self.disk_read(pd, pp, &mut parity, &mut cost)?;
                    let mut q = self.pool.acquire();
                    self.disk_read(qd, qp, &mut q, &mut cost)?;
                    gf256::mul2_slice_into(
                        &mut parity,
                        &mut q,
                        &delta,
                        gf256::pow_g(loc.data_index),
                    );
                    self.disk_write(pd, pp, &parity, &mut cost)?;
                    self.disk_write(qd, qp, &q, &mut cost)?;
                    self.pool.release(parity);
                    self.pool.release(q);
                }
                (Some((pd, pp)), None) => {
                    let mut parity = self.pool.acquire();
                    self.disk_read(pd, pp, &mut parity, &mut cost)?;
                    xor_into(&mut parity, &delta);
                    self.disk_write(pd, pp, &parity, &mut cost)?;
                    self.pool.release(parity);
                }
                (None, Some((qd, qp))) => {
                    let mut q = self.pool.acquire();
                    self.disk_read(qd, qp, &mut q, &mut cost)?;
                    gf256::mul_slice_into(&mut q, &delta, gf256::pow_g(loc.data_index));
                    self.disk_write(qd, qp, &q, &mut cost)?;
                    self.pool.release(q);
                }
                (None, None) => {}
            }
            self.pool.release(delta);
        } else {
            // Reconstruct-write: gather all other data, fold in new data.
            let mut p = self.pool.acquire_from(data);
            let mut q = self.pool.acquire();
            if q_loc.is_some() {
                gf256::mul_slice_into(&mut q, data, gf256::pow_g(loc.data_index));
            }
            let mut buf = self.pool.acquire();
            for &d in &others {
                let disk = self.layout.data_disk(loc.stripe, d);
                let dp = loc.disk_page; // same offset across the row
                self.disk_read(disk, dp, &mut buf, &mut cost)?;
                if q_loc.is_some() {
                    // One pass per member page: P ⊕= D, Q ⊕= g^d·D.
                    gf256::mul2_slice_into(&mut p, &mut q, &buf, gf256::pow_g(d));
                } else {
                    xor_into(&mut p, &buf);
                }
            }
            if let Some((pd, pp)) = p_loc {
                if !self.disks[pd].is_failed() {
                    self.disk_write(pd, pp, &p, &mut cost)?;
                }
            }
            if let Some((qd, qp)) = q_loc {
                if !self.disks[qd].is_failed() {
                    self.disk_write(qd, qp, &q, &mut cost)?;
                }
            }
            self.pool.release(p);
            self.pool.release(q);
            self.pool.release(buf);
        }

        if !target_failed {
            self.disk_write(loc.disk, loc.disk_page, data, &mut cost)?;
        }
        // Every write completed: data and parity agree again. (RMW was only
        // chosen on a previously-clean row; reconstruct-write recomputes
        // parity from all members, repairing any prior staleness too.)
        self.stale_rows.remove(&loc.row);
        Ok(cost)
    }

    // ---- KDD interfaces --------------------------------------------------

    /// Write data *without* updating parity (§III-A): one member write;
    /// the row is marked stale until a `parity_update` repairs it.
    pub fn write_no_parity_update(&mut self, lpn: u64, data: &[u8]) -> Result<RaidCost, RaidError> {
        self.check_failures()?;
        if data.len() != self.page_size as usize {
            return Err(RaidError::BadArg("data must be one page"));
        }
        let loc = self.layout.locate(lpn);
        if self.disks[loc.disk].is_failed() {
            return Err(RaidError::DiskFailed { disk: loc.disk });
        }
        let mut cost = RaidCost::default();
        self.disk_write(loc.disk, loc.disk_page, data, &mut cost)?;
        if self.layout.level != RaidLevel::Raid0 {
            self.stale_rows.insert(loc.row);
        }
        Ok(cost)
    }

    /// Repair a stale row by reconstruct-write: the caller supplies every
    /// data page of the row (KDD has them all in cache), so no member
    /// reads are needed — only the parity write(s).
    pub fn parity_update_with_data(
        &mut self,
        row: u64,
        data: &[&[u8]],
    ) -> Result<RaidCost, RaidError> {
        self.check_failures()?;
        if data.len() != self.layout.row_width() {
            return Err(RaidError::BadArg("need every data page of the row"));
        }
        let ps = self.page_size as usize;
        if data.iter().any(|d| d.len() != ps) {
            return Err(RaidError::BadArg("data pages must be page-sized"));
        }
        let mut cost = RaidCost::default();
        let q_target = self.layout.q_location(row).filter(|&(qd, _)| !self.disks[qd].is_failed());
        let mut p = self.pool.acquire();
        let mut q = self.pool.acquire();
        for (d, page) in data.iter().enumerate() {
            if q_target.is_some() {
                // One pass per member: P ⊕= D, Q ⊕= g^d·D.
                gf256::mul2_slice_into(&mut p, &mut q, page, gf256::pow_g(d));
            } else {
                xor_into(&mut p, page);
            }
        }
        if let Some((pd, pp)) = self.layout.parity_location(row) {
            if !self.disks[pd].is_failed() {
                self.disk_write(pd, pp, &p, &mut cost)?;
            }
        }
        if let Some((qd, qp)) = q_target {
            self.disk_write(qd, qp, &q, &mut cost)?;
        }
        self.pool.release(p);
        self.pool.release(q);
        self.stale_rows.remove(&row);
        Ok(cost)
    }

    /// Repair a stale row by read-modify-write: read the stale parity and
    /// fold in the accumulated per-member deltas (each delta is the XOR of
    /// the member's pre-stale content with its current content).
    pub fn parity_update_rmw(
        &mut self,
        row: u64,
        deltas: &[(usize, &[u8])],
    ) -> Result<RaidCost, RaidError> {
        self.check_failures()?;
        let ps = self.page_size as usize;
        if deltas.iter().any(|(d, buf)| *d >= self.layout.row_width() || buf.len() != ps) {
            return Err(RaidError::BadArg("delta index or size out of range"));
        }
        let mut cost = RaidCost::default();
        let p_target = self.layout.parity_location(row);
        let q_target = self.layout.q_location(row);
        if let Some((pd, _)) = p_target {
            if self.disks[pd].is_failed() {
                return Err(RaidError::DiskFailed { disk: pd });
            }
        }
        match (p_target, q_target) {
            (Some((pd, pp)), Some((qd, qp))) if !self.disks[qd].is_failed() => {
                // Fused P+Q fold: read both parities up front, fold every
                // delta into both in one pass, then write both. Each
                // device still sees its original [read, write] sequence.
                let mut p = self.pool.acquire();
                self.disk_read(pd, pp, &mut p, &mut cost)?;
                let mut q = self.pool.acquire();
                self.disk_read(qd, qp, &mut q, &mut cost)?;
                for (d, delta) in deltas {
                    gf256::mul2_slice_into(&mut p, &mut q, delta, gf256::pow_g(*d));
                }
                self.disk_write(pd, pp, &p, &mut cost)?;
                self.disk_write(qd, qp, &q, &mut cost)?;
                self.pool.release(p);
                self.pool.release(q);
            }
            _ => {
                if let Some((pd, pp)) = p_target {
                    let mut p = self.pool.acquire();
                    self.disk_read(pd, pp, &mut p, &mut cost)?;
                    for (_, delta) in deltas {
                        xor_into(&mut p, delta);
                    }
                    self.disk_write(pd, pp, &p, &mut cost)?;
                    self.pool.release(p);
                }
                if let Some((qd, _)) = q_target {
                    // Matches the pre-fusion behaviour: a failed Q disk
                    // errors only after the P parity has been written.
                    return Err(RaidError::DiskFailed { disk: qd });
                }
            }
        }
        self.stale_rows.remove(&row);
        Ok(cost)
    }

    /// Re-synchronise rows by reading the data members and recomputing
    /// parity — the recovery path after losing the SSD cache (§III-E2).
    /// With `rows = None` every stale row is repaired.
    pub fn resync(&mut self, rows: Option<&[u64]>) -> Result<RaidCost, RaidError> {
        self.check_failures()?;
        let targets: Vec<u64> = match rows {
            // kdd-waiver(KDD006): row-id list copied once per resync call, not per page.
            Some(r) => r.to_vec(),
            None => self.stale_rows.iter().copied().collect(),
        };
        let mut cost = RaidCost::default();
        for row in targets {
            let lpns = self.layout.row_lpns(row);
            let mut pages: Vec<Box<[u8]>> = Vec::with_capacity(lpns.len());
            for &lpn in &lpns {
                let loc = self.layout.locate(lpn);
                if self.disks[loc.disk].is_failed() {
                    return Err(RaidError::DiskFailed { disk: loc.disk });
                }
                let mut buf = self.pool.acquire();
                self.disk_read(loc.disk, loc.disk_page, &mut buf, &mut cost)?;
                pages.push(buf);
            }
            let refs: Vec<&[u8]> = pages.iter().map(|p| p.as_ref()).collect();
            let sub = self.parity_update_with_data(row, &refs)?;
            drop(refs);
            for page in pages {
                self.pool.release(page);
            }
            cost.merge(sub);
        }
        Ok(cost)
    }

    // ---- failure handling ------------------------------------------------

    /// Fail a member disk (fault injection).
    pub fn fail_disk(&mut self, disk: usize) {
        self.disks[disk].fail();
    }

    /// Rebuild every failed member onto a fresh replacement.
    ///
    /// Requires no stale rows: KDD's failure handling updates all parity
    /// *before* triggering rebuild (§III-E2). Errors with
    /// [`RaidError::StaleParity`] otherwise.
    pub fn rebuild(&mut self) -> Result<RaidCost, RaidError> {
        self.check_failures()?;
        if let Some(&row) = self.stale_rows.iter().next() {
            return Err(RaidError::StaleParity { row });
        }
        let failed = self.failed_disks();
        if failed.is_empty() {
            return Ok(RaidCost::default());
        }
        for &d in &failed {
            self.disks[d].replace();
            if let Some(inj) = &self.injector {
                // A drop is cured by the replacement; a persistent fault
                // immediately re-fails the new disk on its next absorb.
                inj.on_replace(FaultDomain::Disk(d as u32));
            }
        }
        let mut cost = RaidCost::default();
        // Reconstruct row by row; the replacement disks are zero-filled so
        // we re-derive their content from the survivors.
        for row in 0..self.layout.rows() {
            let solved = self.solve_missing(row, &failed, &mut cost)?;
            let stripe = self.layout.stripe_of_row(row);
            let dp = self.row_disk_page(row);
            for (member, content) in solved {
                let disk =
                    match member {
                        RowMember::Data(d) => self.layout.data_disk(stripe, d),
                        RowMember::P => self.layout.parity_disk(stripe).ok_or(
                            RaidError::Inconsistent("P member solved on parity-less layout"),
                        )?,
                        RowMember::Q => self.layout.q_disk(stripe).ok_or(
                            RaidError::Inconsistent("Q member solved on non-RAID-6 layout"),
                        )?,
                    };
                self.disk_write(disk, dp, &content, &mut cost)?;
            }
        }
        Ok(cost)
    }

    fn row_disk_page(&self, row: u64) -> u64 {
        let stripe = self.layout.stripe_of_row(row);
        stripe * self.layout.chunk_pages + row % self.layout.chunk_pages
    }

    // ---- reconstruction core ----------------------------------------------

    /// Solve for the contents of every row member whose disk is in
    /// `excluded`, reading only surviving members. Handles every single-
    /// and double-erasure case RAID-6 tolerates.
    fn solve_missing(
        &mut self,
        row: u64,
        excluded: &[usize],
        cost: &mut RaidCost,
    ) -> Result<Vec<(RowMember, Vec<u8>)>, RaidError> {
        let ps = self.page_size as usize;
        let stripe = self.layout.stripe_of_row(row);
        let dp = self.row_disk_page(row);
        let dd = self.layout.data_disks();
        let is_excluded = |disk: usize| excluded.contains(&disk);

        let missing_data: Vec<usize> =
            (0..dd).filter(|&d| is_excluded(self.layout.data_disk(stripe, d))).collect();
        let p_disk = self.layout.parity_disk(stripe);
        let q_disk = self.layout.q_disk(stripe);
        let p_missing = p_disk.is_some_and(is_excluded);
        let q_missing = q_disk.is_some_and(is_excluded);
        if missing_data.is_empty() && !p_missing && !q_missing {
            return Ok(Vec::new());
        }

        // Read every surviving data member once.
        let mut data: Vec<Option<Vec<u8>>> = vec![None; dd];
        #[allow(clippy::needless_range_loop)]
        for d in 0..dd {
            if !missing_data.contains(&d) {
                let disk = self.layout.data_disk(stripe, d);
                // kdd-waiver(KDD006): degraded-mode reconstruction; survivor pages outlive the solver.
                let mut buf = vec![0u8; ps];
                self.disk_read(disk, dp, &mut buf, cost)?;
                data[d] = Some(buf);
            }
        }
        let read_parity = |this: &mut Self,
                           loc: Option<(usize, u64)>,
                           cost: &mut RaidCost|
         -> Result<Vec<u8>, RaidError> {
            let (pd, pp) = loc.ok_or(RaidError::TooManyFailures)?;
            // kdd-waiver(KDD006): degraded-mode reconstruction; the parity page is returned by value.
            let mut buf = vec![0u8; ps];
            this.disk_read(pd, pp, &mut buf, cost)?;
            Ok(buf)
        };

        // Recover missing data members first.
        match missing_data.len() {
            0 => {}
            1 => {
                let x = missing_data[0];
                if !p_missing && p_disk.is_some() {
                    // D_x = P ⊕ Σ_{d≠x} D_d
                    let mut out = read_parity(self, self.layout.parity_location(row), cost)?;
                    for (_d, page) in data.iter().enumerate().filter(|(d, _)| *d != x) {
                        let page = page
                            .as_ref()
                            .ok_or(RaidError::Inconsistent("survivor page not read"))?;
                        xor_into(&mut out, page);
                    }
                    data[x] = Some(out);
                } else if !q_missing && q_disk.is_some() {
                    // D_x = (Q ⊕ Σ_{d≠x} g^d·D_d) / g^x
                    let mut acc = read_parity(self, self.layout.q_location(row), cost)?;
                    for (d, page) in data.iter().enumerate().filter(|(d, _)| *d != x) {
                        let page = page
                            .as_ref()
                            .ok_or(RaidError::Inconsistent("survivor page not read"))?;
                        gf256::mul_slice_into(&mut acc, page, gf256::pow_g(d));
                    }
                    // kdd-waiver(KDD006): degraded-mode reconstruction; the solved page is handed back by value.
                    let mut out = vec![0u8; ps];
                    gf256::mul_slice_into(&mut out, &acc, gf256::inv(gf256::pow_g(x)));
                    data[x] = Some(out);
                } else {
                    return Err(RaidError::TooManyFailures);
                }
            }
            2 => {
                if p_missing || q_missing {
                    return Err(RaidError::TooManyFailures);
                }
                let (x, y) = (missing_data[0], missing_data[1]);
                // a = P ⊕ Σ survivors = D_x ⊕ D_y
                // b = Q ⊕ Σ g^d survivors = g^x·D_x ⊕ g^y·D_y
                let mut a = read_parity(self, self.layout.parity_location(row), cost)?;
                let mut b = read_parity(self, self.layout.q_location(row), cost)?;
                for (d, page) in data.iter().enumerate().filter(|(d, _)| *d != x && *d != y) {
                    let page =
                        page.as_ref().ok_or(RaidError::Inconsistent("survivor page not read"))?;
                    gf256::mul2_slice_into(&mut a, &mut b, page, gf256::pow_g(d));
                }
                // D_x = (b ⊕ g^y·a) / (g^x ⊕ g^y); D_y = a ⊕ D_x
                let gx = gf256::pow_g(x);
                let gy = gf256::pow_g(y);
                let mut num = b;
                gf256::mul_slice_into(&mut num, &a, gy);
                // kdd-waiver(KDD006): degraded-mode reconstruction; the solved page is handed back by value.
                let mut dx = vec![0u8; ps];
                gf256::mul_slice_into(&mut dx, &num, gf256::inv(gx ^ gy));
                let mut dy = a;
                xor_into(&mut dy, &dx);
                data[x] = Some(dx);
                data[y] = Some(dy);
            }
            _ => return Err(RaidError::TooManyFailures),
        }

        // With all data known, recompute any missing parity.
        let mut out = Vec::new();
        for d in missing_data {
            let page = data
                .get(d)
                // kdd-waiver(KDD006): degraded-mode reconstruction; the recovered page is returned by value.
                .and_then(|p| p.clone())
                .ok_or(RaidError::Inconsistent("solver left a data member unsolved"))?;
            out.push((RowMember::Data(d), page));
        }
        if p_missing {
            // kdd-waiver(KDD006): degraded-mode reconstruction; the rebuilt parity is returned by value.
            let mut p = vec![0u8; ps];
            for page in data.iter().flatten() {
                xor_into(&mut p, page);
            }
            out.push((RowMember::P, p));
        }
        if q_missing {
            // kdd-waiver(KDD006): degraded-mode reconstruction; the rebuilt parity is returned by value.
            let mut q = vec![0u8; ps];
            for (d, page) in data.iter().enumerate() {
                let page = page
                    .as_ref()
                    .ok_or(RaidError::Inconsistent("solver left a data member unsolved"))?;
                gf256::mul_slice_into(&mut q, page, gf256::pow_g(d));
            }
            out.push((RowMember::Q, q));
        }
        Ok(out)
    }

    /// Verify parity consistency of one row (tests/diagnostics). Stale
    /// rows are expected to fail verification.
    pub fn verify_row(&mut self, row: u64) -> Result<bool, RaidError> {
        let lpns = self.layout.row_lpns(row);
        let mut p = self.pool.acquire();
        let mut q = self.pool.acquire();
        let mut buf = self.pool.acquire();
        let mut cost = RaidCost::default();
        for (d, &lpn) in lpns.iter().enumerate() {
            let loc = self.layout.locate(lpn);
            self.disk_read(loc.disk, loc.disk_page, &mut buf, &mut cost)?;
            gf256::mul2_slice_into(&mut p, &mut q, &buf, gf256::pow_g(d));
        }
        // A mismatch short-circuits exactly as before (the Q parity is not
        // read when P already disagrees); `ok` just routes both exits
        // through the buffer release below.
        let mut ok = true;
        if let Some((pd, pp)) = self.layout.parity_location(row) {
            self.disk_read(pd, pp, &mut buf, &mut cost)?;
            ok = buf == p;
        }
        if ok {
            if let Some((qd, qp)) = self.layout.q_location(row) {
                self.disk_read(qd, qp, &mut buf, &mut cost)?;
                ok = buf == q;
            }
        }
        self.pool.release(p);
        self.pool.release(q);
        self.pool.release(buf);
        Ok(ok)
    }
}

/// Identifies one member of a parity row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowMember {
    Data(usize),
    P,
    Q,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(tag: u8, ps: usize) -> Vec<u8> {
        (0..ps).map(|i| tag ^ (i as u8).wrapping_mul(31)).collect()
    }

    fn r5() -> RaidArray {
        RaidArray::new(Layout::new(RaidLevel::Raid5, 5, 4, 4 * 8), 256)
    }

    fn r6() -> RaidArray {
        RaidArray::new(Layout::new(RaidLevel::Raid6, 6, 4, 4 * 8), 256)
    }

    #[test]
    fn write_read_roundtrip_r5() {
        let mut a = r5();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        let mut buf = vec![0u8; ps];
        for lpn in 0..a.capacity_pages() {
            a.read_page(lpn, &mut buf).unwrap();
            assert_eq!(buf, page(lpn as u8, ps), "lpn {lpn}");
        }
        for row in 0..a.layout().rows() {
            assert!(a.verify_row(row).unwrap(), "row {row} parity broken");
        }
    }

    #[test]
    fn small_write_costs_four_ios_r5() {
        let mut a = r5();
        let ps = 256;
        a.write_page(0, &page(1, ps)).unwrap();
        // Second write to the same page: genuine small write.
        let cost = a.write_page(0, &page(2, ps)).unwrap();
        // RMW on 5-disk RAID5: read old data + old parity, write data +
        // parity — but reconstruct (3 reads) may win only for 3 disks, so
        // here expect exactly 2+2.
        assert_eq!(cost.reads(), 2, "ops: {:?}", cost.ops);
        assert_eq!(cost.writes(), 2);
    }

    #[test]
    fn small_write_costs_six_ios_r6() {
        let mut a = r6();
        let ps = 256;
        a.write_page(0, &page(1, ps)).unwrap();
        let cost = a.write_page(0, &page(2, ps)).unwrap();
        assert_eq!(cost.reads(), 3);
        assert_eq!(cost.writes(), 3);
    }

    #[test]
    fn degraded_read_reconstructs_r5() {
        let mut a = r5();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        a.fail_disk(2);
        let mut buf = vec![0u8; ps];
        for lpn in 0..a.capacity_pages() {
            a.read_page(lpn, &mut buf).unwrap();
            assert_eq!(buf, page(lpn as u8, ps), "degraded lpn {lpn}");
        }
    }

    #[test]
    fn degraded_read_all_double_failures_r6() {
        let ps = 256;
        for f1 in 0..6 {
            for f2 in (f1 + 1)..6 {
                let mut a = r6();
                for lpn in 0..a.capacity_pages() {
                    a.write_page(lpn, &page((lpn as u8).wrapping_add(7), ps)).unwrap();
                }
                a.fail_disk(f1);
                a.fail_disk(f2);
                let mut buf = vec![0u8; ps];
                for lpn in 0..a.capacity_pages() {
                    a.read_page(lpn, &mut buf)
                        .unwrap_or_else(|e| panic!("fail {f1},{f2} lpn {lpn}: {e}"));
                    assert_eq!(
                        buf,
                        page((lpn as u8).wrapping_add(7), ps),
                        "fail {f1},{f2} lpn {lpn}"
                    );
                }
            }
        }
    }

    #[test]
    fn raid5_two_failures_rejected() {
        let mut a = r5();
        a.fail_disk(0);
        a.fail_disk(1);
        let mut buf = vec![0u8; 256];
        assert_eq!(a.read_page(0, &mut buf).unwrap_err(), RaidError::TooManyFailures);
    }

    #[test]
    fn write_no_parity_update_marks_stale() {
        let mut a = r5();
        let ps = 256;
        a.write_page(0, &page(1, ps)).unwrap();
        let row = a.layout().row_of(0);
        assert!(a.verify_row(row).unwrap());
        let cost = a.write_no_parity_update(0, &page(2, ps)).unwrap();
        assert_eq!(cost.reads(), 0);
        assert_eq!(cost.writes(), 1, "exactly one member write");
        assert!(a.is_stale(row));
        assert!(!a.verify_row(row).unwrap(), "parity must now be stale");
        // Data itself is current.
        let mut buf = vec![0u8; ps];
        a.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, page(2, ps));
    }

    #[test]
    fn parity_update_with_data_repairs() {
        let mut a = r5();
        let ps = 256;
        let row = a.layout().row_of(0);
        let lpns = a.layout().row_lpns(row);
        for (i, &lpn) in lpns.iter().enumerate() {
            a.write_page(lpn, &page(i as u8, ps)).unwrap();
        }
        a.write_no_parity_update(lpns[1], &page(0xEE, ps)).unwrap();
        assert!(a.is_stale(row));
        // Cleaner supplies all four data pages (as KDD's cache would).
        let d0 = page(0, ps);
        let d1 = page(0xEE, ps);
        let d2 = page(2, ps);
        let d3 = page(3, ps);
        let cost = a.parity_update_with_data(row, &[&d0, &d1, &d2, &d3]).unwrap();
        assert_eq!(cost.reads(), 0, "reconstruct-write repair reads nothing");
        assert_eq!(cost.writes(), 1);
        assert!(!a.is_stale(row));
        assert!(a.verify_row(row).unwrap());
    }

    #[test]
    fn parity_update_rmw_repairs() {
        let mut a = r5();
        let ps = 256;
        let row = a.layout().row_of(0);
        let lpns = a.layout().row_lpns(row);
        for (i, &lpn) in lpns.iter().enumerate() {
            a.write_page(lpn, &page(i as u8, ps)).unwrap();
        }
        let old = page(1, ps);
        let new = page(0x5A, ps);
        a.write_no_parity_update(lpns[1], &new).unwrap();
        let mut delta = old.clone();
        xor_into(&mut delta, &new);
        let cost = a.parity_update_rmw(row, &[(1, &delta)]).unwrap();
        assert_eq!(cost.reads(), 1, "RMW repair reads only parity");
        assert_eq!(cost.writes(), 1);
        assert!(a.verify_row(row).unwrap());
    }

    #[test]
    fn parity_update_rmw_repairs_q_too() {
        let mut a = r6();
        let ps = 256;
        let row = a.layout().row_of(0);
        let lpns = a.layout().row_lpns(row);
        for (i, &lpn) in lpns.iter().enumerate() {
            a.write_page(lpn, &page(i as u8, ps)).unwrap();
        }
        let old = page(2, ps);
        let new = page(0x77, ps);
        a.write_no_parity_update(lpns[2], &new).unwrap();
        let mut delta = old.clone();
        xor_into(&mut delta, &new);
        a.parity_update_rmw(row, &[(2, &delta)]).unwrap();
        assert!(a.verify_row(row).unwrap(), "P and Q must both be repaired");
    }

    #[test]
    fn resync_repairs_all_stale_rows() {
        let mut a = r5();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        for lpn in [0u64, 5, 9, 20] {
            a.write_no_parity_update(lpn, &page(0xAB, ps)).unwrap();
        }
        assert!(a.stale_row_count() > 0);
        a.resync(None).unwrap();
        assert_eq!(a.stale_row_count(), 0);
        for row in 0..a.layout().rows() {
            assert!(a.verify_row(row).unwrap(), "row {row}");
        }
    }

    #[test]
    fn degraded_read_on_stale_row_is_data_loss_window() {
        let mut a = r5();
        let ps = 256;
        for lpn in 0..8 {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        a.write_no_parity_update(0, &page(0xCC, ps)).unwrap();
        let row = a.layout().row_of(0);
        // Fail a *different* disk in the same row: reconstruction would
        // use the stale parity and return garbage — the array refuses.
        let victim_lpn = a.layout().row_lpns(row)[1];
        let victim_disk = a.layout().locate(victim_lpn).disk;
        a.fail_disk(victim_disk);
        let mut buf = vec![0u8; ps];
        assert_eq!(a.read_page(victim_lpn, &mut buf).unwrap_err(), RaidError::StaleParity { row });
    }

    #[test]
    fn rebuild_requires_clean_parity_then_restores() {
        let mut a = r5();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        a.write_no_parity_update(3, &page(0xDD, ps)).unwrap();
        a.fail_disk(1);
        assert!(matches!(a.rebuild(), Err(RaidError::StaleParity { .. })));
        // KDD's §III-E2 sequence: parity_update first, then rebuild.
        let row = a.layout().row_of(3);
        let lpns = a.layout().row_lpns(row);
        let datas: Vec<Vec<u8>> =
            lpns.iter().map(|&l| if l == 3 { page(0xDD, ps) } else { page(l as u8, ps) }).collect();
        let refs: Vec<&[u8]> = datas.iter().map(|d| d.as_slice()).collect();
        a.parity_update_with_data(row, &refs).unwrap();
        a.rebuild().unwrap();
        assert!(a.failed_disks().is_empty());
        let mut buf = vec![0u8; ps];
        for lpn in 0..a.capacity_pages() {
            a.read_page(lpn, &mut buf).unwrap();
            let expect = if lpn == 3 { page(0xDD, ps) } else { page(lpn as u8, ps) };
            assert_eq!(buf, expect, "lpn {lpn} after rebuild");
        }
        for row in 0..a.layout().rows() {
            assert!(a.verify_row(row).unwrap());
        }
    }

    #[test]
    fn rebuild_r6_after_double_failure() {
        let mut a = r6();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8 ^ 0x3C, ps)).unwrap();
        }
        a.fail_disk(0);
        a.fail_disk(3);
        a.rebuild().unwrap();
        let mut buf = vec![0u8; ps];
        for lpn in 0..a.capacity_pages() {
            a.read_page(lpn, &mut buf).unwrap();
            assert_eq!(buf, page(lpn as u8 ^ 0x3C, ps));
        }
        for row in 0..a.layout().rows() {
            assert!(a.verify_row(row).unwrap());
        }
    }

    #[test]
    fn raid0_has_no_parity_overhead() {
        let mut a = RaidArray::new(Layout::new(RaidLevel::Raid0, 4, 4, 16), 256);
        let cost = a.write_page(0, &page(1, 256)).unwrap();
        assert_eq!(cost.reads(), 0);
        assert_eq!(cost.writes(), 1);
        assert_eq!(a.stale_row_count(), 0);
    }

    #[test]
    fn degraded_write_target_failed_updates_parity() {
        let mut a = r5();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        let loc = a.layout().locate(7);
        a.fail_disk(loc.disk);
        // Write to the failed member: parity must absorb the new data.
        a.write_page(7, &page(0x99, ps)).unwrap();
        let mut buf = vec![0u8; ps];
        a.read_page(7, &mut buf).unwrap(); // degraded read
        assert_eq!(buf, page(0x99, ps));
        // And after rebuild the data is physically there.
        a.rebuild().unwrap();
        a.read_page(7, &mut buf).unwrap();
        assert_eq!(buf, page(0x99, ps));
    }

    #[test]
    fn injected_drop_degrades_then_rebuilds() {
        use kdd_blockdev::fault::FaultPlan;
        let mut a = r5();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        let inj = FaultInjector::new(FaultPlan::new().drop_device(0, FaultDomain::Disk(2)));
        a.attach_injector(inj.clone());

        // The very next op aimed at disk 2 kills it; the array absorbs the
        // failure and reconstructs from redundancy.
        let mut buf = vec![0u8; ps];
        for lpn in 0..a.capacity_pages() {
            a.read_page(lpn, &mut buf).unwrap();
            assert_eq!(buf, page(lpn as u8, ps), "lpn {lpn}");
        }
        assert_eq!(a.failed_disks(), vec![2]);
        assert_eq!(inj.counters().device_drops, 1);

        a.rebuild().unwrap();
        assert!(a.failed_disks().is_empty());
        assert!(!inj.is_dead(FaultDomain::Disk(2)));
        for lpn in 0..a.capacity_pages() {
            a.read_page(lpn, &mut buf).unwrap();
            assert_eq!(buf, page(lpn as u8, ps));
        }
    }

    #[test]
    fn power_loss_mid_write_leaves_row_stale_for_resync() {
        use kdd_blockdev::fault::FaultPlan;
        let mut a = r5();
        let ps = 256;
        for lpn in 0..a.capacity_pages() {
            a.write_page(lpn, &page(lpn as u8, ps)).unwrap();
        }
        // An RMW small write issues read(data), read(P), write(P),
        // write(data). Cut power at the parity write: data and parity
        // now disagree and the op never completed.
        let inj = FaultInjector::new(FaultPlan::new().power_loss(2));
        a.attach_injector(inj.clone());
        let err = a.write_page(0, &page(0xEE, ps)).unwrap_err();
        assert_eq!(err, RaidError::Dev(DevError::PowerLoss));
        let row = a.layout().row_of(0);
        assert!(a.is_stale(row), "interrupted write must leave a stale mark");

        // "Reboot": power returns, recovery resyncs the marked row.
        inj.restore_power();
        a.resync(Some(&[row])).unwrap();
        assert!(a.verify_row(row).unwrap());
        let mut buf = vec![0u8; ps];
        a.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, page(0, ps), "old data still intact (write never acked)");
    }

    #[test]
    fn stats_account_member_ios() {
        let mut a = r5();
        let before: u64 = a.stats().iter().map(|s| s.writes).sum();
        a.write_page(0, &page(1, 256)).unwrap();
        let after: u64 = a.stats().iter().map(|s| s.writes).sum();
        assert!(after > before);
    }
}
