//! RAID substrate for the KDD reproduction.
//!
//! Parity-based RAID is the storage system KDD accelerates; its *small
//! write problem* — each in-place update costing two reads and two writes
//! (§I) — is what the whole paper is about. This crate provides:
//!
//! * [`gf256`] — the Galois-field arithmetic behind RAID-6's Q parity;
//! * [`layout`] — left-symmetric striping, parity placement, and the
//!   parity-row geometry KDD's cleaner operates on;
//! * [`array`] — a content-holding RAID-0/5/6 array with conventional
//!   reads/writes, degraded operation, rebuild, resync, **and** the two
//!   interfaces the paper adds for delayed parity maintenance:
//!   `write_no_parity_update` and `parity_update` (both reconstruct-write
//!   and read-modify-write forms), with stale-row tracking.
//!
//! Every array operation returns the list of member-disk I/Os it issued
//! ([`RaidCost`]) so the timing simulator can charge realistic service
//! times without re-deriving RAID mechanics.

#![warn(missing_docs)]

pub mod array;
pub mod gf256;
pub mod layout;

pub use array::{DiskOp, DiskStats, IoKind, RaidArray, RaidCost, RaidError};
pub use layout::{Layout, PageLocation, RaidLevel};
