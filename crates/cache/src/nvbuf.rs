//! NVRAM-backed metadata buffer shared by the persistent policies.
//!
//! §IV-A1: "For fair comparisons, the NVRAM buffer is employed in all of
//! the algorithms." Mapping entries accumulate in NVRAM; when a page's
//! worth is buffered, the batch is committed to flash as one metadata-page
//! write. KDD additionally *coalesces* entries (a newer entry for the same
//! DAZ page overwrites the buffered one, §III-C); LeavO appends entries
//! uncoalesced.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use kdd_util::hash::FastMap;
use serde::{Deserialize, Serialize};

/// Bytes per persistent mapping entry on flash: two 4-byte LBAs, a 1-byte
/// state and the 3-byte `(off, len)` tuple (§III-C). The paper's 24-byte
/// figure additionally counts 12 bytes of *in-memory* list pointers, which
/// never reach the SSD.
pub const ENTRY_BYTES: u32 = 12;

/// An NVRAM metadata buffer committing page-sized batches to flash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetadataBuffer {
    /// Whether same-key entries overwrite in place (KDD) or append (LeavO).
    coalesce: bool,
    entries_per_page: u32,
    /// Buffered entries: key → generation (for coalescing); when not
    /// coalescing, the count alone matters.
    buffered: FastMap<u64, u64>,
    uncoalesced_count: u32,
    generation: u64,
    /// Metadata pages committed to flash so far.
    pages_committed: u64,
}

impl MetadataBuffer {
    /// Create a buffer batching entries into `page_size`-byte pages.
    pub fn new(page_size: u32, coalesce: bool) -> Self {
        MetadataBuffer {
            coalesce,
            entries_per_page: (page_size / ENTRY_BYTES).max(1),
            buffered: FastMap::default(),
            uncoalesced_count: 0,
            generation: 0,
            pages_committed: 0,
        }
    }

    /// Entries that fit one metadata page.
    pub fn entries_per_page(&self) -> u32 {
        self.entries_per_page
    }

    /// Entries currently buffered.
    pub fn buffered_entries(&self) -> u32 {
        if self.coalesce {
            self.buffered.len() as u32
        } else {
            self.uncoalesced_count
        }
    }

    /// Metadata pages committed so far.
    pub fn pages_committed(&self) -> u64 {
        self.pages_committed
    }

    /// Record a mapping update for `key`; returns the number of metadata
    /// pages flushed to flash as a result (0 or 1).
    pub fn push(&mut self, key: u64) -> u32 {
        self.generation += 1;
        if self.coalesce {
            self.buffered.insert(key, self.generation);
        } else {
            self.uncoalesced_count += 1;
        }
        if self.buffered_entries() >= self.entries_per_page {
            self.flush()
        } else {
            0
        }
    }

    /// Force-commit whatever is buffered (e.g. at shutdown); returns pages
    /// written.
    pub fn flush(&mut self) -> u32 {
        let n = self.buffered_entries();
        if n == 0 {
            return 0;
        }
        let pages = n.div_ceil(self.entries_per_page);
        self.buffered.clear();
        self.uncoalesced_count = 0;
        self.pages_committed += pages as u64;
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appending_buffer_flushes_per_page() {
        let mut b = MetadataBuffer::new(4096, false);
        let epp = b.entries_per_page();
        assert_eq!(epp, 341);
        let mut pages = 0;
        for i in 0..(epp * 3) as u64 {
            pages += b.push(i % 5); // duplicate keys do NOT coalesce
        }
        assert_eq!(pages, 3);
        assert_eq!(b.pages_committed(), 3);
    }

    #[test]
    fn coalescing_buffer_dedups_keys() {
        let mut b = MetadataBuffer::new(4096, true);
        let mut pages = 0;
        for _ in 0..10_000 {
            pages += b.push(7); // same page updated over and over
        }
        assert_eq!(pages, 0, "coalesced updates never fill the buffer");
        assert_eq!(b.buffered_entries(), 1);
        assert_eq!(b.flush(), 1);
        assert_eq!(b.flush(), 0, "already empty");
    }

    #[test]
    fn coalescing_still_flushes_on_distinct_keys() {
        let mut b = MetadataBuffer::new(4096, true);
        let epp = b.entries_per_page() as u64;
        let mut pages = 0;
        for k in 0..epp {
            pages += b.push(k);
        }
        assert_eq!(pages, 1);
        assert_eq!(b.buffered_entries(), 0);
    }

    #[test]
    fn tiny_pages_still_hold_one_entry() {
        let mut b = MetadataBuffer::new(8, false);
        assert_eq!(b.entries_per_page(), 1);
        assert_eq!(b.push(0), 1);
    }
}
