//! Cumulative statistics the experiments report.
//!
//! Figures 5/7 plot hit ratios; Figures 6/8/11 plot SSD write traffic;
//! Figure 4 plots the metadata fraction of that traffic. All are derived
//! from [`CacheStats`], which policies update once per access from the
//! [`AccessOutcome`](crate::effects::AccessOutcome).

use crate::effects::AccessOutcome;
use kdd_obs::frac;
use kdd_util::units::ByteSize;
use serde::{Deserialize, Serialize};

/// Cumulative counters for one policy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read requests that hit.
    pub read_hits: u64,
    /// Read requests that missed.
    pub read_misses: u64,
    /// Write requests that hit.
    pub write_hits: u64,
    /// Write requests that missed.
    pub write_misses: u64,
    /// SSD data pages written (fills, allocations, updates, versions).
    pub ssd_data_writes: u64,
    /// SSD delta pages written (KDD).
    pub ssd_delta_writes: u64,
    /// SSD metadata pages written.
    pub ssd_meta_writes: u64,
    /// SSD pages read.
    pub ssd_reads: u64,
    /// RAID member pages read.
    pub raid_reads: u64,
    /// RAID member pages written.
    pub raid_writes: u64,
    /// Pages evicted from the cache.
    pub evictions: u64,
    /// Background parity updates performed (rows repaired).
    pub parity_updates: u64,
    /// Cleaning passes run.
    pub cleanings: u64,
    /// Device faults observed by the engine (failed reads/writes of any
    /// kind, before retry or fallback).
    pub faults_observed: u64,
    /// Operations retried after a transient device fault.
    pub fault_retries: u64,
    /// Requests served by falling back to pass-through RAID after a
    /// persistent SSD fault.
    pub fault_fallbacks: u64,
    /// Torn/corrupt metadata log pages detected (and healed from the
    /// NVRAM in-flight copy) during power-failure recovery.
    pub torn_pages_detected: u64,
}

impl CacheStats {
    /// Fold one access outcome into the counters.
    pub fn record(&mut self, is_read: bool, outcome: &AccessOutcome) {
        match (is_read, outcome.hit) {
            (true, true) => self.read_hits += 1,
            (true, false) => self.read_misses += 1,
            (false, true) => self.write_hits += 1,
            (false, false) => self.write_misses += 1,
        }
        let t = outcome.total();
        self.ssd_data_writes += t.ssd_data_writes as u64;
        self.ssd_delta_writes += t.ssd_delta_writes as u64;
        self.ssd_meta_writes += t.ssd_meta_writes as u64;
        self.ssd_reads += t.ssd_reads as u64;
        self.raid_reads += t.raid_reads as u64;
        self.raid_writes += t.raid_writes as u64;
    }

    /// All requests seen.
    pub fn requests(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Overall cache hit ratio (reads + writes), as Figures 5/7 plot.
    /// Routed through [`kdd_obs::frac`] so the empty case is 0.0 uniformly.
    pub fn hit_ratio(&self) -> f64 {
        frac(self.read_hits + self.write_hits, self.requests())
    }

    /// Read-only hit ratio.
    pub fn read_hit_ratio(&self) -> f64 {
        frac(self.read_hits, self.read_hits + self.read_misses)
    }

    /// Total SSD pages written.
    pub fn ssd_writes_pages(&self) -> u64 {
        self.ssd_data_writes + self.ssd_delta_writes + self.ssd_meta_writes
    }

    /// Total SSD bytes written — the write-traffic metric of Figures 6/8/11.
    pub fn ssd_write_bytes(&self, page_size: u32) -> ByteSize {
        ByteSize(self.ssd_writes_pages() * page_size as u64)
    }

    /// Metadata share of SSD write traffic — the Figure 4 metric.
    pub fn metadata_fraction(&self) -> f64 {
        frac(self.ssd_meta_writes, self.ssd_writes_pages())
    }

    /// Export the counters for the observability registry. `kdd-obs`
    /// sits below this crate in the dependency graph, so the totals cross
    /// over through its mirror struct; the accessors above stay the thin
    /// views experiments already use.
    pub fn counters(&self) -> kdd_obs::CacheCounters {
        kdd_obs::CacheCounters {
            read_hits: self.read_hits,
            read_misses: self.read_misses,
            write_hits: self.write_hits,
            write_misses: self.write_misses,
            ssd_data_writes: self.ssd_data_writes,
            ssd_delta_writes: self.ssd_delta_writes,
            ssd_meta_writes: self.ssd_meta_writes,
            ssd_reads: self.ssd_reads,
            raid_reads: self.raid_reads,
            raid_writes: self.raid_writes,
            evictions: self.evictions,
            parity_updates: self.parity_updates,
            cleanings: self.cleanings,
            faults_observed: self.faults_observed,
            fault_retries: self.fault_retries,
            fault_fallbacks: self.fault_fallbacks,
            torn_pages_detected: self.torn_pages_detected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::Effects;

    #[test]
    fn records_hit_miss_matrix() {
        let mut s = CacheStats::default();
        s.record(true, &AccessOutcome::new(true, Effects::default()));
        s.record(true, &AccessOutcome::new(false, Effects::default()));
        s.record(false, &AccessOutcome::new(true, Effects::default()));
        s.record(false, &AccessOutcome::new(false, Effects::default()));
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_hits, 1);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.requests(), 4);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((s.read_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_accumulates_foreground_and_background() {
        let mut s = CacheStats::default();
        let mut o = AccessOutcome::new(false, Effects { ssd_data_writes: 1, ..Default::default() });
        o.background = Effects { ssd_meta_writes: 2, ssd_delta_writes: 3, ..Default::default() };
        s.record(false, &o);
        assert_eq!(s.ssd_writes_pages(), 6);
        assert_eq!(s.ssd_write_bytes(4096).as_u64(), 6 * 4096);
        assert!((s.metadata_fraction() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.read_hit_ratio(), 0.0);
        assert_eq!(s.metadata_fraction(), 0.0);
        assert_eq!(s.ssd_writes_pages(), 0);
    }

    #[test]
    fn counters_mirror_every_field() {
        let s = CacheStats {
            read_hits: 1,
            read_misses: 2,
            write_hits: 3,
            write_misses: 4,
            ssd_data_writes: 5,
            ssd_delta_writes: 6,
            ssd_meta_writes: 7,
            ssd_reads: 8,
            raid_reads: 9,
            raid_writes: 10,
            evictions: 11,
            parity_updates: 12,
            cleanings: 13,
            faults_observed: 14,
            fault_retries: 15,
            fault_fallbacks: 16,
            torn_pages_detected: 17,
        };
        let c = s.counters();
        assert_eq!(c.requests(), s.requests());
        assert_eq!(c.hits(), s.read_hits + s.write_hits);
        assert_eq!(c.ssd_writes_pages(), s.ssd_writes_pages());
        assert_eq!(c.torn_pages_detected, 17);
        assert_eq!(c.fault_fallbacks, 16);
    }
}
