//! The N-way set-associative cache directory all policies share.
//!
//! §III-B: "KDD adopts the N-way set-associative method to organize the
//! SSD cache. The cache space is divided into many cache sets, each
//! containing a fixed number of pages." Pages carry a state (*free*,
//! *clean*, *old*, *delta*, plus *dirty*/*old-version* for the baseline
//! policies); per-set recency is tracked with an intrusive LRU.
//!
//! Set placement groups pages of the same parity stripe into the same set
//! (hashed), so the cleaner can reclaim them together; DEZ pages are
//! *unmapped* slots allocated "from the cache set which has the least
//! number of DEZ pages" so they spread evenly.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_util::hash::{mix64, FastMap};
use kdd_util::lru::LruList;
use serde::{Deserialize, Serialize};

/// State of one cache page slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PageState {
    /// Unoccupied.
    Free,
    /// Valid copy of RAID data (parity consistent).
    Clean,
    /// Stale copy: the RAID holds newer data whose parity is pending; the
    /// delta to the current version lives in DEZ/NVRAM (KDD).
    Old,
    /// A compacted page of deltas (KDD's DEZ).
    Delta,
    /// Newer than RAID (write-back only).
    Dirty,
    /// LeavO's retained second version of an updated page.
    OldVersion,
}

/// How LBAs map to cache sets.
///
/// §III-B: "DAZ pages in the same parity stripe are mapped to the same
/// cache set, and thus they can be reclaimed together during cache
/// cleaning." The reclaim unit of the cleaner is the *parity row* (the
/// page-granular stripe slice), so [`SetGrouping::ParityRow`] co-locates
/// exactly the pages that are freed together while spreading unrelated
/// rows across sets. [`SetGrouping::Pages`] is plain block-range hashing
/// (1 = per-page) for the set-mapping ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetGrouping {
    /// `lba / n` shares a set.
    Pages(u64),
    /// Members of the same parity row share a set.
    ParityRow {
        /// Pages per chunk (stripe unit).
        chunk_pages: u64,
        /// Data disks per stripe.
        data_disks: u64,
    },
}

impl SetGrouping {
    /// The grouping key for an LBA (hashed to pick the set).
    #[inline]
    pub fn key(&self, lba: u64) -> u64 {
        match *self {
            SetGrouping::Pages(n) => lba / n.max(1),
            SetGrouping::ParityRow { chunk_pages, data_disks } => {
                let stripe = lba / (chunk_pages * data_disks);
                stripe * chunk_pages + lba % chunk_pages
            }
        }
    }
}

/// Cache shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total page slots.
    pub total_pages: u64,
    /// Slots per set.
    pub ways: u32,
    /// Page size in bytes.
    pub page_size: u32,
}

impl CacheGeometry {
    /// Geometry from a byte capacity (ways defaults to 64, clamped so at
    /// least one set exists).
    pub fn from_bytes(capacity_bytes: u64, page_size: u32) -> Self {
        let total_pages = (capacity_bytes / page_size as u64).max(1);
        CacheGeometry { total_pages, ways: 64.min(total_pages as u32).max(1), page_size }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.total_pages / self.ways as u64).max(1) as usize
    }
}

/// Result of inserting a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Inserted into a free slot.
    Inserted {
        /// The slot used.
        slot: u32,
    },
    /// Inserted after evicting a page.
    Evicted {
        /// The slot used.
        slot: u32,
        /// Tag (LBA) of the evicted page.
        victim_lba: u64,
        /// State the victim was in.
        victim_state: PageState,
    },
    /// No free slot and nothing evictable in the set — the caller must
    /// bypass the cache or trigger cleaning.
    NoRoom,
}

const TAG_NONE: u64 = u64::MAX;

/// The shared cache directory.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: usize,
    /// Per-slot tag (LBA) — `TAG_NONE` for free/unmapped (delta) slots.
    tags: Vec<u64>,
    states: Vec<PageState>,
    /// Per-set LRU over *local* slot indices.
    lru: Vec<LruList>,
    /// LBA → global slot.
    map: FastMap<u64, u32>,
    /// Per-set free-slot counts.
    free_per_set: Vec<u32>,
    /// Per-set delta (DEZ) page counts.
    delta_per_set: Vec<u32>,
    /// Set-placement grouping.
    grouping: SetGrouping,
}

impl SetAssocCache {
    /// Build an empty cache with the given set-placement grouping.
    pub fn new_grouped(geometry: CacheGeometry, grouping: SetGrouping) -> Self {
        let sets = geometry.sets();
        let slots = sets * geometry.ways as usize;
        SetAssocCache {
            geometry,
            sets,
            tags: vec![TAG_NONE; slots],
            states: vec![PageState::Free; slots],
            lru: (0..sets).map(|_| LruList::with_capacity(geometry.ways as usize)).collect(),
            map: FastMap::default(),
            free_per_set: vec![geometry.ways; sets],
            delta_per_set: vec![0; sets],
            grouping,
        }
    }

    /// Build with simple page-range grouping (`group_pages` consecutive
    /// pages share a set; 1 = per-page hashing).
    pub fn new(geometry: CacheGeometry, group_pages: u64) -> Self {
        Self::new_grouped(geometry, SetGrouping::Pages(group_pages))
    }

    /// The cache shape.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total slots (sets × ways).
    pub fn slots(&self) -> usize {
        self.tags.len()
    }

    /// Set an LBA maps to.
    #[inline]
    pub fn set_of_lba(&self, lba: u64) -> usize {
        (mix64(self.grouping.key(lba)) % self.sets as u64) as usize
    }

    /// Set that owns a slot.
    #[inline]
    pub fn set_of_slot(&self, slot: u32) -> usize {
        slot as usize / self.geometry.ways as usize
    }

    #[inline]
    fn local(&self, slot: u32) -> usize {
        slot as usize % self.geometry.ways as usize
    }

    #[inline]
    fn global(&self, set: usize, local: usize) -> u32 {
        (set * self.geometry.ways as usize + local) as u32
    }

    /// Slot holding `lba`, if cached (does not touch recency).
    pub fn lookup(&self, lba: u64) -> Option<u32> {
        self.map.get(&lba).copied()
    }

    /// State of a slot.
    pub fn state(&self, slot: u32) -> PageState {
        self.states[slot as usize]
    }

    /// Tag (LBA) of a slot; `None` for unmapped slots.
    pub fn tag(&self, slot: u32) -> Option<u64> {
        let t = self.tags[slot as usize];
        (t != TAG_NONE).then_some(t)
    }

    /// Change a slot's state (keeps mapping and recency).
    pub fn set_state(&mut self, slot: u32, state: PageState) {
        debug_assert_ne!(state, PageState::Free, "use free_slot to free");
        let old = self.states[slot as usize];
        debug_assert_ne!(old, PageState::Free, "slot not allocated");
        let set = self.set_of_slot(slot);
        if old == PageState::Delta && state != PageState::Delta {
            self.delta_per_set[set] -= 1;
        }
        if old != PageState::Delta && state == PageState::Delta {
            self.delta_per_set[set] += 1;
        }
        self.states[slot as usize] = state;
    }

    /// Mark a slot most-recently-used.
    pub fn touch(&mut self, slot: u32) {
        let set = self.set_of_slot(slot);
        let local = self.local(slot);
        self.lru[set].touch(local);
    }

    /// Remove a slot's LBA mapping while keeping it occupied (LeavO turns
    /// the current copy into a retained *old version* this way; the new
    /// version is then inserted under the same LBA elsewhere). Returns the
    /// detached LBA.
    ///
    /// # Panics
    /// Panics if the slot is unmapped.
    pub fn detach(&mut self, slot: u32) -> u64 {
        let tag = self.tags[slot as usize];
        assert_ne!(tag, TAG_NONE, "slot {slot} has no mapping to detach");
        self.map.remove(&tag);
        self.tags[slot as usize] = TAG_NONE;
        tag
    }

    /// Release a slot back to *free* (removing mapping and recency).
    pub fn free_slot(&mut self, slot: u32) {
        let set = self.set_of_slot(slot);
        let local = self.local(slot);
        debug_assert_ne!(self.states[slot as usize], PageState::Free);
        if self.states[slot as usize] == PageState::Delta {
            self.delta_per_set[set] -= 1;
        }
        let tag = self.tags[slot as usize];
        if tag != TAG_NONE {
            self.map.remove(&tag);
            self.tags[slot as usize] = TAG_NONE;
        }
        self.states[slot as usize] = PageState::Free;
        self.lru[set].remove(local);
        self.free_per_set[set] += 1;
    }

    /// Insert `lba` into its set with the given state, evicting the LRU
    /// page whose state satisfies `evictable` if the set is full.
    ///
    /// # Panics
    /// Panics if `lba` is already cached.
    pub fn insert(
        &mut self,
        lba: u64,
        state: PageState,
        evictable: impl Fn(PageState) -> bool,
    ) -> InsertOutcome {
        assert!(!self.map.contains_key(&lba), "lba {lba} already cached");
        let set = self.set_of_lba(lba);
        // Fast path: a free slot. If the free count and the scan ever
        // disagree (an accounting bug), fall through to eviction rather
        // than panicking mid-insert.
        if self.free_per_set[set] > 0 {
            if let Some(slot) = self.find_free_in_set(set) {
                self.occupy(set, slot, lba, state);
                return InsertOutcome::Inserted { slot };
            }
            debug_assert!(false, "free count said so");
        }
        // Evict the LRU page with an evictable state.
        let victim_local = self.lru[set].iter_lru().find(|&l| {
            let s = self.states[self.global(set, l) as usize];
            evictable(s)
        });
        let Some(local) = victim_local else {
            return InsertOutcome::NoRoom;
        };
        let slot = self.global(set, local);
        let victim_lba = self.tags[slot as usize];
        let victim_state = self.states[slot as usize];
        self.free_slot(slot);
        self.occupy(set, slot, lba, state);
        InsertOutcome::Evicted { slot, victim_lba, victim_state }
    }

    /// Allocate an *unmapped* slot (a DEZ page) in the set that currently
    /// holds the fewest delta pages, if any set has a free slot.
    pub fn alloc_delta_slot(&mut self) -> Option<u32> {
        let set = (0..self.sets)
            .filter(|&s| self.free_per_set[s] > 0)
            .min_by_key(|&s| self.delta_per_set[s])?;
        // The filter above guarantees a free slot; if the accounting is
        // broken, report exhaustion instead of panicking.
        let slot = self.find_free_in_set(set)?;
        let local = self.local(slot);
        self.states[slot as usize] = PageState::Delta;
        self.lru[set].push_front(local);
        self.free_per_set[set] -= 1;
        self.delta_per_set[set] += 1;
        Some(slot)
    }

    /// Recovery-path insert: place `lba` at a *specific* slot (the slot
    /// recorded in the persistent metadata log). The slot must be free.
    ///
    /// # Panics
    /// Panics if the slot is occupied or the LBA already mapped.
    pub fn insert_at(&mut self, slot: u32, lba: u64, state: PageState) {
        assert_eq!(self.states[slot as usize], PageState::Free, "slot {slot} occupied");
        assert!(!self.map.contains_key(&lba), "lba {lba} already mapped");
        let set = self.set_of_slot(slot);
        self.occupy(set, slot, lba, state);
    }

    /// Recovery-path DEZ placement: mark a *specific* free slot as a delta
    /// page.
    ///
    /// # Panics
    /// Panics if the slot is occupied.
    pub fn occupy_delta_at(&mut self, slot: u32) {
        assert_eq!(self.states[slot as usize], PageState::Free, "slot {slot} occupied");
        let set = self.set_of_slot(slot);
        let local = self.local(slot);
        self.states[slot as usize] = PageState::Delta;
        self.lru[set].push_front(local);
        self.free_per_set[set] -= 1;
        self.delta_per_set[set] += 1;
    }

    fn find_free_in_set(&self, set: usize) -> Option<u32> {
        let base = set * self.geometry.ways as usize;
        (0..self.geometry.ways as usize)
            .map(|l| (base + l) as u32)
            .find(|&s| self.states[s as usize] == PageState::Free)
    }

    fn occupy(&mut self, set: usize, slot: u32, lba: u64, state: PageState) {
        debug_assert_eq!(self.states[slot as usize], PageState::Free);
        debug_assert_ne!(state, PageState::Free);
        self.tags[slot as usize] = lba;
        self.states[slot as usize] = state;
        self.map.insert(lba, slot);
        let local = self.local(slot);
        self.lru[set].push_front(local);
        self.free_per_set[set] -= 1;
        if state == PageState::Delta {
            self.delta_per_set[set] += 1;
        }
    }

    /// Count slots in a given state across the whole cache.
    pub fn count_state(&self, state: PageState) -> usize {
        self.states.iter().filter(|&&s| s == state).count()
    }

    /// Iterate `(slot, lba, state)` over all occupied, mapped slots.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (u32, u64, PageState)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter(|&(_i, &t)| t != TAG_NONE)
            .map(|(i, &t)| (i as u32, t, self.states[i]))
    }

    /// Free slots remaining (whole cache).
    pub fn free_slots(&self) -> u64 {
        self.free_per_set.iter().map(|&f| f as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(pages: u64, ways: u32) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry { total_pages: pages, ways, page_size: 4096 }, 1)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = cache(64, 8);
        match c.insert(42, PageState::Clean, |_| true) {
            InsertOutcome::Inserted { slot } => {
                assert_eq!(c.lookup(42), Some(slot));
                assert_eq!(c.state(slot), PageState::Clean);
                assert_eq!(c.tag(slot), Some(42));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.count_state(PageState::Clean), 1);
    }

    #[test]
    fn lru_eviction_order_within_set() {
        let mut c = cache(4, 4); // one set of 4 ways
                                 // All lbas map to set 0.
        for lba in 0..4 {
            c.insert(lba, PageState::Clean, |_| true);
        }
        // Touch 0 so 1 becomes LRU.
        let s0 = c.lookup(0).unwrap();
        c.touch(s0);
        match c.insert(100, PageState::Clean, |s| s == PageState::Clean) {
            InsertOutcome::Evicted { victim_lba, .. } => assert_eq!(victim_lba, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.lookup(1), None);
        assert!(c.lookup(0).is_some());
    }

    #[test]
    fn non_evictable_states_are_skipped() {
        let mut c = cache(2, 2);
        c.insert(0, PageState::Old, |_| true);
        c.insert(1, PageState::Clean, |_| true);
        // Only Clean evictable: victim must be 1 even though 0 is LRU.
        match c.insert(2, PageState::Clean, |s| s == PageState::Clean) {
            InsertOutcome::Evicted { victim_lba, victim_state, .. } => {
                assert_eq!(victim_lba, 1);
                assert_eq!(victim_state, PageState::Clean);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Now the set holds Old + Clean(2); nothing evictable if only
        // OldVersion allowed.
        assert_eq!(
            c.insert(3, PageState::Clean, |s| s == PageState::OldVersion),
            InsertOutcome::NoRoom
        );
    }

    #[test]
    fn free_slot_recycles() {
        let mut c = cache(2, 2);
        c.insert(0, PageState::Clean, |_| true);
        let s = c.lookup(0).unwrap();
        c.free_slot(s);
        assert_eq!(c.lookup(0), None);
        assert_eq!(c.count_state(PageState::Free), 2);
        assert_eq!(c.free_slots(), 2);
        c.insert(5, PageState::Clean, |_| true);
        assert!(c.lookup(5).is_some());
    }

    #[test]
    fn delta_slots_spread_evenly() {
        let mut c = cache(64, 8); // 8 sets
        let mut per_set = vec![0u32; c.sets()];
        for _ in 0..32 {
            let slot = c.alloc_delta_slot().unwrap();
            per_set[c.set_of_slot(slot)] += 1;
        }
        let max = *per_set.iter().max().unwrap();
        let min = *per_set.iter().min().unwrap();
        assert!(max - min <= 1, "delta pages unbalanced: {per_set:?}");
        assert_eq!(c.count_state(PageState::Delta), 32);
    }

    #[test]
    fn delta_alloc_exhausts_gracefully() {
        let mut c = cache(4, 2);
        for _ in 0..4 {
            assert!(c.alloc_delta_slot().is_some());
        }
        assert!(c.alloc_delta_slot().is_none());
    }

    #[test]
    fn state_transitions_update_delta_counts() {
        let mut c = cache(8, 8);
        c.insert(1, PageState::Clean, |_| true);
        let s = c.lookup(1).unwrap();
        c.set_state(s, PageState::Old);
        assert_eq!(c.state(s), PageState::Old);
        assert_eq!(c.count_state(PageState::Old), 1);
        // Old → freed.
        c.free_slot(s);
        assert_eq!(c.count_state(PageState::Old), 0);
    }

    #[test]
    fn grouping_maps_rows_together() {
        let g = CacheGeometry { total_pages: 1024, ways: 16, page_size: 4096 };
        let c = SetAssocCache::new(g, 64); // 64-page stripes share a set
        for stripe in 0..8u64 {
            let base = stripe * 64;
            let set = c.set_of_lba(base);
            for off in 0..64 {
                assert_eq!(c.set_of_lba(base + off), set, "stripe {stripe} off {off}");
            }
        }
    }

    #[test]
    fn iter_mapped_reports_contents() {
        let mut c = cache(8, 8);
        c.insert(3, PageState::Clean, |_| true);
        c.insert(9, PageState::Old, |_| true);
        c.alloc_delta_slot(); // unmapped, must not appear
        let mut v: Vec<(u64, PageState)> = c.iter_mapped().map(|(_, l, s)| (l, s)).collect();
        v.sort();
        assert_eq!(v, vec![(3, PageState::Clean), (9, PageState::Old)]);
    }

    #[test]
    fn geometry_from_bytes() {
        let g = CacheGeometry::from_bytes(1 << 30, 4096);
        assert_eq!(g.total_pages, 262_144);
        assert_eq!(g.ways, 64);
        assert_eq!(g.sets(), 4096);
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let mut c = cache(8, 8);
        c.insert(1, PageState::Clean, |_| true);
        c.insert(1, PageState::Clean, |_| true);
    }
}
