//! SSD-cache framework and baseline policies.
//!
//! This crate is the cache *simulator* of §IV-A: a set-associative,
//! LRU-managed SSD cache in front of parity RAID, with each caching policy
//! implemented as a separate module:
//!
//! * [`policies::Nossd`] — no cache, every request goes to RAID;
//! * [`policies::WriteThrough`] — write-allocate, write-through (WT);
//! * [`policies::WriteAround`] — allocate on read miss only (WA);
//! * [`policies::WriteBack`] — write-back (evaluated for completeness; the
//!   paper excludes it because it loses data on SSD failure);
//! * [`policies::LeavO`] — the SAC'15 baseline keeping old + new versions
//!   of updated pages to delay parity updates.
//!
//! KDD itself implements the same [`CachePolicy`] trait from `kdd-core`.
//!
//! Policies are *accounting machines*: they track cache state exactly but
//! move no data; every access returns the device operations it implies
//! ([`Effects`]), which the statistics layer turns into hit ratios and SSD
//! write traffic (Figures 5–8) and the timing simulator turns into
//! response times (Figures 9–11).

#![warn(missing_docs)]

pub mod effects;
pub mod nvbuf;
pub mod policies;
pub mod setassoc;
pub mod stats;

pub use effects::{AccessOutcome, Effects};
pub use nvbuf::MetadataBuffer;
pub use policies::{CachePolicy, RaidModel};
pub use setassoc::{CacheGeometry, InsertOutcome, PageState, SetAssocCache};
pub use stats::CacheStats;
