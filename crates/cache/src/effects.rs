//! Device-operation accounting for one cache access.
//!
//! A policy returns, for every request, the set of device operations that
//! request implies. The trace-driven experiments sum them into traffic
//! counters; the timing simulator converts them into service times. The
//! split between `foreground` (on the request's critical path) and
//! `background` (cleaning/flushing that proceeds asynchronously) matters
//! only for latency: background work still counts as SSD wear.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counted device operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Effects {
    /// SSD page reads.
    pub ssd_reads: u32,
    /// Serialised SSD read rounds: reads that can use distinct channels in
    /// parallel count as one round (KDD reads data + delta concurrently,
    /// §IV-B2).
    pub ssd_read_rounds: u32,
    /// SSD full-page data writes (read fills, write allocations, in-place
    /// updates, LeavO new versions).
    pub ssd_data_writes: u32,
    /// SSD delta-page writes (KDD's compacted DEZ commits).
    pub ssd_delta_writes: u32,
    /// SSD metadata-page writes (persistent mapping log).
    pub ssd_meta_writes: u32,
    /// RAID member-disk page reads (data or parity).
    pub raid_reads: u32,
    /// RAID member-disk page writes (data or parity).
    pub raid_writes: u32,
    /// Serialised RAID rounds: a read-modify-write is 2 rounds (read old
    /// data+parity in parallel, then write data+parity in parallel).
    pub raid_rounds: u32,
    /// Delta compressions performed (CPU cost).
    pub compressions: u32,
    /// Delta decompressions performed (CPU cost).
    pub decompressions: u32,
}

impl Effects {
    /// Total SSD page writes of any kind.
    pub fn ssd_writes(&self) -> u32 {
        self.ssd_data_writes + self.ssd_delta_writes + self.ssd_meta_writes
    }

    /// One plain SSD read.
    pub fn ssd_read() -> Effects {
        Effects { ssd_reads: 1, ssd_read_rounds: 1, ..Default::default() }
    }

    /// One plain SSD data-page write.
    pub fn ssd_write() -> Effects {
        Effects { ssd_data_writes: 1, ..Default::default() }
    }
}

impl AddAssign for Effects {
    fn add_assign(&mut self, rhs: Effects) {
        self.ssd_reads += rhs.ssd_reads;
        self.ssd_read_rounds += rhs.ssd_read_rounds;
        self.ssd_data_writes += rhs.ssd_data_writes;
        self.ssd_delta_writes += rhs.ssd_delta_writes;
        self.ssd_meta_writes += rhs.ssd_meta_writes;
        self.raid_reads += rhs.raid_reads;
        self.raid_writes += rhs.raid_writes;
        self.raid_rounds += rhs.raid_rounds;
        self.compressions += rhs.compressions;
        self.decompressions += rhs.decompressions;
    }
}

/// What one request produced: whether it hit, plus foreground and
/// background operation sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Whether the request hit in the cache.
    pub hit: bool,
    /// Operations on the request's critical path.
    pub foreground: Effects,
    /// Deferred operations (cleaning, flushes) attributable to this
    /// request but off the critical path.
    pub background: Effects,
}

impl AccessOutcome {
    /// A pure hit/miss marker with the given foreground effects.
    pub fn new(hit: bool, foreground: Effects) -> Self {
        AccessOutcome { hit, foreground, background: Effects::default() }
    }

    /// Total effects regardless of criticality (for traffic accounting).
    pub fn total(&self) -> Effects {
        let mut t = self.foreground;
        t += self.background;
        t
    }

    /// Convert this outcome into an observability completion record so
    /// every policy (via the sim drivers) feeds the same span stream the
    /// engine does. The hit class here is the coarse four-way split;
    /// KDD's engine refines write hits into delta/through itself.
    pub fn to_obs(
        &self,
        is_read: bool,
        lba: u64,
        service: kdd_util::SimTime,
    ) -> kdd_obs::Completion {
        use kdd_obs::{HitClass, ReqKind};
        let kind = if is_read { ReqKind::Read } else { ReqKind::Write };
        let class = match (is_read, self.hit) {
            (true, true) => HitClass::ReadHit,
            (true, false) => HitClass::ReadMiss,
            (false, true) => HitClass::WriteHit,
            (false, false) => HitClass::WriteMiss,
        };
        let t = self.total();
        let mut c = kdd_obs::Completion::new(kind, lba, class, service);
        c.ssd_reads = t.ssd_reads;
        c.ssd_writes = t.ssd_writes();
        c.raid_reads = t.raid_reads;
        c.raid_writes = t.raid_writes;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Effects::ssd_read();
        a += Effects::ssd_write();
        a += Effects { raid_reads: 2, raid_writes: 2, raid_rounds: 2, ..Default::default() };
        assert_eq!(a.ssd_reads, 1);
        assert_eq!(a.ssd_data_writes, 1);
        assert_eq!(a.raid_reads, 2);
        assert_eq!(a.ssd_writes(), 1);
    }

    #[test]
    fn outcome_total_merges() {
        let mut o = AccessOutcome::new(true, Effects::ssd_read());
        o.background = Effects { ssd_meta_writes: 3, ..Default::default() };
        let t = o.total();
        assert_eq!(t.ssd_reads, 1);
        assert_eq!(t.ssd_meta_writes, 3);
        assert_eq!(t.ssd_writes(), 3);
    }
}
