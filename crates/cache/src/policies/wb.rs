//! Write-back caching (WB).
//!
//! Included for completeness: the paper explicitly does **not** evaluate
//! write-back "because it cannot prevent data loss under SSD failures"
//! (§IV-A1) — dirty pages exist only in flash until eviction. It is the
//! latency upper bound a volatile-tolerant deployment could reach, so the
//! ablation benches use it as a reference point.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use crate::effects::{AccessOutcome, Effects};
use crate::policies::{CachePolicy, RaidModel};
use crate::setassoc::{CacheGeometry, InsertOutcome, PageState, SetAssocCache};
use crate::stats::CacheStats;
use kdd_trace::record::Op;

/// Write-back SSD cache (dirty pages flushed on eviction).
#[derive(Debug, Clone)]
pub struct WriteBack {
    cache: SetAssocCache,
    raid: RaidModel,
    stats: CacheStats,
}

impl WriteBack {
    /// Build over `geometry` with stripe-aligned set grouping.
    pub fn new(geometry: CacheGeometry, raid: RaidModel) -> Self {
        let grouping = raid.set_grouping();
        WriteBack {
            cache: SetAssocCache::new_grouped(geometry, grouping),
            raid,
            stats: CacheStats::default(),
        }
    }

    /// Insert `lba`, writing back a dirty victim if one is evicted.
    fn insert(&mut self, lba: u64, state: PageState, fx: &mut Effects) {
        match self.cache.insert(lba, state, |s| matches!(s, PageState::Clean | PageState::Dirty)) {
            InsertOutcome::Inserted { .. } => {}
            InsertOutcome::Evicted { victim_state, .. } => {
                self.stats.evictions += 1;
                if victim_state == PageState::Dirty {
                    // Flushing the victim is on the critical path: the slot
                    // cannot be reused before its data is safe.
                    *fx += self.raid.small_write_effects();
                }
            }
            // Impossible while Clean and Dirty both evict; if the accounting
            // ever breaks, degrade to a no-fill insert.
            InsertOutcome::NoRoom => debug_assert!(false, "WB pages are always evictable"),
        }
        fx.ssd_data_writes += 1;
    }
}

impl CachePolicy for WriteBack {
    fn name(&self) -> String {
        "WB".to_string()
    }

    fn access(&mut self, op: Op, lba: u64) -> AccessOutcome {
        let mut fx = Effects::default();
        let hit = match (op, self.cache.lookup(lba)) {
            (Op::Read, Some(slot)) => {
                self.cache.touch(slot);
                fx += Effects::ssd_read();
                true
            }
            (Op::Read, None) => {
                fx += self.raid.read_effects();
                self.insert(lba, PageState::Clean, &mut fx);
                false
            }
            (Op::Write, Some(slot)) => {
                self.cache.touch(slot);
                self.cache.set_state(slot, PageState::Dirty);
                fx.ssd_data_writes += 1;
                true // no RAID I/O at all — the whole point of write-back
            }
            (Op::Write, None) => {
                self.insert(lba, PageState::Dirty, &mut fx);
                false
            }
        };
        let outcome = AccessOutcome::new(hit, fx);
        self.stats.record(op == Op::Read, &outcome);
        outcome
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn flush(&mut self) -> Effects {
        // Write back every dirty page (shutdown / barrier).
        let dirty: Vec<u32> = self
            .cache
            .iter_mapped()
            .filter(|&(_, _, s)| s == PageState::Dirty)
            .map(|(slot, _, _)| slot)
            .collect();
        let mut fx = Effects::default();
        for slot in dirty {
            fx += self.raid.small_write_effects();
            self.cache.set_state(slot, PageState::Clean);
            self.stats.raid_reads += self.raid.small_write_effects().raid_reads as u64;
            self.stats.raid_writes += self.raid.small_write_effects().raid_writes as u64;
        }
        fx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb(pages: u64) -> WriteBack {
        WriteBack::new(
            CacheGeometry { total_pages: pages, ways: 8.min(pages as u32), page_size: 4096 },
            RaidModel::paper_default(100_000),
        )
    }

    #[test]
    fn write_hit_touches_no_raid() {
        let mut p = wb(64);
        p.access(Op::Write, 1);
        let w = p.access(Op::Write, 1);
        assert!(w.hit);
        assert_eq!(w.foreground.raid_writes, 0);
        assert_eq!(w.foreground.ssd_data_writes, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut p = wb(8); // 1 set × 8 ways
        for lba in 0..8 {
            p.access(Op::Write, lba);
        }
        // The 9th write must evict a dirty page → RAID small write.
        let w = p.access(Op::Write, 100);
        assert!(w.foreground.raid_writes >= 2, "victim write-back missing");
    }

    #[test]
    fn flush_cleans_all_dirty() {
        let mut p = wb(64);
        // Spread across stripe groups so no set overflows.
        for i in 0..10 {
            p.access(Op::Write, i * 64);
        }
        let fx = p.flush();
        assert_eq!(fx.raid_writes, 10 * 2);
        // Second flush has nothing to do.
        assert_eq!(p.flush(), Effects::default());
    }
}
