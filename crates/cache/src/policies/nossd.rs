//! The no-cache baseline ("Nossd" in Figure 9/10): every request goes
//! straight to the RAID array.

use crate::effects::{AccessOutcome, Effects};
use crate::policies::{CachePolicy, RaidModel};
use crate::stats::CacheStats;
use kdd_trace::record::Op;

/// RAID with no SSD cache at all.
#[derive(Debug, Clone)]
pub struct Nossd {
    raid: RaidModel,
    stats: CacheStats,
}

impl Nossd {
    /// Create the baseline over the given array geometry.
    pub fn new(raid: RaidModel) -> Self {
        Nossd { raid, stats: CacheStats::default() }
    }
}

impl CachePolicy for Nossd {
    fn name(&self) -> String {
        "Nossd".to_string()
    }

    fn access(&mut self, op: Op, _lba: u64) -> AccessOutcome {
        let fx = match op {
            Op::Read => self.raid.read_effects(),
            Op::Write => self.raid.small_write_effects(),
        };
        let outcome = AccessOutcome::new(false, fx);
        self.stats.record(op == Op::Read, &outcome);
        outcome
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn flush(&mut self) -> Effects {
        Effects::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_hits_never_touches_ssd() {
        let mut p = Nossd::new(RaidModel::paper_default(1000));
        let r = p.access(Op::Read, 5);
        assert!(!r.hit);
        assert_eq!(r.foreground.ssd_reads, 0);
        assert_eq!(r.foreground.raid_reads, 1);
        let w = p.access(Op::Write, 5);
        assert_eq!(w.foreground.raid_reads, 2);
        assert_eq!(w.foreground.raid_writes, 2);
        assert_eq!(p.stats().hit_ratio(), 0.0);
        assert_eq!(p.stats().ssd_writes_pages(), 0);
    }
}
