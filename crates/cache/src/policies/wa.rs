//! Write-around caching (WA).
//!
//! Writes bypass the SSD entirely (invalidating any cached copy to keep
//! the cache coherent); only read misses allocate. This gives the fewest
//! SSD writes of any policy (Figures 6/8/11's lower envelope) at the cost
//! of no write acceleration at all.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use crate::effects::{AccessOutcome, Effects};
use crate::policies::{CachePolicy, RaidModel};
use crate::setassoc::{CacheGeometry, InsertOutcome, PageState, SetAssocCache};
use crate::stats::CacheStats;
use kdd_trace::record::Op;

/// Read-allocate cache; writes go around it.
#[derive(Debug, Clone)]
pub struct WriteAround {
    cache: SetAssocCache,
    raid: RaidModel,
    stats: CacheStats,
}

impl WriteAround {
    /// Build over `geometry` with stripe-aligned set grouping.
    pub fn new(geometry: CacheGeometry, raid: RaidModel) -> Self {
        let grouping = raid.set_grouping();
        WriteAround {
            cache: SetAssocCache::new_grouped(geometry, grouping),
            raid,
            stats: CacheStats::default(),
        }
    }
}

impl CachePolicy for WriteAround {
    fn name(&self) -> String {
        "WA".to_string()
    }

    fn access(&mut self, op: Op, lba: u64) -> AccessOutcome {
        let mut fx = Effects::default();
        let hit = match (op, self.cache.lookup(lba)) {
            (Op::Read, Some(slot)) => {
                self.cache.touch(slot);
                fx += Effects::ssd_read();
                true
            }
            (Op::Read, None) => {
                fx += self.raid.read_effects();
                match self.cache.insert(lba, PageState::Clean, |s| s == PageState::Clean) {
                    InsertOutcome::Evicted { .. } => self.stats.evictions += 1,
                    InsertOutcome::Inserted { .. } => {}
                    // Impossible while every resident page is Clean; if the
                    // accounting ever breaks, degrade to a no-fill miss.
                    InsertOutcome::NoRoom => debug_assert!(false, "WA pages are always evictable"),
                }
                fx.ssd_data_writes += 1;
                false
            }
            (Op::Write, cached) => {
                // The write bypasses the cache; a cached copy would go
                // stale, so invalidate it (no SSD traffic — just a trim).
                if let Some(slot) = cached {
                    self.cache.free_slot(slot);
                    self.stats.evictions += 1;
                }
                fx += self.raid.small_write_effects();
                false // writes never count as cache hits in WA
            }
        };
        let outcome = AccessOutcome::new(hit, fx);
        self.stats.record(op == Op::Read, &outcome);
        outcome
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn flush(&mut self) -> Effects {
        Effects::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wa(pages: u64) -> WriteAround {
        WriteAround::new(
            CacheGeometry { total_pages: pages, ways: 8.min(pages as u32), page_size: 4096 },
            RaidModel::paper_default(100_000),
        )
    }

    #[test]
    fn writes_never_allocate() {
        let mut p = wa(64);
        for lba in 0..20 {
            let w = p.access(Op::Write, lba);
            assert!(!w.hit);
            assert_eq!(w.foreground.ssd_data_writes, 0, "write must bypass SSD");
        }
        assert_eq!(p.stats().ssd_writes_pages(), 0);
    }

    #[test]
    fn write_invalidates_cached_copy() {
        let mut p = wa(64);
        p.access(Op::Read, 3); // fills
        let h = p.access(Op::Read, 3);
        assert!(h.hit);
        p.access(Op::Write, 3); // invalidates
        let m = p.access(Op::Read, 3);
        assert!(!m.hit, "stale copy must have been dropped");
    }

    #[test]
    fn only_read_misses_write_ssd() {
        let mut p = wa(64);
        p.access(Op::Read, 1);
        p.access(Op::Read, 2);
        p.access(Op::Read, 1); // hit
        p.access(Op::Write, 9);
        assert_eq!(p.stats().ssd_writes_pages(), 2, "two read fills only");
    }
}
