//! The cache-policy trait and its baseline implementations.
//!
//! Each policy is an accounting machine over the shared
//! [`SetAssocCache`](crate::setassoc::SetAssocCache) directory: it tracks
//! exactly which pages are cached in which state, and reports the device
//! operations each request implies. The RAID side is costed through
//! [`RaidModel`], which knows the array geometry (so a "small write" costs
//! 2 reads + 2 writes on RAID-5, 3 + 3 on RAID-6).

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

mod leavo;
mod nossd;
mod wa;
mod wb;
mod wt;

pub use leavo::LeavO;
pub use nossd::Nossd;
pub use wa::WriteAround;
pub use wb::WriteBack;
pub use wt::WriteThrough;

use crate::effects::{AccessOutcome, Effects};
use crate::setassoc::SetGrouping;
use crate::stats::CacheStats;
use kdd_raid::layout::{Layout, RaidLevel};
use kdd_trace::record::{Op, Trace};
use kdd_util::hash::{FastMap, FastSet};

/// A caching policy in front of parity RAID.
pub trait CachePolicy {
    /// Policy name as it appears in the figures (e.g. "WT", "KDD-25%").
    fn name(&self) -> String;

    /// Process one page-granular request.
    fn access(&mut self, op: Op, lba: u64) -> AccessOutcome;

    /// Cumulative statistics.
    fn stats(&self) -> &CacheStats;

    /// Flush buffered state (metadata buffers, pending parity updates) —
    /// end of run or an explicit idle period. Returns the work performed.
    fn flush(&mut self) -> Effects;

    /// The system has been idle for a while: §III-D wakes the cleaning
    /// thread on idleness as well as on thresholds. Policies with delayed
    /// parity do a bounded batch of repairs; others no-op. Returns the
    /// background work performed.
    fn idle_tick(&mut self) -> Effects {
        Effects::default()
    }

    /// Drive a whole trace through the policy (requests expanded to
    /// page granularity), flushing at the end.
    fn run_trace(&mut self, trace: &Trace) {
        for r in &trace.records {
            for lba in r.pages() {
                self.access(r.op, lba);
            }
        }
        self.flush();
    }
}

/// RAID-side cost model shared by the policies.
#[derive(Debug, Clone, Copy)]
pub struct RaidModel {
    /// Array geometry.
    pub layout: Layout,
}

impl RaidModel {
    /// A 5-disk RAID-5 with 64 KiB chunks over 4 KiB pages — the paper's
    /// prototype configuration (§IV-B1) — sized to cover `data_pages`.
    pub fn paper_default(data_pages: u64) -> Self {
        let chunk_pages = 16; // 64 KiB / 4 KiB
        let data_disks = 4u64;
        let disk_pages = (data_pages.div_ceil(data_disks).div_ceil(chunk_pages) + 1) * chunk_pages;
        RaidModel { layout: Layout::new(RaidLevel::Raid5, 5, chunk_pages, disk_pages) }
    }

    /// Parity units per stripe (1 for RAID-5, 2 for RAID-6).
    pub fn parity_count(&self) -> u32 {
        self.layout.level.parity_count() as u32
    }

    /// Effects of reading one page from the array.
    pub fn read_effects(&self) -> Effects {
        Effects { raid_reads: 1, raid_rounds: 1, ..Default::default() }
    }

    /// Effects of a conventional small write (data + full parity update),
    /// choosing read-modify-write or reconstruct-write by read count, as
    /// the array itself does.
    pub fn small_write_effects(&self) -> Effects {
        if self.layout.level == RaidLevel::Raid0 {
            return Effects { raid_writes: 1, raid_rounds: 1, ..Default::default() };
        }
        let pc = self.parity_count();
        let rmw_reads = 1 + pc; // old data + old parity unit(s)
        let recon_reads = self.layout.data_disks() as u32 - 1;
        let reads = rmw_reads.min(recon_reads);
        Effects {
            raid_reads: reads,
            raid_writes: 1 + pc,
            raid_rounds: 2, // read round then write round
            ..Default::default()
        }
    }

    /// Effects of `write_no_parity_update`: one member write.
    pub fn data_write_effects(&self) -> Effects {
        Effects { raid_writes: 1, raid_rounds: 1, ..Default::default() }
    }

    /// Effects of repairing one stale row: reconstruct-write (all data in
    /// cache → just write parity) or read-modify-write (read stale parity,
    /// fold deltas, write).
    pub fn parity_update_effects(&self, reconstruct: bool) -> Effects {
        let pc = self.parity_count();
        if reconstruct {
            Effects { raid_writes: pc, raid_rounds: 1, ..Default::default() }
        } else {
            Effects { raid_reads: pc, raid_writes: pc, raid_rounds: 2, ..Default::default() }
        }
    }

    /// Parity row of a page.
    pub fn row_of(&self, lba: u64) -> u64 {
        self.layout.row_of(lba % self.layout.capacity_pages())
    }

    /// Parity stripe of a page (chunk-granular width in pages).
    pub fn stripe_pages(&self) -> u64 {
        self.layout.chunk_pages * self.layout.data_disks() as u64
    }

    /// The cache-set grouping §III-B prescribes: co-locate the pages the
    /// cleaner reclaims together (one parity row per group).
    pub fn set_grouping(&self) -> SetGrouping {
        SetGrouping::ParityRow {
            chunk_pages: self.layout.chunk_pages,
            data_disks: self.layout.data_disks() as u64,
        }
    }

    /// The logical pages a row protects.
    pub fn row_lpns(&self, row: u64) -> Vec<u64> {
        self.layout.row_lpns(row)
    }
}

/// Tracks which rows have pending (delayed) parity and which pages of
/// each row are involved — shared by LeavO and KDD. Rows are kept in
/// least-recently-*written* order so the cleaner works coldest-first
/// (§III-D's premise that "the victim pages are commonly cold"): every
/// write to a row refreshes its position.
#[derive(Debug, Clone, Default)]
pub struct PendingRows {
    rows: FastMap<u64, FastSet<u64>>,
    /// Queue of (row, generation); stale generations are skipped lazily.
    order: std::collections::VecDeque<(u64, u64)>,
    /// Current generation per row (bumped on every write).
    touch: FastMap<u64, u64>,
    gen: u64,
    pages: u64,
}

impl PendingRows {
    /// Record that `lba` (in `row`) has a pending parity update; refreshes
    /// the row's recency either way.
    pub fn add(&mut self, row: u64, lba: u64) {
        let entry = self.rows.entry(row).or_default();
        if entry.insert(lba) {
            self.pages += 1;
        }
        self.gen += 1;
        self.touch.insert(row, self.gen);
        self.order.push_back((row, self.gen));
    }

    /// The least-recently-written pending row, if any.
    pub fn oldest_row(&mut self) -> Option<u64> {
        while let Some(&(row, gen)) = self.order.front() {
            if self.rows.contains_key(&row) && self.touch.get(&row) == Some(&gen) {
                return Some(row);
            }
            self.order.pop_front(); // superseded or already taken
        }
        None
    }

    /// Whether any page of `row` is pending.
    pub fn contains_row(&self, row: u64) -> bool {
        self.rows.contains_key(&row)
    }

    /// Whether `lba` specifically is pending.
    pub fn contains(&self, row: u64, lba: u64) -> bool {
        self.rows.get(&row).is_some_and(|s| s.contains(&lba))
    }

    /// Remove one page from a row's pending set (e.g. it degraded to a
    /// write-through update); drops the row when it empties.
    pub fn remove(&mut self, row: u64, lba: u64) -> bool {
        let Some(set) = self.rows.get_mut(&row) else { return false };
        let removed = set.remove(&lba);
        if removed {
            self.pages -= 1;
            if set.is_empty() {
                self.rows.remove(&row);
            }
        }
        removed
    }

    /// Remove a whole row, returning its pending pages.
    pub fn take_row(&mut self, row: u64) -> Vec<u64> {
        match self.rows.remove(&row) {
            Some(set) => {
                self.touch.remove(&row);
                self.pages -= set.len() as u64;
                set.into_iter().collect()
            }
            None => Vec::new(),
        }
    }

    /// Number of distinct pending pages.
    pub fn pending_pages(&self) -> u64 {
        self.pages
    }

    /// Number of pending rows.
    pub fn pending_rows(&self) -> usize {
        self.rows.len()
    }

    /// Snapshot of pending row ids.
    pub fn row_ids(&self) -> Vec<u64> {
        self.rows.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_5disk_raid5() {
        let m = RaidModel::paper_default(1_000_000);
        assert_eq!(m.layout.disks, 5);
        assert_eq!(m.layout.level, RaidLevel::Raid5);
        assert!(m.layout.capacity_pages() >= 1_000_000);
        assert_eq!(m.stripe_pages(), 64);
    }

    #[test]
    fn small_write_is_2r2w_on_raid5() {
        let m = RaidModel::paper_default(10_000);
        let e = m.small_write_effects();
        assert_eq!(e.raid_reads, 2);
        assert_eq!(e.raid_writes, 2);
        assert_eq!(e.raid_rounds, 2);
    }

    #[test]
    fn small_write_reconstruct_wins_on_3_disks() {
        let m = RaidModel { layout: Layout::new(RaidLevel::Raid5, 3, 16, 160) };
        let e = m.small_write_effects();
        assert_eq!(e.raid_reads, 1, "3-disk RAID5 should reconstruct");
        assert_eq!(e.raid_writes, 2);
    }

    #[test]
    fn parity_update_costs() {
        let m = RaidModel::paper_default(10_000);
        let recon = m.parity_update_effects(true);
        assert_eq!(recon.raid_reads, 0);
        assert_eq!(recon.raid_writes, 1);
        let rmw = m.parity_update_effects(false);
        assert_eq!(rmw.raid_reads, 1);
        assert_eq!(rmw.raid_writes, 1);
    }

    #[test]
    fn pending_rows_bookkeeping() {
        let mut p = PendingRows::default();
        p.add(3, 100);
        p.add(3, 101);
        p.add(3, 100); // duplicate
        p.add(9, 7);
        assert_eq!(p.pending_pages(), 3);
        assert_eq!(p.pending_rows(), 2);
        assert!(p.contains_row(3));
        assert!(p.contains(3, 101));
        assert!(!p.contains(3, 999));
        let mut got = p.take_row(3);
        got.sort_unstable();
        assert_eq!(got, vec![100, 101]);
        assert_eq!(p.pending_pages(), 1);
        assert!(p.take_row(3).is_empty());
    }
}
