//! Write-through caching (WT).
//!
//! The production-default policy the paper compares against (§II-B):
//! every write goes to both the cache and the RAID (with its full parity
//! update), so an SSD failure loses nothing — but every small write still
//! pays the parity penalty, and every write is an SSD program.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use crate::effects::{AccessOutcome, Effects};
use crate::policies::{CachePolicy, RaidModel};
use crate::setassoc::{CacheGeometry, InsertOutcome, PageState, SetAssocCache};
use crate::stats::CacheStats;
use kdd_trace::record::Op;

/// Write-allocate, write-through SSD cache.
#[derive(Debug, Clone)]
pub struct WriteThrough {
    cache: SetAssocCache,
    raid: RaidModel,
    stats: CacheStats,
}

impl WriteThrough {
    /// Build over `geometry`, grouped by the RAID's stripe size so all
    /// policies share identical set placement.
    pub fn new(geometry: CacheGeometry, raid: RaidModel) -> Self {
        let grouping = raid.set_grouping();
        WriteThrough {
            cache: SetAssocCache::new_grouped(geometry, grouping),
            raid,
            stats: CacheStats::default(),
        }
    }

    fn fill(&mut self, lba: u64, fx: &mut Effects) {
        match self.cache.insert(lba, PageState::Clean, |s| s == PageState::Clean) {
            InsertOutcome::Inserted { .. } => {}
            InsertOutcome::Evicted { .. } => self.stats.evictions += 1,
            // Impossible while every resident page is Clean; if the
            // accounting ever breaks, degrade to a no-fill miss.
            InsertOutcome::NoRoom => debug_assert!(false, "WT pages are always evictable"),
        }
        fx.ssd_data_writes += 1;
    }
}

impl CachePolicy for WriteThrough {
    fn name(&self) -> String {
        "WT".to_string()
    }

    fn access(&mut self, op: Op, lba: u64) -> AccessOutcome {
        let mut fx = Effects::default();
        let hit = match (op, self.cache.lookup(lba)) {
            (Op::Read, Some(slot)) => {
                self.cache.touch(slot);
                fx += Effects::ssd_read();
                true
            }
            (Op::Read, None) => {
                fx += self.raid.read_effects();
                self.fill(lba, &mut fx);
                false
            }
            (Op::Write, Some(slot)) => {
                self.cache.touch(slot);
                fx.ssd_data_writes += 1; // in-place update of the cached copy
                fx += self.raid.small_write_effects();
                true
            }
            (Op::Write, None) => {
                self.fill(lba, &mut fx);
                fx += self.raid.small_write_effects();
                false
            }
        };
        let outcome = AccessOutcome::new(hit, fx);
        self.stats.record(op == Op::Read, &outcome);
        outcome
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn flush(&mut self) -> Effects {
        Effects::default() // nothing buffered: all writes already on RAID
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wt(pages: u64) -> WriteThrough {
        WriteThrough::new(
            CacheGeometry { total_pages: pages, ways: 8.min(pages as u32), page_size: 4096 },
            RaidModel::paper_default(100_000),
        )
    }

    #[test]
    fn read_miss_fills_then_hits() {
        let mut p = wt(64);
        let m = p.access(Op::Read, 10);
        assert!(!m.hit);
        assert_eq!(m.foreground.raid_reads, 1);
        assert_eq!(m.foreground.ssd_data_writes, 1, "read fill");
        let h = p.access(Op::Read, 10);
        assert!(h.hit);
        assert_eq!(h.foreground.ssd_reads, 1);
        assert_eq!(h.foreground.raid_reads, 0);
    }

    #[test]
    fn every_write_pays_parity() {
        let mut p = wt(64);
        let w1 = p.access(Op::Write, 5);
        assert!(!w1.hit);
        assert_eq!(w1.foreground.raid_writes, 2);
        let w2 = p.access(Op::Write, 5);
        assert!(w2.hit, "second write hits");
        assert_eq!(w2.foreground.raid_writes, 2, "but still updates parity");
        assert_eq!(w2.foreground.ssd_data_writes, 1, "and rewrites the SSD copy");
    }

    #[test]
    fn eviction_under_pressure() {
        let mut p = wt(8);
        for lba in 0..1000 {
            p.access(Op::Read, lba);
        }
        assert!(p.stats().evictions > 0);
        assert_eq!(p.stats().read_misses, 1000);
    }

    #[test]
    fn flush_is_noop() {
        let mut p = wt(8);
        p.access(Op::Write, 1);
        assert_eq!(p.flush(), Effects::default());
    }
}
