//! LeavO (Lee, Oh & Lee, SAC'15) — the prior delayed-parity baseline.
//!
//! LeavO also writes data to RAID without a parity update on write hits,
//! but instead of a compressed delta it keeps **both whole versions** of
//! the page in the SSD: the old copy (needed to repair parity later) and
//! the new copy. The paper's critique, which this implementation
//! reproduces faithfully (§II-B):
//!
//! * redundant versions consume cache space → lower hit ratios;
//! * the mapping metadata must be persisted to the SSD on every change,
//!   and entries are appended *uncoalesced* → extra metadata pages;
//! * together these make LeavO write **more** to the SSD than plain
//!   write-through, wearing the cache faster.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use crate::effects::{AccessOutcome, Effects};
use crate::nvbuf::MetadataBuffer;
use crate::policies::{CachePolicy, PendingRows, RaidModel};
use crate::setassoc::{CacheGeometry, InsertOutcome, PageState, SetAssocCache};
use crate::stats::CacheStats;
use kdd_trace::record::Op;
use kdd_util::hash::FastMap;

/// Fraction of cache slots occupied by pinned version pages that triggers
/// the cleaning thread. Parity maintenance is lazy — it runs on space
/// pressure and idle periods — so pinned versions are allowed to dominate
/// the cache (matches KDD's default so the comparison isolates *what* is
/// pinned, not how much).
const CLEAN_THRESHOLD: f64 = 0.90;

/// The LeavO policy.
#[derive(Debug, Clone)]
pub struct LeavO {
    cache: SetAssocCache,
    raid: RaidModel,
    meta: MetadataBuffer,
    pending: PendingRows,
    /// lba → slot holding its retained old version.
    old_versions: FastMap<u64, u32>,
    stats: CacheStats,
    clean_trigger_slots: u64,
}

impl LeavO {
    /// Build over `geometry` with stripe-aligned set grouping.
    pub fn new(geometry: CacheGeometry, raid: RaidModel) -> Self {
        let grouping = raid.set_grouping();
        let clean_trigger_slots = ((geometry.total_pages as f64 * CLEAN_THRESHOLD) as u64).max(4);
        LeavO {
            cache: SetAssocCache::new_grouped(geometry, grouping),
            raid,
            meta: MetadataBuffer::new(geometry.page_size, false),
            pending: PendingRows::default(),
            old_versions: FastMap::default(),
            stats: CacheStats::default(),
            clean_trigger_slots,
        }
    }

    fn push_meta(&mut self, key: u64, fx: &mut Effects) {
        fx.ssd_meta_writes += self.meta.push(key);
    }

    /// Repair all pending rows, freeing old versions and unpinning the
    /// current copies. Returns the work performed.
    fn clean_all(&mut self) -> Effects {
        let mut fx = Effects::default();
        for row in self.pending.row_ids() {
            // Reconstruct-write only if *every* data page of the row is in
            // cache with current content.
            let reconstruct =
                self.raid.row_lpns(row).iter().all(|&l| self.cache.lookup(l).is_some());
            fx += self.raid.parity_update_effects(reconstruct);
            self.stats.parity_updates += 1;
            for lba in self.pending.take_row(row) {
                if let Some(old_slot) = self.old_versions.remove(&lba) {
                    self.cache.free_slot(old_slot);
                    self.push_meta(lba.wrapping_add(1 << 62), &mut fx);
                }
                if let Some(slot) = self.cache.lookup(lba) {
                    if self.cache.state(slot) == PageState::Dirty {
                        self.cache.set_state(slot, PageState::Clean);
                    }
                }
            }
        }
        self.stats.cleanings += 1;
        fx
    }

    fn maybe_clean(&mut self, bg: &mut Effects) {
        // Each pending page pins two slots (old + current).
        if self.pending.pending_pages() * 2 >= self.clean_trigger_slots {
            *bg += self.clean_all();
        }
    }

    /// Insert with cleaning fallback; returns false if the page had to
    /// bypass the cache entirely.
    fn insert_or_bypass(
        &mut self,
        lba: u64,
        state: PageState,
        fx: &mut Effects,
        bg: &mut Effects,
    ) -> bool {
        for attempt in 0..2 {
            match self.cache.insert(lba, state, |s| s == PageState::Clean) {
                InsertOutcome::Inserted { .. } => return true,
                InsertOutcome::Evicted { victim_lba, .. } => {
                    self.stats.evictions += 1;
                    self.push_meta(victim_lba, fx);
                    return true;
                }
                InsertOutcome::NoRoom => {
                    if attempt == 0 {
                        *bg += self.clean_all();
                    } else {
                        // Undo the speculative insert attempt state.
                        return false;
                    }
                }
            }
        }
        false
    }
}

impl CachePolicy for LeavO {
    fn name(&self) -> String {
        "LeavO".to_string()
    }

    fn access(&mut self, op: Op, lba: u64) -> AccessOutcome {
        let mut fx = Effects::default();
        let mut bg = Effects::default();
        let hit = match (op, self.cache.lookup(lba)) {
            (Op::Read, Some(slot)) => {
                self.cache.touch(slot);
                fx += Effects::ssd_read();
                true
            }
            (Op::Read, None) => {
                fx += self.raid.read_effects();
                if self.insert_or_bypass(lba, PageState::Clean, &mut fx, &mut bg) {
                    fx.ssd_data_writes += 1;
                    self.push_meta(lba, &mut fx);
                }
                false
            }
            (Op::Write, Some(slot)) => {
                let row = self.raid.row_of(lba);
                if self.pending.contains(row, lba) {
                    // Old version already retained: overwrite the current
                    // copy in place.
                    self.cache.touch(slot);
                    fx.ssd_data_writes += 1;
                    fx += self.raid.data_write_effects();
                    self.push_meta(lba, &mut fx);
                } else {
                    // First delayed write since the last parity update: the
                    // old copy stays on flash (no I/O), the new version is
                    // programmed to a fresh slot. We model this as: the
                    // mapped slot stays "current" (pinned Dirty until the
                    // parity repair) and an extra unmapped slot is consumed
                    // to represent the retained old version — the slot
                    // count and the SSD traffic are exactly LeavO's.
                    match self.cache.alloc_delta_slot() {
                        Some(extra) => {
                            self.cache.set_state(extra, PageState::OldVersion);
                            self.old_versions.insert(lba, extra);
                            self.cache.touch(slot);
                            self.cache.set_state(slot, PageState::Dirty);
                            fx.ssd_data_writes += 1; // program the new version
                            fx += self.raid.data_write_effects();
                            self.pending.add(row, lba);
                            self.push_meta(lba, &mut fx);
                        }
                        None => {
                            // No room to retain a version: degrade to a
                            // write-through update for this request.
                            self.cache.touch(slot);
                            fx.ssd_data_writes += 1;
                            fx += self.raid.small_write_effects();
                            self.push_meta(lba, &mut fx);
                        }
                    }
                    self.maybe_clean(&mut bg);
                }
                true
            }
            (Op::Write, None) => {
                // Conventional write miss: cache it and update parity.
                if self.insert_or_bypass(lba, PageState::Clean, &mut fx, &mut bg) {
                    fx.ssd_data_writes += 1;
                    self.push_meta(lba, &mut fx);
                }
                fx += self.raid.small_write_effects();
                false
            }
        };
        let mut outcome = AccessOutcome::new(hit, fx);
        outcome.background = bg;
        self.stats.record(op == Op::Read, &outcome);
        outcome
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn idle_tick(&mut self) -> Effects {
        let fx = self.clean_all();
        self.stats.ssd_meta_writes += fx.ssd_meta_writes as u64;
        self.stats.ssd_data_writes += fx.ssd_data_writes as u64;
        self.stats.raid_reads += fx.raid_reads as u64;
        self.stats.raid_writes += fx.raid_writes as u64;
        fx
    }

    fn flush(&mut self) -> Effects {
        let mut fx = self.clean_all();
        fx.ssd_meta_writes += self.meta.flush();
        // Account traffic without counting a request.
        self.stats.ssd_meta_writes += fx.ssd_meta_writes as u64;
        self.stats.ssd_data_writes += fx.ssd_data_writes as u64;
        self.stats.raid_reads += fx.raid_reads as u64;
        self.stats.raid_writes += fx.raid_writes as u64;
        fx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leavo(pages: u64) -> LeavO {
        LeavO::new(
            CacheGeometry { total_pages: pages, ways: 8.min(pages as u32), page_size: 4096 },
            RaidModel::paper_default(100_000),
        )
    }

    #[test]
    fn write_hit_skips_parity_but_keeps_two_versions() {
        let mut p = leavo(64);
        p.access(Op::Write, 5); // miss: conventional parity write
        let w = p.access(Op::Write, 5); // hit: delayed parity
        assert!(w.hit);
        assert_eq!(w.foreground.raid_writes, 1, "data only, no parity");
        assert_eq!(w.foreground.raid_reads, 0);
        assert_eq!(w.foreground.ssd_data_writes, 1, "new version programmed");
        // Two slots consumed for this lba now.
        assert_eq!(p.cache.count_state(PageState::OldVersion), 1);
        assert_eq!(p.cache.count_state(PageState::Dirty), 1);
        assert_eq!(p.pending.pending_pages(), 1);
    }

    #[test]
    fn repeated_write_hits_reuse_old_version() {
        let mut p = leavo(64);
        p.access(Op::Write, 5);
        p.access(Op::Write, 5);
        p.access(Op::Write, 5);
        p.access(Op::Write, 5);
        assert_eq!(p.cache.count_state(PageState::OldVersion), 1, "only one old version kept");
        assert_eq!(p.pending.pending_pages(), 1);
    }

    #[test]
    fn flush_repairs_parity_and_unpins() {
        let mut p = leavo(64);
        p.access(Op::Write, 5);
        p.access(Op::Write, 5);
        let fx = p.flush();
        assert!(fx.raid_writes >= 1, "parity repaired");
        assert_eq!(p.pending.pending_pages(), 0);
        assert_eq!(p.cache.count_state(PageState::OldVersion), 0);
        assert_eq!(p.cache.count_state(PageState::Dirty), 0);
        assert!(p.stats().parity_updates >= 1);
    }

    #[test]
    fn metadata_persisted_per_update() {
        let mut p = leavo(4096);
        // Enough distinct fills to overflow the 170-entry buffer.
        for lba in 0..200 {
            p.access(Op::Read, lba);
        }
        p.flush();
        assert!(p.stats().ssd_meta_writes >= 1, "metadata pages must be written");
    }

    #[test]
    fn writes_more_than_wt_under_rewrites() {
        // The paper's core critique: LeavO's SSD traffic exceeds WT's.
        use crate::policies::WriteThrough;
        let geom = CacheGeometry { total_pages: 256, ways: 8, page_size: 4096 };
        let raid = RaidModel::paper_default(100_000);
        let mut lv = LeavO::new(geom, raid);
        let mut wt = WriteThrough::new(geom, raid);
        // Read-heavy with a working set bigger than the cache, plus
        // rewrites: LeavO's version pages shrink its effective size.
        for round in 0..4 {
            for lba in 0..512u64 {
                lv.access(Op::Read, lba);
                wt.access(Op::Read, lba);
                if lba % 3 == round % 3 {
                    lv.access(Op::Write, lba);
                    wt.access(Op::Write, lba);
                }
            }
        }
        lv.flush();
        wt.flush();
        assert!(
            lv.stats().ssd_writes_pages() > wt.stats().ssd_writes_pages(),
            "LeavO {} should exceed WT {}",
            lv.stats().ssd_writes_pages(),
            wt.stats().ssd_writes_pages()
        );
        assert!(
            lv.stats().hit_ratio() <= wt.stats().hit_ratio() + 0.02,
            "LeavO hit {} vs WT {}",
            lv.stats().hit_ratio(),
            wt.stats().hit_ratio()
        );
    }

    #[test]
    fn cleaning_triggered_by_threshold() {
        let mut p = leavo(64); // trigger at 20% of 64 ≈ 12 slots ≈ 6 pending
        for lba in 0..32u64 {
            p.access(Op::Write, lba);
            p.access(Op::Write, lba); // make it pending
        }
        assert!(p.stats().cleanings > 0, "threshold cleaning never fired");
        // Pending set must stay bounded.
        assert!(p.pending.pending_pages() * 2 < 64);
    }
}
