//! Model-based property tests: the set-associative directory against a
//! per-set reference model, under arbitrary insert/touch/free/state
//! sequences.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use kdd_cache::setassoc::{CacheGeometry, InsertOutcome, PageState, SetAssocCache, SetGrouping};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Touch(u64),
    Free(u64),
    MarkOld(u64),
    AllocDelta,
}

fn ops(lbas: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..lbas).prop_map(Op::Insert),
        3 => (0..lbas).prop_map(Op::Touch),
        2 => (0..lbas).prop_map(Op::Free),
        1 => (0..lbas).prop_map(Op::MarkOld),
        1 => Just(Op::AllocDelta),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The directory's mapping, occupancy and eviction behaviour agree
    /// with a simple reference model at every step.
    #[test]
    fn directory_matches_model(
        ways in 2u32..8,
        sets_pow in 1u32..4,
        script in proptest::collection::vec(ops(256), 1..300),
    ) {
        let total = (ways as u64) << sets_pow;
        let g = CacheGeometry { total_pages: total, ways, page_size: 4096 };
        let mut cache = SetAssocCache::new_grouped(g, SetGrouping::Pages(1));
        // Model: lba -> state, plus per-set occupancy counts.
        let mut model: HashMap<u64, PageState> = HashMap::new();
        let mut delta_slots: Vec<u32> = Vec::new();

        for op in &script {
            match op {
                Op::Insert(lba) => {
                    if cache.lookup(*lba).is_some() {
                        continue; // double insert would panic by contract
                    }
                    match cache.insert(*lba, PageState::Clean, |s| s == PageState::Clean) {
                        InsertOutcome::Inserted { slot } => {
                            prop_assert_eq!(cache.tag(slot), Some(*lba));
                            model.insert(*lba, PageState::Clean);
                        }
                        InsertOutcome::Evicted { victim_lba, victim_state, .. } => {
                            prop_assert_eq!(victim_state, PageState::Clean, "only clean evictable");
                            prop_assert_eq!(model.remove(&victim_lba), Some(PageState::Clean));
                            model.insert(*lba, PageState::Clean);
                        }
                        InsertOutcome::NoRoom => {
                            // The set must indeed be saturated with
                            // non-evictable pages; verified via counts below.
                        }
                    }
                }
                Op::Touch(lba) => {
                    if let Some(slot) = cache.lookup(*lba) {
                        cache.touch(slot);
                    }
                }
                Op::Free(lba) => {
                    if let Some(slot) = cache.lookup(*lba) {
                        cache.free_slot(slot);
                        prop_assert!(model.remove(lba).is_some());
                    }
                }
                Op::MarkOld(lba) => {
                    if let Some(slot) = cache.lookup(*lba) {
                        if cache.state(slot) == PageState::Clean {
                            cache.set_state(slot, PageState::Old);
                            model.insert(*lba, PageState::Old);
                        }
                    }
                }
                Op::AllocDelta => {
                    if let Some(slot) = cache.alloc_delta_slot() {
                        prop_assert_eq!(cache.state(slot), PageState::Delta);
                        prop_assert_eq!(cache.tag(slot), None, "delta slots are unmapped");
                        delta_slots.push(slot);
                    }
                }
            }
            // Global invariants after every step.
            let occupied = model.len() + delta_slots.len();
            prop_assert_eq!(cache.free_slots(), total - occupied as u64);
        }

        // Final agreement: every model entry is cached with the right state.
        for (lba, state) in &model {
            let slot = cache.lookup(*lba).expect("model entry missing from cache");
            prop_assert_eq!(cache.state(slot), *state);
        }
        prop_assert_eq!(cache.count_state(PageState::Delta), delta_slots.len());
        prop_assert_eq!(
            cache.iter_mapped().count(),
            model.len(),
            "iter_mapped must cover exactly the mapped pages"
        );
    }

    /// Eviction order within one set is strict LRU over clean pages.
    #[test]
    fn eviction_is_lru(touch_order in proptest::collection::vec(0u64..6, 0..30)) {
        // One set of 6 ways; fill, apply touches, insert one more.
        let g = CacheGeometry { total_pages: 6, ways: 6, page_size: 4096 };
        let mut cache = SetAssocCache::new_grouped(g, SetGrouping::Pages(1));
        let mut recency: Vec<u64> = (0..6).collect(); // LRU .. MRU
        for lba in 0..6u64 {
            cache.insert(lba, PageState::Clean, |_| true);
        }
        for &lba in &touch_order {
            let slot = cache.lookup(lba).unwrap();
            cache.touch(slot);
            recency.retain(|&l| l != lba);
            recency.push(lba);
        }
        match cache.insert(100, PageState::Clean, |s| s == PageState::Clean) {
            InsertOutcome::Evicted { victim_lba, .. } => {
                prop_assert_eq!(victim_lba, recency[0], "victim must be the LRU page");
            }
            other => return Err(TestCaseError::fail(format!("expected eviction, got {other:?}"))),
        }
    }

    /// Parity-row grouping maps the members of every row to one set and
    /// remains a total function over the address space.
    #[test]
    fn row_grouping_consistent(chunk in 1u64..32, dd in 2u64..8, lba in 0u64..100_000) {
        let grouping = SetGrouping::ParityRow { chunk_pages: chunk, data_disks: dd };
        let g = CacheGeometry { total_pages: 1024, ways: 16, page_size: 4096 };
        let cache = SetAssocCache::new_grouped(g, grouping);
        let set = cache.set_of_lba(lba);
        prop_assert!(set < cache.sets());
        // All members of this page's row land in the same set.
        let stripe = lba / (chunk * dd);
        let offset = lba % chunk;
        for d in 0..dd {
            let member = (stripe * dd + d) * chunk + offset;
            prop_assert_eq!(cache.set_of_lba(member), set, "row member {} strays", member);
        }
    }
}
