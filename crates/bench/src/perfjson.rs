//! Perfbench trajectory documents.
//!
//! The JSON emitter/parser itself moved to [`kdd_obs::json`] so the
//! observability snapshots and the BENCH_*.json trajectory files share
//! one deterministic renderer; this module keeps the perfbench schema:
//! the `kdd-perfbench/v1` stamp, document validation, and run merging.
//! See EXPERIMENTS.md "Perf trajectory" for the schema.

pub use kdd_obs::json::{obj, parse, Json};

/// Schema identifier stamped into every perfbench file.
pub const SCHEMA: &str = "kdd-perfbench/v1";

/// Validate a perfbench trajectory document: schema stamp, `kind`, and at
/// least one run whose entries all carry a `name` plus finite numeric
/// metrics. Returns a list of problems (empty = valid).
pub fn validate(doc: &Json, expect_kind: &str) -> Vec<String> {
    let mut problems = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => problems.push(format!("schema: expected {SCHEMA:?}, got {other:?}")),
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some(k) if k == expect_kind => {}
        other => problems.push(format!("kind: expected {expect_kind:?}, got {other:?}")),
    }
    let Some(runs) = doc.get("runs").and_then(Json::as_arr) else {
        problems.push("runs: missing or not an array".to_string());
        return problems;
    };
    if runs.is_empty() {
        problems.push("runs: empty".to_string());
    }
    for (i, run) in runs.iter().enumerate() {
        if run.get("label").and_then(Json::as_str).is_none() {
            problems.push(format!("runs[{i}].label: missing"));
        }
        let Some(entries) = run.get("entries").and_then(Json::as_arr) else {
            problems.push(format!("runs[{i}].entries: missing or not an array"));
            continue;
        };
        if entries.is_empty() {
            problems.push(format!("runs[{i}].entries: empty"));
        }
        for (j, e) in entries.iter().enumerate() {
            if e.get("name").and_then(Json::as_str).is_none() {
                problems.push(format!("runs[{i}].entries[{j}].name: missing"));
            }
            let Json::Obj(fields) = e else {
                problems.push(format!("runs[{i}].entries[{j}]: not an object"));
                continue;
            };
            let mut metrics = 0;
            for (k, v) in fields {
                if k == "name" {
                    continue;
                }
                match v.as_f64() {
                    Some(n) if n.is_finite() => metrics += 1,
                    _ => problems.push(format!("runs[{i}].entries[{j}].{k}: not a finite number")),
                }
            }
            if metrics == 0 {
                problems.push(format!("runs[{i}].entries[{j}]: no numeric metrics"));
            }
        }
    }
    problems
}

/// Merge `run` into `doc`'s `runs` array, replacing any run with the same
/// label. Creates the document scaffolding if `doc` is `None`.
pub fn merge_run(doc: Option<Json>, kind: &str, page_size: u32, run: Json) -> Json {
    let mut doc = match doc {
        Some(d @ Json::Obj(_)) => d,
        _ => obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("kind", Json::Str(kind.to_string())),
            ("page_size", Json::Num(f64::from(page_size))),
            ("runs", Json::Arr(Vec::new())),
        ]),
    };
    let label = run.get("label").and_then(Json::as_str).unwrap_or("current").to_string();
    if let Json::Obj(map) = &mut doc {
        let runs = map.entry("runs".to_string()).or_insert_with(|| Json::Arr(Vec::new()));
        if let Some(list) = runs.as_arr_mut() {
            list.retain(|r| r.get("label").and_then(Json::as_str) != Some(label.as_str()));
            list.push(run);
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_render_and_parse() {
        let doc = obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("kind", Json::Str("kernels".to_string())),
            ("page_size", Json::Num(4096.0)),
            (
                "runs",
                Json::Arr(vec![obj(vec![
                    ("label", Json::Str("before".to_string())),
                    (
                        "entries",
                        Json::Arr(vec![obj(vec![
                            ("name", Json::Str("xor_4k".to_string())),
                            ("ns_per_iter", Json::Num(161.25)),
                            ("mb_per_s", Json::Num(25403.0)),
                        ])]),
                    ),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("parse");
        assert_eq!(back, doc);
        assert!(validate(&back, "kernels").is_empty(), "{:?}", validate(&back, "kernels"));
    }

    #[test]
    fn validate_catches_problems() {
        let doc = parse(r#"{"schema":"nope","kind":"kernels","runs":[]}"#).expect("parse");
        let probs = validate(&doc, "engine");
        assert!(probs.iter().any(|p| p.contains("schema")));
        assert!(probs.iter().any(|p| p.contains("kind")));
        assert!(probs.iter().any(|p| p.contains("empty")));
    }

    #[test]
    fn merge_replaces_same_label() {
        let run_a =
            obj(vec![("label", Json::Str("before".to_string())), ("entries", Json::Arr(vec![]))]);
        let run_b = obj(vec![
            ("label", Json::Str("before".to_string())),
            (
                "entries",
                Json::Arr(vec![obj(vec![
                    ("name", Json::Str("x".to_string())),
                    ("v", Json::Num(1.0)),
                ])]),
            ),
        ]);
        let doc = merge_run(None, "kernels", 4096, run_a);
        let doc = merge_run(Some(doc), "kernels", 4096, run_b);
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
        assert_eq!(runs.len(), 1);
        let first = runs.first().expect("one run");
        assert_eq!(first.get("entries").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
    }
}
