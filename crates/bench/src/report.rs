//! Uniform experiment rows and table rendering.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};

/// One data point of one figure/table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Experiment id ("table1", "fig5", "ablation_zoning", ...).
    pub experiment: String,
    /// Workload name ("Fin1", "fio", ...).
    pub workload: String,
    /// Meaning of `x` ("cache_kpages", "read_rate", "partition_pct", ...).
    pub x_label: String,
    /// Sweep coordinate.
    pub x: f64,
    /// Policy / variant name.
    pub policy: String,
    /// Named metrics for this point.
    pub metrics: Vec<(String, f64)>,
}

impl Row {
    /// Construct a row.
    pub fn new(
        experiment: &str,
        workload: &str,
        x_label: &str,
        x: f64,
        policy: &str,
        metrics: Vec<(&str, f64)>,
    ) -> Row {
        Row {
            experiment: experiment.into(),
            workload: workload.into(),
            x_label: x_label.into(),
            x,
            policy: policy.into(),
            metrics: metrics.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// Fetch a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// Render rows as aligned text tables, grouped by (experiment, workload).
pub fn print_rows(rows: &[Row]) {
    let mut i = 0;
    while i < rows.len() {
        let exp = &rows[i].experiment;
        let wl = &rows[i].workload;
        let group_end = rows[i..]
            .iter()
            .position(|r| &r.experiment != exp || &r.workload != wl)
            .map(|p| i + p)
            .unwrap_or(rows.len());
        let group = &rows[i..group_end];
        println!("\n== {} / {} ==", exp, wl);
        // Header from the first row's metrics.
        print!("{:<10} {:>12}", "policy", group[0].x_label);
        for (k, _) in &group[0].metrics {
            print!(" {:>16}", k);
        }
        println!();
        for r in group {
            print!("{:<10} {:>12.4}", r.policy, r.x);
            for (_, v) in &r.metrics {
                print!(" {:>16.4}", v);
            }
            println!();
        }
        i = group_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_lookup() {
        let r = Row::new("fig5", "Fin1", "cache", 1.0, "WT", vec![("hit", 0.5), ("mib", 12.0)]);
        assert_eq!(r.metric("hit"), Some(0.5));
        assert_eq!(r.metric("nope"), None);
    }

    #[test]
    fn printing_does_not_panic() {
        let rows = vec![
            Row::new("fig5", "Fin1", "cache", 1.0, "WT", vec![("hit", 0.5)]),
            Row::new("fig5", "Fin1", "cache", 2.0, "WT", vec![("hit", 0.6)]),
            Row::new("fig5", "Hm0", "cache", 1.0, "KDD-25%", vec![("hit", 0.4)]),
        ];
        print_rows(&rows);
    }
}
