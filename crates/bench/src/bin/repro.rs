//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro all                         # everything, default scale (100)
//! repro fig6 fig9 --scale 50        # selected experiments, bigger run
//! repro table1 --json out.json      # machine-readable rows
//! ```
//!
//! Scale divides the Table I workload sizes (and the FIO volume);
//! `--scale 1` is the paper's full workload.

use kdd_bench::{
    ablation_admission, ablation_desmodel, ablation_metalog, ablation_raid6, ablation_reclaim,
    ablation_setmap, ablation_zoning, fig10, fig11, fig4, fig5, fig6, fig7, fig8, fig9, print_rows,
    table1, table2, ExpConfig, Row,
};

const ALL: [&str; 17] = [
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
    "ablation_zoning",
    "ablation_reclaim",
    "ablation_metalog",
    "ablation_setmap",
    "ablation_admission",
    "ablation_raid6",
    "ablation_desmodel",
];

fn run(name: &str, cfg: &ExpConfig) -> Vec<Row> {
    match name {
        "table1" => table1(cfg),
        "table2" => table2(cfg),
        "fig4" => fig4(cfg),
        "fig5" => fig5(cfg),
        "fig6" => fig6(cfg),
        "fig7" => fig7(cfg),
        "fig8" => fig8(cfg),
        "fig9" => fig9(cfg),
        "fig10" => fig10(cfg),
        "fig11" => fig11(cfg),
        "ablation_zoning" => ablation_zoning(cfg),
        "ablation_reclaim" => ablation_reclaim(cfg),
        "ablation_metalog" => ablation_metalog(cfg),
        "ablation_setmap" => ablation_setmap(cfg),
        "ablation_admission" => ablation_admission(cfg),
        "ablation_raid6" => ablation_raid6(cfg),
        "ablation_desmodel" => ablation_desmodel(cfg),
        other => {
            eprintln!("unknown experiment {other:?}; known: all {ALL:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut cfg = ExpConfig::default();
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                cfg.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42);
            }
            "--json" => json_path = it.next(),
            "all" => experiments.extend(ALL.iter().map(|s| s.to_string())),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!("usage: repro <all|{}> [--scale N] [--seed N] [--json FILE]", ALL.join("|"));
        std::process::exit(2);
    }

    let mut all_rows = Vec::new();
    for name in &experiments {
        eprintln!("running {name} (scale 1/{}) ...", cfg.scale);
        let t0 = std::time::Instant::now();
        let rows = run(name, &cfg);
        eprintln!("  {} rows in {:.1}s", rows.len(), t0.elapsed().as_secs_f64());
        print_rows(&rows);
        all_rows.extend(rows);
    }
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_rows).expect("serialise rows");
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {} rows to {path}", all_rows.len());
    }
}
