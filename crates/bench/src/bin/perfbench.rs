//! `perfbench` — self-timed hot-path throughput harness.
//!
//! Measures (a) the raw kernels (GF(2^8) bulk multiply, XOR delta,
//! delta codec) in ns/iter and MB/s, and (b) end-to-end engine replay
//! ops/s on the seeded synthetic traces, then merges the results into
//! `BENCH_kernels.json` / `BENCH_engine.json` (schema: EXPERIMENTS.md
//! "Perf trajectory"). Unlike the criterion benches this needs no
//! nightly features and finishes in seconds, so CI can run it on every
//! push (`--smoke`) and the committed files preserve the before/after
//! trajectory across optimisation PRs.
//!
//! ```text
//! perfbench                         # full run, label "current"
//! perfbench --label after           # record under a named run
//! perfbench --smoke                 # fast CI variant (same schema)
//! perfbench --validate              # check committed BENCH files only
//! perfbench --gate                  # smoke kernels vs committed baseline
//! ```
//!
//! `--gate` re-times the kernels in smoke mode and compares each entry
//! against the **last committed run** in `BENCH_kernels.json`. Ratios are
//! normalised by the memory-bound `xor_into_4k` reference (its drift
//! measures the host, not the code), and any kernel more than 30% slower
//! after normalisation fails the gate. Engine replay deltas are printed
//! for information only — wall-clock replay is too noisy to gate on.
//!
//! Determinism note: workloads and data are fully seeded; only the
//! timings vary run to run (the bench crate is exempt from KDD003).

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
#![allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]

use std::hint::black_box;
use std::time::Instant;

use kdd_bench::perfjson::{self, obj, Json};
use kdd_blockdev::SsdDevice;
use kdd_cache::CacheGeometry;
use kdd_core::{KddConfig, KddEngine, WriteRequest};
use kdd_delta::codec::{compress, decompress, Compressor};
use kdd_delta::content::PageMutator;
use kdd_delta::xor::{is_all_zero, xor2_into, xor_into, xor_pages, xor_pages_into, zero_fraction};
use kdd_obs::{Recorder, RecorderConfig};
use kdd_raid::{gf256, Layout, RaidArray, RaidLevel};
use kdd_trace::record::Trace;
use kdd_trace::synth::PaperTrace;
use kdd_trace::Op;
use kdd_util::units::SimTime;

const PAGE: usize = 4096;
const KERNELS_FILE: &str = "BENCH_kernels.json";
const ENGINE_FILE: &str = "BENCH_engine.json";
const OBS_FILE: &str = "OBS_engine.json";

struct Opts {
    label: String,
    smoke: bool,
    validate: bool,
    gate: bool,
    out_dir: String,
}

fn usage() -> ! {
    eprintln!("usage: perfbench [--label NAME] [--smoke] [--validate] [--gate] [--out-dir DIR]");
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        label: "current".to_string(),
        smoke: false,
        validate: false,
        gate: false,
        out_dir: ".".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => opts.label = it.next().unwrap_or_else(|| usage()),
            "--smoke" => opts.smoke = true,
            "--validate" => opts.validate = true,
            "--gate" => opts.gate = true,
            "--out-dir" => opts.out_dir = it.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    opts
}

/// Time `f` with auto-calibrated batching: estimate the per-iter cost,
/// size batches to ~`round_ns` of wall time, run `rounds` batches, and
/// report the *minimum* batch mean (least-noise estimator on a shared
/// machine). Returns ns/iter.
fn time_ns(rounds: usize, round_ns: u64, mut f: impl FnMut()) -> f64 {
    // Warm up + estimate.
    let probe = 8;
    let t0 = Instant::now();
    for _ in 0..probe {
        f();
    }
    let est = (t0.elapsed().as_nanos() as u64 / probe as u64).max(1);
    let iters = (round_ns / est).clamp(8, 4_000_000) as usize;
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t.elapsed().as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
    }
    best
}

fn mb_per_s(bytes: usize, ns: f64) -> f64 {
    bytes as f64 / ns * 1e9 / 1e6
}

/// All-zero page: the degenerate rewrite (page unchanged → delta is zero).
fn class_page_zero() -> Vec<u8> {
    vec![0u8; PAGE]
}

/// Text-like page: repeated log-style records with incrementing decimal
/// fields — zero-free and highly LZ-compressible (hot-metadata class).
fn class_page_text() -> Vec<u8> {
    let mut page = Vec::with_capacity(PAGE + 64);
    let mut n = 0u32;
    while page.len() < PAGE {
        let line = format!(
            "req={n:06} op=write lat_us={:04} path=/vol0/seg{:03}/blk ",
            (n * 37) % 1000,
            n % 128
        );
        page.extend_from_slice(line.as_bytes());
        n += 1;
    }
    page.truncate(PAGE);
    page
}

/// Incompressible page: xorshift-mixed bytes — no zero runs, no repeats.
fn class_page_incompressible() -> Vec<u8> {
    let mut x = 0x9e37_79b9_7f4a_7c15_u64;
    (0..PAGE)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn kernel_entry(name: &str, bytes: usize, ns: f64) -> Json {
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("ns_per_iter", Json::Num((ns * 1000.0).round() / 1000.0)),
        ("mb_per_s", Json::Num(mb_per_s(bytes, ns).round())),
    ])
}

fn bench_kernels(smoke: bool) -> Vec<Json> {
    let (rounds, round_ns) = if smoke { (2, 2_000_000) } else { (5, 20_000_000) };
    let mut entries = Vec::new();

    // Deterministic page contents shared by all kernel benches.
    let data: Vec<u8> = (0..PAGE).map(|i| (i % 251) as u8).collect();
    let mut mutator = PageMutator::new(PAGE, 0.10, 64, 7);
    let p0 = mutator.initial_page();
    let p1 = mutator.mutate(&p0);
    let delta = xor_pages(&p0, &p1);
    let compressed = compress(&delta);

    // GF(2^8) bulk multiply: 0x1d = g^8 (the RAID-6 coefficient the
    // criterion bench pins) and g^1 = 2 (the first Q-parity term).
    let mut dst = vec![0u8; PAGE];
    let ns = time_ns(rounds, round_ns, || {
        gf256::mul_slice_into(black_box(&mut dst), black_box(&data), 0x1d);
    });
    entries.push(kernel_entry("gf256_mul_slice_4k", PAGE, ns));
    eprintln!("  gf256_mul_slice_4k       {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    let ns = time_ns(rounds, round_ns, || {
        gf256::mul_slice_into(black_box(&mut dst), black_box(&data), 0x02);
    });
    entries.push(kernel_entry("gf256_mul_slice_4k_c2", PAGE, ns));
    eprintln!("  gf256_mul_slice_4k_c2    {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    // A coefficient outside the g^0..g^15 whitelist exercises the
    // split-nibble table fallback (cold reconstruction path).
    let ns = time_ns(rounds, round_ns, || {
        gf256::mul_slice_into(black_box(&mut dst), black_box(&data), 0xb7);
    });
    entries.push(kernel_entry("gf256_mul_slice_4k_cold", PAGE, ns));
    eprintln!("  gf256_mul_slice_4k_cold  {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    // Fused P+Q update: one source pass feeding both parities — the
    // RAID-6 RMW/reconstruct inner loop.
    let mut qdst = vec![0u8; PAGE];
    let ns = time_ns(rounds, round_ns, || {
        gf256::mul2_slice_into(black_box(&mut dst), black_box(&mut qdst), black_box(&data), 0x1d);
    });
    entries.push(kernel_entry("gf256_mul2_slice_4k", PAGE, ns));
    eprintln!("  gf256_mul2_slice_4k      {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    // XOR delta kernels.
    let mut buf = p0.clone();
    let ns = time_ns(rounds, round_ns, || {
        xor_into(black_box(&mut buf), black_box(&p1));
    });
    entries.push(kernel_entry("xor_into_4k", PAGE, ns));
    eprintln!("  xor_into_4k              {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    let ns = time_ns(rounds, round_ns, || {
        black_box(xor_pages(black_box(&p0), black_box(&p1)));
    });
    entries.push(kernel_entry("xor_pages_4k", PAGE, ns));
    eprintln!("  xor_pages_4k             {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    let mut out = vec![0u8; PAGE];
    let ns = time_ns(rounds, round_ns, || {
        xor_pages_into(black_box(&mut out), black_box(&p0), black_box(&p1));
    });
    entries.push(kernel_entry("xor_pages_into_4k", PAGE, ns));
    eprintln!("  xor_pages_into_4k        {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    let mut acc2 = p0.clone();
    let ns = time_ns(rounds, round_ns, || {
        xor2_into(black_box(&mut acc2), black_box(&mut out), black_box(&p1));
    });
    entries.push(kernel_entry("xor2_into_4k", PAGE, ns));
    eprintln!("  xor2_into_4k             {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    let ns = time_ns(rounds, round_ns, || {
        black_box(zero_fraction(black_box(&delta)));
    });
    entries.push(kernel_entry("zero_fraction_4k", PAGE, ns));
    eprintln!("  zero_fraction_4k         {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    let zeros = vec![0u8; PAGE];
    let ns = time_ns(rounds, round_ns, || {
        black_box(is_all_zero(black_box(&zeros)));
    });
    entries.push(kernel_entry("is_all_zero_4k", PAGE, ns));
    eprintln!("  is_all_zero_4k           {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    // Delta codec round trip, measured through the persistent Compressor
    // (the engine's hot-path entry point, scratch reused across calls).
    let mut comp = Compressor::new();
    let ns = time_ns(rounds, round_ns, || {
        black_box(comp.compress(black_box(&delta)));
    });
    entries.push(kernel_entry("compress_4k_delta", PAGE, ns));
    eprintln!("  compress_4k_delta        {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    // Ratio-stratified codec benches: the match finder behaves very
    // differently per content class, so each class is tracked as its own
    // trajectory entry (all-zero, text-like/compressible, incompressible).
    for (name, page) in [
        ("compress_4k_zero", class_page_zero()),
        ("compress_4k_text", class_page_text()),
        ("compress_4k_incompressible", class_page_incompressible()),
    ] {
        let ns = time_ns(rounds, round_ns, || {
            black_box(comp.compress(black_box(&page)));
        });
        entries.push(kernel_entry(name, PAGE, ns));
        eprintln!("  {name:<24} {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));
    }

    let ns = time_ns(rounds, round_ns, || {
        black_box(decompress(black_box(&compressed)).ok());
    });
    entries.push(kernel_entry("decompress_4k_delta", PAGE, ns));
    eprintln!("  decompress_4k_delta      {ns:9.1} ns/iter  {:8.0} MB/s", mb_per_s(PAGE, ns));

    entries
}

/// Build the reference engine used for replay (same shape as
/// `examples/endurance_audit.rs`): RAID-5 over 5 disks with a 512-page
/// delta cache.
fn build_engine() -> (KddEngine, u64) {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 128);
    let capacity = layout.capacity_pages();
    let raid = RaidArray::new(layout, PAGE as u32);
    let ssd = SsdDevice::with_logical_capacity((512 + 64) * PAGE as u64, PAGE as u32, 0.07);
    let geometry = CacheGeometry { total_pages: 512, ways: 64, page_size: PAGE as u32 };
    let engine = match KddEngine::new(KddConfig::new(geometry), ssd, raid) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("engine construction failed: {e:?}");
            std::process::exit(1);
        }
    };
    (engine, capacity)
}

/// Drive a seeded trace through `engine` (rewrites are mutations of the
/// previous content so the delta path is exercised); returns ops issued.
/// Each record's write pages are submitted as one group commit through
/// [`KddEngine::write_batch`], matching the batched replay in `kdd-sim`.
fn drive_engine(engine: &mut KddEngine, capacity: u64, trace: &Trace, seed: u64) -> u64 {
    let mut mutator = PageMutator::new(PAGE, 0.15, 64, seed ^ 0x9e37);
    // Current content of every written page, so rewrites are *mutations*
    // (exercising the delta path) rather than fresh random pages.
    let mut versions: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
    let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut ops = 0u64;
    for rec in &trace.records {
        match rec.op {
            Op::Read => {
                for page in rec.pages() {
                    let lba = page % capacity;
                    if engine.read(lba).is_err() {
                        eprintln!("replay read error at lba {lba}");
                        std::process::exit(1);
                    }
                    ops += 1;
                }
            }
            Op::Write => {
                batch.clear();
                for page in rec.pages() {
                    let lba = page % capacity;
                    let next = match versions.get(&lba) {
                        Some(prev) => mutator.mutate(prev),
                        None => mutator.initial_page(),
                    };
                    batch.push((lba, next));
                }
                let reqs: Vec<WriteRequest<'_>> =
                    batch.iter().map(|(lba, data)| WriteRequest { lba: *lba, data }).collect();
                if let Err(e) = engine.write_batch(&reqs) {
                    eprintln!("replay write error at lba {}: {e}", rec.lba);
                    std::process::exit(1);
                }
                ops += batch.len() as u64;
                for (lba, data) in batch.drain(..) {
                    versions.insert(lba, data);
                }
            }
        }
    }
    ops
}

/// Replay one synthetic trace through the full engine (cache + delta +
/// RAID on real bytes) and report the sustained request rate.
fn replay_trace(pt: PaperTrace, scale: u64, seed: u64) -> (u64, f64) {
    let trace = pt.generate_scaled(scale, seed);
    let (mut engine, capacity) = build_engine();
    let t0 = Instant::now();
    let ops = drive_engine(&mut engine, capacity, &trace, seed);
    let mut t = SimTime::ZERO;
    if engine.clean(&mut t).is_err() || engine.flush().is_err() {
        eprintln!("replay cleanup error");
        std::process::exit(1);
    }
    let wall = t0.elapsed().as_secs_f64();
    (ops, wall)
}

/// Emit the committed observability snapshot: a fixed seeded Fin1 replay
/// with an enabled recorder. Every stamp in the document is *simulated*
/// time, so the file is byte-identical on any machine — it is committed
/// at the repo root next to the BENCH files and checked by `--validate`.
fn emit_obs_snapshot(path: &str) {
    let trace = PaperTrace::Fin1.generate_scaled(800, 42);
    let (mut engine, capacity) = build_engine();
    engine.attach_recorder(Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_secs(1),
        ring_capacity: 256,
    }));
    let ops = drive_engine(&mut engine, capacity, &trace, 42);
    let mut t = SimTime::ZERO;
    if engine.clean(&mut t).is_err() || engine.flush().is_err() {
        eprintln!("obs snapshot cleanup error");
        std::process::exit(1);
    }
    let Some(doc) = engine.obs_snapshot() else {
        eprintln!("obs snapshot: recorder unexpectedly disabled");
        std::process::exit(1);
    };
    let problems = kdd_obs::validate_snapshot(&doc);
    if !problems.is_empty() {
        eprintln!("refusing to write invalid {path}:");
        for p in &problems {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path} ({ops} ops captured)");
}

fn bench_engine(smoke: bool) -> Vec<Json> {
    let traces: &[PaperTrace] = if smoke { &[PaperTrace::Fin1] } else { &PaperTrace::ALL };
    let scale = if smoke { 5000 } else { 500 };
    let mut entries = Vec::new();
    for &pt in traces {
        let name = format!("engine_replay_{pt:?}").to_lowercase();
        let (ops, wall) = replay_trace(pt, scale, 42);
        let ops_per_s = ops as f64 / wall.max(1e-9);
        eprintln!("  {name:<24} {ops:>8} ops  {:8.1} ms  {:9.0} ops/s", wall * 1e3, ops_per_s);
        entries.push(obj(vec![
            ("name", Json::Str(name)),
            ("ops", Json::Num(ops as f64)),
            ("wall_ms", Json::Num((wall * 1e5).round() / 100.0)),
            ("ops_per_s", Json::Num(ops_per_s.round())),
        ]));
    }
    entries
}

fn load_doc(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    match perfjson::parse(&text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("warning: {path} is not valid JSON ({e}); starting fresh");
            None
        }
    }
}

fn write_doc(path: &str, kind: &str, label: &str, mode: &str, entries: Vec<Json>) {
    let run = obj(vec![
        ("label", Json::Str(label.to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("entries", Json::Arr(entries)),
    ]);
    let doc = perfjson::merge_run(load_doc(path), kind, PAGE as u32, run);
    let problems = perfjson::validate(&doc, kind);
    if !problems.is_empty() {
        eprintln!("refusing to write invalid {path}:");
        for p in &problems {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path} (run label {label:?})");
}

fn validate_files(out_dir: &str) -> ! {
    let mut failed = false;
    for (file, kind) in [(KERNELS_FILE, "kernels"), (ENGINE_FILE, "engine")] {
        let path = format!("{out_dir}/{file}");
        let Some(doc) = load_doc(&path) else {
            eprintln!("{path}: missing or unparseable");
            failed = true;
            continue;
        };
        let problems = perfjson::validate(&doc, kind);
        if problems.is_empty() {
            let runs = doc.get("runs").and_then(Json::as_arr).map_or(0, <[Json]>::len);
            eprintln!("{path}: ok ({runs} runs)");
        } else {
            failed = true;
            for p in &problems {
                eprintln!("{path}: {p}");
            }
        }
    }
    let opath = format!("{out_dir}/{OBS_FILE}");
    match load_doc(&opath) {
        None => {
            eprintln!("{opath}: missing or unparseable");
            failed = true;
        }
        Some(doc) => {
            let problems = kdd_obs::validate_snapshot(&doc);
            if problems.is_empty() {
                let samples = doc.get("timeseries").and_then(Json::as_arr).map_or(0, <[Json]>::len);
                eprintln!("{opath}: ok ({samples} samples)");
            } else {
                failed = true;
                for p in &problems {
                    eprintln!("{opath}: {p}");
                }
            }
        }
    }
    std::process::exit(i32::from(failed));
}

/// Entries of the most recent run recorded in a BENCH document.
fn last_run_entries(doc: &Json) -> Option<&[Json]> {
    doc.get("runs")?.as_arr()?.last()?.get("entries")?.as_arr()
}

/// Pull `(name, metric)` pairs out of a run's entry list.
fn run_metrics(entries: &[Json], metric: &str) -> Vec<(String, f64)> {
    entries
        .iter()
        .filter_map(|e| Some((e.get("name")?.as_str()?.to_string(), e.get(metric)?.as_f64()?)))
        .collect()
}

/// Host-speed reference kernel: memory-bound, so its drift between the
/// committed baseline and this run measures the machine, not the code.
const GATE_REFERENCE: &str = "xor_into_4k";
/// A kernel more than 30% slower than baseline (normalized) fails.
const GATE_THRESHOLD: f64 = 1.30;

/// `--gate`: re-time the kernels (smoke mode) and fail if any regressed
/// more than [`GATE_THRESHOLD`] against the last committed run, after
/// normalising out the [`GATE_REFERENCE`] host drift. Engine replay
/// deltas are printed for information only.
fn run_gate(out_dir: &str) -> ! {
    let kpath = format!("{out_dir}/{KERNELS_FILE}");
    let Some(kdoc) = load_doc(&kpath) else {
        eprintln!("gate: {kpath} missing; nothing to compare against");
        std::process::exit(1);
    };
    let baseline = last_run_entries(&kdoc).map_or_else(Vec::new, |e| run_metrics(e, "ns_per_iter"));
    if baseline.is_empty() {
        eprintln!("gate: {kpath} has no recorded runs");
        std::process::exit(1);
    }
    eprintln!("perfbench: gate — kernels (smoke) vs committed baseline ...");
    let current_entries = bench_kernels(true);
    let current = run_metrics(&current_entries, "ns_per_iter");
    let base_of = |name: &str| baseline.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let ref_drift = match (
        current.iter().find(|(n, _)| n == GATE_REFERENCE).map(|(_, v)| *v),
        base_of(GATE_REFERENCE),
    ) {
        (Some(cur), Some(base)) if base > 0.0 && cur > 0.0 => cur / base,
        _ => 1.0,
    };
    eprintln!("gate: reference {GATE_REFERENCE} host drift x{ref_drift:.3}");
    let mut failed = false;
    for (name, cur) in &current {
        let Some(base) = base_of(name) else {
            eprintln!("  {name:<26} (new kernel; no baseline)");
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        let raw = cur / base;
        let norm = raw / ref_drift;
        let verdict = if name == GATE_REFERENCE {
            "ref"
        } else if norm > GATE_THRESHOLD {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "  {name:<26} {base:9.1} -> {cur:9.1} ns/iter  raw {:+6.1}%  norm {:+6.1}%  {verdict}",
            (raw - 1.0) * 100.0,
            (norm - 1.0) * 100.0
        );
    }
    let epath = format!("{out_dir}/{ENGINE_FILE}");
    if let Some(ebase) =
        load_doc(&epath).as_ref().and_then(last_run_entries).map(|e| run_metrics(e, "ops_per_s"))
    {
        eprintln!("perfbench: gate — engine replay (informational) ...");
        let ecur = run_metrics(&bench_engine(true), "ops_per_s");
        for (name, cur) in &ecur {
            match ebase.iter().find(|(n, _)| n == name).map(|(_, v)| *v) {
                Some(base) if base > 0.0 => eprintln!(
                    "  {name:<26} {base:9.0} -> {cur:9.0} ops/s  {:+6.1}%",
                    (cur / base - 1.0) * 100.0
                ),
                _ => eprintln!("  {name:<26} (no baseline)"),
            }
        }
    }
    if failed {
        eprintln!(
            "gate: FAIL — kernel regression beyond {:.0}% after host normalisation",
            (GATE_THRESHOLD - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    eprintln!("gate: ok");
    std::process::exit(0);
}

fn main() {
    let opts = parse_opts();
    if opts.validate {
        validate_files(&opts.out_dir);
    }
    if opts.gate {
        run_gate(&opts.out_dir);
    }
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("cannot create {}: {e}", opts.out_dir);
        std::process::exit(1);
    }
    let mode = if opts.smoke { "smoke" } else { "full" };
    eprintln!("perfbench: kernels ({mode}) ...");
    let kernel_entries = bench_kernels(opts.smoke);
    eprintln!("perfbench: engine replay ({mode}) ...");
    let engine_entries = bench_engine(opts.smoke);

    let kpath = format!("{}/{KERNELS_FILE}", opts.out_dir);
    let epath = format!("{}/{ENGINE_FILE}", opts.out_dir);
    write_doc(&kpath, "kernels", &opts.label, mode, kernel_entries);
    write_doc(&epath, "engine", &opts.label, mode, engine_entries);
    eprintln!("perfbench: obs snapshot ...");
    emit_obs_snapshot(&format!("{}/{OBS_FILE}", opts.out_dir));
}
