//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each `figN`/`tableN` function reproduces one evaluation artifact of
//! the ICPP'16 KDD paper and returns uniform [`report::Row`]s; the
//! `repro` binary prints them as tables (and optionally JSON), and the
//! Criterion benches time their generation at reduced scale.
//!
//! Scale: `scale` divides the Table I trace sizes (and the FIO volume).
//! `scale = 1` is the paper's full workload (millions of requests);
//! the default for the binary is 100, which runs in seconds and
//! preserves every qualitative relationship.

pub mod experiments;
pub mod perfjson;
pub mod report;

pub use experiments::*;
pub use report::{print_rows, Row};
