//! The experiments: one function per table/figure, plus the ablations
//! DESIGN.md calls out. All sweeps are data-parallel (rayon) since every
//! (workload, cache size, policy) cell is independent.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::report::Row;
use kdd_cache::policies::{CachePolicy, RaidModel};
use kdd_cache::setassoc::CacheGeometry;
use kdd_core::{KddConfig, KddPolicy};
use kdd_delta::model::GaussianDeltaModel;
use kdd_raid::layout::{Layout, RaidLevel};
use kdd_sim::closedloop::run_closed_loop;
use kdd_sim::factory::{build_policy, PolicyKind};
use kdd_sim::openloop::replay_open_loop;
use kdd_sim::service::ServiceModel;
use kdd_trace::fio::{FioConfig, FioWorkload};
use kdd_trace::record::Trace;
use kdd_trace::stats::TraceStats;
use kdd_trace::synth::PaperTrace;
use rayon::prelude::*;

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Divides the Table I trace sizes and the FIO volume.
    pub scale: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig { scale: 100, seed: 42 }
    }
}

/// Cache sizes swept in Figures 5–8, as fractions of a trace's unique
/// pages (the paper's x-axes span roughly this range of its traces).
const CACHE_FRACTIONS: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];

fn geometry(cache_pages: u64) -> CacheGeometry {
    CacheGeometry {
        total_pages: cache_pages.max(64),
        ways: 64.min(cache_pages.max(64) as u32),
        page_size: 4096,
    }
}

fn gen(pt: PaperTrace, cfg: &ExpConfig) -> Trace {
    pt.generate_scaled(cfg.scale, cfg.seed)
}

fn raid_for(trace: &Trace) -> RaidModel {
    RaidModel::paper_default(trace.address_space_pages().max(1024))
}

/// Build a KDD policy with a tweaked configuration (ablations).
pub fn kdd_with(
    g: CacheGeometry,
    raid: RaidModel,
    ratio: f64,
    seed: u64,
    tweak: impl FnOnce(&mut KddConfig),
) -> KddPolicy {
    let mut config = KddConfig::new(g);
    tweak(&mut config);
    KddPolicy::new(config, raid, Box::new(GaussianDeltaModel::new(ratio, seed)))
}

// ---------------------------------------------------------------- Table I

/// Table I: characteristics of the (regenerated) traces.
pub fn table1(cfg: &ExpConfig) -> Vec<Row> {
    PaperTrace::ALL
        .par_iter()
        .map(|&pt| {
            let t = gen(pt, cfg);
            let s = TraceStats::compute(&t);
            Row::new(
                "table1",
                pt.name(),
                "scale",
                cfg.scale as f64,
                "-",
                vec![
                    ("unique_total_k", s.unique_total as f64 / 1000.0),
                    ("unique_read_k", s.unique_read as f64 / 1000.0),
                    ("unique_write_k", s.unique_write as f64 / 1000.0),
                    ("read_req_k", s.read_requests as f64 / 1000.0),
                    ("write_req_k", s.write_requests as f64 / 1000.0),
                    ("read_ratio", s.read_ratio()),
                ],
            )
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 4

/// Figure 4: metadata I/O share of SSD write traffic vs the metadata
/// partition size (0.39 %–0.98 % of the SSD), per trace and cache size.
pub fn fig4(cfg: &ExpConfig) -> Vec<Row> {
    let partitions = [0.0039f64, 0.0059, 0.0078, 0.0098];
    let cache_fracs = [0.10f64, 0.20];
    let mut cells: Vec<(PaperTrace, f64, f64)> = Vec::new();
    for &pt in &PaperTrace::ALL {
        for &cf in &cache_fracs {
            for &pf in &partitions {
                cells.push((pt, cf, pf));
            }
        }
    }
    let mut rows: Vec<Row> = cells
        .par_iter()
        .map(|&(pt, cache_frac, part_frac)| {
            let trace = gen(pt, cfg);
            let stats = TraceStats::compute(&trace);
            let cache_pages = ((stats.unique_total as f64 * cache_frac) as u64).max(256);
            let g = geometry(cache_pages);
            let raid = raid_for(&trace);
            let mut p = kdd_with(g, raid, 0.25, cfg.seed, |c| c.meta_partition_frac = part_frac);
            p.run_trace(&trace);
            Row::new(
                "fig4",
                pt.name(),
                "partition_pct",
                part_frac * 100.0,
                &format!("cache={}k", cache_pages / 1000),
                vec![
                    ("metadata_pct", p.stats().metadata_fraction() * 100.0),
                    ("meta_pages", p.stats().ssd_meta_writes as f64),
                ],
            )
        })
        .collect();
    rows.sort_by_key(|a| (a.workload.clone(), a.policy.clone()));
    rows
}

// ------------------------------------------------------------ Figures 5–8

fn hit_and_traffic(
    experiment_hit: &str,
    experiment_traffic: &str,
    traces: &[PaperTrace],
    cfg: &ExpConfig,
) -> (Vec<Row>, Vec<Row>) {
    let kinds = PolicyKind::figure_set();
    let mut cells: Vec<(PaperTrace, f64, PolicyKind)> = Vec::new();
    for &pt in traces {
        for &cf in &CACHE_FRACTIONS {
            for &k in &kinds {
                cells.push((pt, cf, k));
            }
        }
    }
    let results: Vec<(PaperTrace, f64, PolicyKind, f64, f64, u64)> = cells
        .par_iter()
        .map(|&(pt, cache_frac, kind)| {
            let trace = gen(pt, cfg);
            let stats = TraceStats::compute(&trace);
            let cache_pages = ((stats.unique_total as f64 * cache_frac) as u64).max(256);
            let g = geometry(cache_pages);
            let raid = raid_for(&trace);
            let mut p = build_policy(kind, g, raid, cfg.seed);
            p.run_trace(&trace);
            let s = p.stats();
            (
                pt,
                cache_frac,
                kind,
                s.hit_ratio(),
                s.ssd_write_bytes(4096).as_u64() as f64 / (1 << 20) as f64,
                cache_pages,
            )
        })
        .collect();
    let mut hit = Vec::new();
    let mut traffic = Vec::new();
    for (pt, _cf, kind, hr, mib, cache_pages) in results {
        let x = cache_pages as f64 / 1000.0;
        // WA caches no writes: the paper omits it from the hit-ratio plots.
        if kind != PolicyKind::Wa {
            hit.push(Row::new(
                experiment_hit,
                pt.name(),
                "cache_kpages",
                x,
                &kind.name(),
                vec![("hit_pct", hr * 100.0)],
            ));
        }
        traffic.push(Row::new(
            experiment_traffic,
            pt.name(),
            "cache_kpages",
            x,
            &kind.name(),
            vec![("ssd_write_mib", mib)],
        ));
    }
    let key = |r: &Row| (r.workload.clone(), r.policy.clone(), (r.x * 1e6) as i64);
    hit.sort_by_key(key);
    traffic.sort_by_key(key);
    (hit, traffic)
}

/// Figure 5: hit ratios, write-dominant traces (Fin1, Hm0).
pub fn fig5(cfg: &ExpConfig) -> Vec<Row> {
    hit_and_traffic("fig5", "fig6", &PaperTrace::WRITE_DOMINANT, cfg).0
}

/// Figure 6: SSD write traffic, write-dominant traces.
pub fn fig6(cfg: &ExpConfig) -> Vec<Row> {
    hit_and_traffic("fig5", "fig6", &PaperTrace::WRITE_DOMINANT, cfg).1
}

/// Figure 7: hit ratios, read-dominant traces (Fin2, Web0).
pub fn fig7(cfg: &ExpConfig) -> Vec<Row> {
    hit_and_traffic("fig7", "fig8", &PaperTrace::READ_DOMINANT, cfg).0
}

/// Figure 8: SSD write traffic, read-dominant traces.
pub fn fig8(cfg: &ExpConfig) -> Vec<Row> {
    hit_and_traffic("fig7", "fig8", &PaperTrace::READ_DOMINANT, cfg).1
}

// ---------------------------------------------------------------- Figure 9

/// Figure 9: average response time, open-loop trace replay.
pub fn fig9(cfg: &ExpConfig) -> Vec<Row> {
    let model = ServiceModel::paper_default();
    let cells: Vec<(PaperTrace, PolicyKind)> = PaperTrace::ALL
        .iter()
        .flat_map(|&pt| PolicyKind::latency_set().into_iter().map(move |k| (pt, k)))
        .collect();
    let mut rows: Vec<Row> = cells
        .par_iter()
        .map(|&(pt, kind)| {
            let trace = gen(pt, cfg);
            let stats = TraceStats::compute(&trace);
            let cache_pages = (stats.unique_total * 15 / 100).max(256);
            let g = geometry(cache_pages);
            let raid = raid_for(&trace);
            let mut p = build_policy(kind, g, raid, cfg.seed);
            let r = replay_open_loop(p.as_mut(), &trace, &model, 5, 1);
            Row::new(
                "fig9",
                pt.name(),
                "cache_kpages",
                cache_pages as f64 / 1000.0,
                &kind.name(),
                vec![
                    ("mean_resp_ms", r.mean_response.as_nanos() as f64 / 1e6),
                    ("p99_resp_ms", r.p99.as_nanos() as f64 / 1e6),
                    ("hit_pct", r.hit_ratio * 100.0),
                ],
            )
        })
        .collect();
    rows.sort_by_key(|a| (a.workload.clone(), a.policy.clone()));
    rows
}

// ----------------------------------------------------------- Figures 10–11

/// The paper's FIO read-rate sweep (0 %–75 %).
pub const FIO_READ_RATES: [f64; 4] = [0.0, 0.25, 0.50, 0.75];

fn fio_sweep(cfg: &ExpConfig) -> Vec<(f64, PolicyKind, f64, f64)> {
    let model = ServiceModel::paper_default();
    let cells: Vec<(f64, PolicyKind)> = FIO_READ_RATES
        .iter()
        .flat_map(|&r| PolicyKind::latency_set().into_iter().map(move |k| (r, k)))
        .collect();
    cells
        .par_iter()
        .map(|&(rate, kind)| {
            let fio = FioConfig::paper(rate).scaled(cfg.scale);
            // Paper: 1 GiB cache under a 1.6 GiB working set.
            let cache_pages = ((1u64 << 30) / 4096 / cfg.scale).max(64);
            let g = geometry(cache_pages);
            let raid = RaidModel::paper_default(fio.wss_pages.max(1024));
            let mut p = build_policy(kind, g, raid, cfg.seed);
            let mut w = FioWorkload::new(fio, cfg.seed + 1);
            let r = run_closed_loop(p.as_mut(), &mut w, &model, 5);
            (
                rate,
                kind,
                r.mean_response.as_nanos() as f64 / 1e6,
                r.ssd_write_bytes.as_u64() as f64 / (1 << 20) as f64,
            )
        })
        .collect()
}

/// Figure 10: average response time under FIO at 0–75 % read rates.
pub fn fig10(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows: Vec<Row> = fio_sweep(cfg)
        .into_iter()
        .map(|(rate, kind, ms, _)| {
            Row::new(
                "fig10",
                "fio-zipf",
                "read_rate",
                rate,
                &kind.name(),
                vec![("mean_resp_ms", ms)],
            )
        })
        .collect();
    rows.sort_by_key(|a| (a.policy.clone(), (a.x * 100.0) as i64));
    rows
}

/// Figure 11: SSD write traffic under FIO at 0–75 % read rates.
pub fn fig11(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows: Vec<Row> = fio_sweep(cfg)
        .into_iter()
        .filter(|(_, kind, _, _)| *kind != PolicyKind::Nossd)
        .map(|(rate, kind, _, mib)| {
            Row::new(
                "fig11",
                "fio-zipf",
                "read_rate",
                rate,
                &kind.name(),
                vec![("ssd_write_mib", mib)],
            )
        })
        .collect();
    rows.sort_by_key(|a| (a.policy.clone(), (a.x * 100.0) as i64));
    rows
}

// ---------------------------------------------------------------- Table II

/// Table II: qualitative policy comparison, derived from the measured
/// Figure 10/11 numbers at the 25 % read rate (1.0 = Low latency / Good
/// endurance, 0.0 = High latency / Bad endurance).
pub fn table2(cfg: &ExpConfig) -> Vec<Row> {
    let sweep = fio_sweep(cfg);
    let at = |kind: PolicyKind| -> (f64, f64) {
        sweep
            .iter()
            .find(|(r, k, _, _)| *r == 0.25 && *k == kind)
            .map(|&(_, _, ms, mib)| (ms, mib))
            .expect("sweep covers 0.25")
    };
    let (nossd_ms, _) = at(PolicyKind::Nossd);
    let (_, wt_mib) = at(PolicyKind::Wt);
    [PolicyKind::Wt, PolicyKind::Wa, PolicyKind::LeavO, PolicyKind::Kdd(0.25)]
        .into_iter()
        .map(|kind| {
            let (ms, mib) = at(kind);
            let low_latency = ms < 0.8 * nossd_ms;
            let good_endurance = mib < 0.7 * wt_mib;
            Row::new(
                "table2",
                "fio-zipf@25%read",
                "read_rate",
                0.25,
                &kind.name(),
                vec![
                    ("mean_resp_ms", ms),
                    ("ssd_write_mib", mib),
                    ("low_latency", low_latency as u8 as f64),
                    ("good_endurance", good_endurance as u8 as f64),
                ],
            )
        })
        .collect()
}

// --------------------------------------------------------------- Ablations

struct AblationPoint {
    variant: String,
    hit_pct: f64,
    ssd_write_mib: f64,
    metadata_pct: f64,
    raid_reads_per_update: f64,
}

fn ablation_run(
    trace: &Trace,
    cache_pages: u64,
    variant: &str,
    tweak: impl FnOnce(&mut KddConfig),
    seed: u64,
) -> AblationPoint {
    let g = geometry(cache_pages);
    let raid = raid_for(trace);
    let mut p = kdd_with(g, raid, 0.25, seed, tweak);
    p.run_trace(trace);
    let s = p.stats();
    AblationPoint {
        variant: variant.to_string(),
        hit_pct: s.hit_ratio() * 100.0,
        ssd_write_mib: s.ssd_write_bytes(4096).as_u64() as f64 / (1 << 20) as f64,
        metadata_pct: s.metadata_fraction() * 100.0,
        raid_reads_per_update: if s.parity_updates == 0 {
            0.0
        } else {
            // Isolate the cleaner's reads: read misses cost 1 member read
            // each and write misses 2 (the RMW pair); what remains is the
            // parity-repair traffic. 0 ≈ reconstruct-write from cache,
            // 1 ≈ read-modify-write of the stale parity.
            let foreground = s.read_misses + 2 * s.write_misses;
            (s.raid_reads.saturating_sub(foreground)) as f64 / s.parity_updates as f64
        },
    }
}

/// One named configuration tweak in an ablation sweep.
type Variant = (&'static str, Box<dyn Fn(&mut KddConfig) + Sync + Send>);

fn ablation(cfg: &ExpConfig, name: &str, variants: Vec<Variant>) -> Vec<Row> {
    let traces = [PaperTrace::Fin1, PaperTrace::Web0];
    let cells: Vec<(PaperTrace, usize)> =
        traces.iter().flat_map(|&pt| (0..variants.len()).map(move |i| (pt, i))).collect();
    let mut rows: Vec<Row> = cells
        .par_iter()
        .map(|&(pt, vi)| {
            let trace = gen(pt, cfg);
            let stats = TraceStats::compute(&trace);
            let cache_pages = (stats.unique_total * 15 / 100).max(256);
            let point =
                ablation_run(&trace, cache_pages, variants[vi].0, &variants[vi].1, cfg.seed);
            Row::new(
                name,
                pt.name(),
                "cache_kpages",
                cache_pages as f64 / 1000.0,
                &point.variant,
                vec![
                    ("hit_pct", point.hit_pct),
                    ("ssd_write_mib", point.ssd_write_mib),
                    ("metadata_pct", point.metadata_pct),
                    ("raid_rd_per_upd", point.raid_reads_per_update),
                ],
            )
        })
        .collect();
    rows.sort_by_key(|a| (a.workload.clone(), a.policy.clone()));
    rows
}

/// Ablation: dynamic DAZ/DEZ mixing (the paper's design) vs static
/// partitions at 10 % and 30 % DEZ reservations (§III-B's rejected
/// alternative).
pub fn ablation_zoning(cfg: &ExpConfig) -> Vec<Row> {
    ablation(
        cfg,
        "ablation_zoning",
        vec![
            ("dynamic", Box::new(|_c: &mut KddConfig| {})),
            ("fixed-10%", Box::new(|c: &mut KddConfig| c.fixed_dez_fraction = Some(0.10))),
            ("fixed-30%", Box::new(|c: &mut KddConfig| c.fixed_dez_fraction = Some(0.30))),
        ],
    )
}

/// Ablation: §III-D's two reclamation schemes — simple reclaim (paper's
/// choice) vs re-materialising cleaned pages as clean copies.
pub fn ablation_reclaim(cfg: &ExpConfig) -> Vec<Row> {
    ablation(
        cfg,
        "ablation_reclaim",
        vec![
            ("simple-reclaim", Box::new(|_c: &mut KddConfig| {})),
            ("reclaim-as-clean", Box::new(|c: &mut KddConfig| c.reclaim_as_clean = true)),
        ],
    )
}

/// Ablation: NVRAM metadata batching (the circular-log design) vs a
/// metadata page write per mapping change (§III-B's motivation).
pub fn ablation_metalog(cfg: &ExpConfig) -> Vec<Row> {
    ablation(
        cfg,
        "ablation_metalog",
        vec![
            ("nvram-batched", Box::new(|_c: &mut KddConfig| {})),
            ("unbatched", Box::new(|c: &mut KddConfig| c.nvram_batching = false)),
        ],
    )
}

/// Extension study: LARC-style lazy admission on top of KDD (§V-C calls
/// the selective-allocation family "complementary to our KDD").
pub fn ablation_admission(cfg: &ExpConfig) -> Vec<Row> {
    ablation(
        cfg,
        "ablation_admission",
        vec![
            ("always-admit", Box::new(|_c: &mut KddConfig| {})),
            ("lazy-admit", Box::new(|c: &mut KddConfig| c.lazy_admission = true)),
        ],
    )
}

/// Ablation: stripe-aligned cache-set placement vs per-page hashing
/// (§III-B's spatial-locality mapping).
pub fn ablation_setmap(cfg: &ExpConfig) -> Vec<Row> {
    ablation(
        cfg,
        "ablation_setmap",
        vec![
            ("stripe-aligned", Box::new(|_c: &mut KddConfig| {})),
            ("page-hashed", Box::new(|c: &mut KddConfig| c.stripe_aligned_sets = false)),
        ],
    )
}

/// Extension study: the small-write penalty doubles from RAID-5 to
/// RAID-6 (2r+2w → 3r+3w), so KDD's delayed parity buys more. The paper
/// covers RAID-5/6 in the design (§III-A) but evaluates RAID-5 only.
pub fn ablation_raid6(cfg: &ExpConfig) -> Vec<Row> {
    let model = ServiceModel::paper_default();
    let levels = [(RaidLevel::Raid5, 5usize), (RaidLevel::Raid6, 6usize)];
    let kinds = [PolicyKind::Nossd, PolicyKind::Wt, PolicyKind::Kdd(0.25)];
    let cells: Vec<((RaidLevel, usize), PolicyKind)> =
        levels.iter().flat_map(|&lv| kinds.iter().map(move |&k| (lv, k))).collect();
    let mut rows: Vec<Row> = cells
        .par_iter()
        .map(|&((level, disks), kind)| {
            let trace = gen(PaperTrace::Fin1, cfg);
            let stats = TraceStats::compute(&trace);
            let cache_pages = (stats.unique_total * 15 / 100).max(256);
            let g = geometry(cache_pages);
            // Same data capacity, one extra parity disk for RAID-6.
            let chunk_pages = 16u64;
            let data_disks = 4u64;
            let disk_pages =
                (trace.address_space_pages().max(1024).div_ceil(data_disks).div_ceil(chunk_pages)
                    + 1)
                    * chunk_pages;
            let raid = RaidModel { layout: Layout::new(level, disks, chunk_pages, disk_pages) };
            let mut p = build_policy(kind, g, raid, cfg.seed);
            let r = replay_open_loop(p.as_mut(), &trace, &model, disks, 1);
            let s = p.stats();
            let disk_ios = (s.raid_reads + s.raid_writes) as f64 / s.requests().max(1) as f64;
            Row::new(
                "ablation_raid6",
                &format!("Fin1/{level:?}"),
                "disks",
                disks as f64,
                &kind.name(),
                vec![
                    ("mean_resp_ms", r.mean_response.as_nanos() as f64 / 1e6),
                    ("disk_ios_per_req", disk_ios),
                    ("hit_pct", r.hit_ratio * 100.0),
                ],
            )
        })
        .collect();
    rows.sort_by_key(|a| (a.workload.clone(), a.policy.clone()));
    rows
}

/// Model-validation study: the algebraic queueing replayer (used for
/// Figure 9) against the discrete-event replayer with per-disk queues and
/// mechanical seek times. Rankings must agree; absolute numbers differ.
pub fn ablation_desmodel(cfg: &ExpConfig) -> Vec<Row> {
    let model = ServiceModel::paper_default();
    let kinds = PolicyKind::latency_set();
    let cells: Vec<(PaperTrace, PolicyKind)> = [PaperTrace::Fin1, PaperTrace::Fin2]
        .iter()
        .flat_map(|&pt| kinds.iter().map(move |&k| (pt, k)))
        .collect();
    let mut rows: Vec<Row> = cells
        .par_iter()
        .map(|&(pt, kind)| {
            let trace = gen(pt, cfg);
            let stats = TraceStats::compute(&trace);
            let cache_pages = (stats.unique_total * 15 / 100).max(256);
            let g = geometry(cache_pages);
            let raid = raid_for(&trace);
            let layout = raid.layout;
            let mut p1 = build_policy(kind, g, raid, cfg.seed);
            let alg = replay_open_loop(p1.as_mut(), &trace, &model, layout.disks, 1);
            let mut p2 = build_policy(kind, g, raid, cfg.seed);
            let des = kdd_sim::des::replay_des(p2.as_mut(), &trace, &layout, &model);
            Row::new(
                "ablation_desmodel",
                pt.name(),
                "cache_kpages",
                cache_pages as f64 / 1000.0,
                &kind.name(),
                vec![
                    ("algebraic_ms", alg.mean_response.as_nanos() as f64 / 1e6),
                    ("des_ms", des.mean_response.as_nanos() as f64 / 1e6),
                    ("des_p99_ms", des.p99.as_nanos() as f64 / 1e6),
                    ("des_queue_depth", des.mean_queue_depth),
                ],
            )
        })
        .collect();
    rows.sort_by_key(|a| (a.workload.clone(), a.policy.clone()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig { scale: 2000, seed: 42 }
    }

    #[test]
    fn table1_reports_all_traces() {
        let rows = table1(&tiny());
        assert_eq!(rows.len(), 4);
        let fin1 = rows.iter().find(|r| r.workload == "Fin1").unwrap();
        assert!((fin1.metric("read_ratio").unwrap() - 0.19).abs() < 0.02);
    }

    #[test]
    fn fig4_metadata_shrinks_with_partition() {
        let rows = fig4(&tiny());
        // For each (workload, cache) group the metadata share must not
        // grow as the partition grows.
        for wl in ["Fin1", "Fin2", "Hm0", "Web0"] {
            let mut group: Vec<&Row> = rows.iter().filter(|r| r.workload == wl).collect();
            group.sort_by_key(|a| (a.policy.clone(), (a.x * 100.0) as i64));
            for pair in group.windows(2) {
                if pair[0].policy == pair[1].policy {
                    let m0 = pair[0].metric("metadata_pct").unwrap();
                    let m1 = pair[1].metric("metadata_pct").unwrap();
                    assert!(m1 <= m0 + 0.5, "{wl}/{}: {m0} -> {m1}", pair[0].policy);
                }
            }
        }
    }

    #[test]
    fn fig6_traffic_ordering_holds() {
        // Needs real cache pressure: at very small scales the floor cache
        // of 256 pages swallows the whole working set.
        let cfg = ExpConfig { scale: 500, seed: 42 };
        let rows = fig6(&cfg);
        // At the largest cache, on each write-dominant trace:
        // LeavO > WT > KDD-50 > KDD-25 > KDD-12 > WA.
        for wl in ["Fin1", "Hm0"] {
            let max_x = rows
                .iter()
                .filter(|r| r.workload == wl)
                .map(|r| (r.x * 1000.0) as i64)
                .max()
                .unwrap();
            let get = |p: &str| {
                rows.iter()
                    .find(|r| r.workload == wl && r.policy == p && ((r.x * 1000.0) as i64) == max_x)
                    .and_then(|r| r.metric("ssd_write_mib"))
                    .unwrap()
            };
            // WT / KDD-50 / LeavO cluster within a few percent (KDD-50's
            // savings are marginal; see EXPERIMENTS.md): require the
            // ordering up to a few percent tolerance, strict for the rest.
            assert!(
                get("LeavO") > get("WT") * 0.98,
                "{wl}: LeavO {} vs WT {}",
                get("LeavO"),
                get("WT")
            );
            assert!(
                get("WT") > get("KDD-50%") * 0.95,
                "{wl}: WT {} vs KDD-50 {}",
                get("WT"),
                get("KDD-50%")
            );
            assert!(get("KDD-50%") > get("KDD-25%"), "{wl}");
            assert!(get("KDD-25%") > get("KDD-12%"), "{wl}");
            assert!(get("KDD-12%") > get("WA"), "{wl}");
        }
    }

    #[test]
    fn fig10_kdd_beats_nossd_everywhere() {
        let rows = fig10(&ExpConfig { scale: 4096, seed: 7 });
        for rate in FIO_READ_RATES {
            let get = |p: &str| {
                rows.iter()
                    .find(|r| r.policy == p && (r.x - rate).abs() < 1e-9)
                    .and_then(|r| r.metric("mean_resp_ms"))
                    .unwrap()
            };
            assert!(get("KDD-25%") < get("Nossd"), "rate {rate}");
            assert!(get("KDD-25%") < get("WT"), "rate {rate}");
        }
    }

    #[test]
    fn ablations_produce_contrasts() {
        let cfg = tiny();
        let metalog = ablation_metalog(&cfg);
        for wl in ["Fin1", "Web0"] {
            let get = |v: &str, m: &str| {
                metalog
                    .iter()
                    .find(|r| r.workload == wl && r.policy == v)
                    .and_then(|r| r.metric(m))
                    .unwrap()
            };
            assert!(
                get("unbatched", "metadata_pct") > get("nvram-batched", "metadata_pct"),
                "{wl}: batching must cut metadata traffic"
            );
        }
        let zoning = ablation_zoning(&cfg);
        assert_eq!(zoning.len(), 6);
        let reclaim = ablation_reclaim(&cfg);
        assert_eq!(reclaim.len(), 4);
    }

    #[test]
    fn des_and_algebraic_rank_policies_identically() {
        let rows = ablation_desmodel(&ExpConfig { scale: 2000, seed: 42 });
        for wl in ["Fin1", "Fin2"] {
            let mut alg: Vec<(String, f64)> = rows
                .iter()
                .filter(|r| r.workload == wl)
                .map(|r| (r.policy.clone(), r.metric("algebraic_ms").unwrap()))
                .collect();
            let mut des: Vec<(String, f64)> = rows
                .iter()
                .filter(|r| r.workload == wl)
                .map(|r| (r.policy.clone(), r.metric("des_ms").unwrap()))
                .collect();
            alg.sort_by(|a, b| a.1.total_cmp(&b.1));
            des.sort_by(|a, b| a.1.total_cmp(&b.1));
            let a_names: Vec<&String> = alg.iter().map(|(n, _)| n).collect();
            let d_names: Vec<&String> = des.iter().map(|(n, _)| n).collect();
            // The cheapest and most expensive policies must agree; middle
            // ranks may swap within noise.
            assert_eq!(a_names[0], d_names[0], "{wl}: fastest policy disagrees");
            assert_eq!(a_names.last(), d_names.last(), "{wl}: slowest policy disagrees");
        }
    }

    #[test]
    fn raid6_widens_kdds_member_io_advantage() {
        let rows = ablation_raid6(&tiny());
        let get = |wl: &str, p: &str, m: &str| {
            rows.iter()
                .find(|r| r.workload == wl && r.policy == p)
                .and_then(|r| r.metric(m))
                .unwrap()
        };
        // Latency: KDD beats WT on both levels.
        assert!(
            get("Fin1/Raid5", "KDD-25%", "mean_resp_ms") < get("Fin1/Raid5", "WT", "mean_resp_ms")
        );
        assert!(
            get("Fin1/Raid6", "KDD-25%", "mean_resp_ms") < get("Fin1/Raid6", "WT", "mean_resp_ms")
        );
        // Member I/O: the small-write tax WT pays grows with the parity
        // count (2r+2w → 3r+3w), while KDD's write-hit cost stays one
        // member write — so the saved I/Os per request must grow.
        let save5 = get("Fin1/Raid5", "WT", "disk_ios_per_req")
            - get("Fin1/Raid5", "KDD-25%", "disk_ios_per_req");
        let save6 = get("Fin1/Raid6", "WT", "disk_ios_per_req")
            - get("Fin1/Raid6", "KDD-25%", "disk_ios_per_req");
        assert!(save5 > 0.0, "no RAID-5 saving: {save5}");
        assert!(save6 > save5, "RAID-6 must widen the saving: {save5} vs {save6}");
    }
}
