//! Microbenchmarks of the hot kernels: the delta codec, XOR/parity math,
//! the FTL write path, and the cache directory — the building blocks
//! whose speed the §IV-B2 latency argument rests on ("it takes only tens
//! of microseconds to decompress the delta and combine it with the
//! data").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use kdd_blockdev::flash::{FlashGeometry, FlashTimings};
use kdd_blockdev::ftl::Ftl;
use kdd_cache::setassoc::{CacheGeometry, PageState, SetAssocCache};
use kdd_delta::codec::{compress, decompress};
use kdd_delta::content::PageMutator;
use kdd_delta::xor::{xor_into, xor_pages};
use kdd_raid::gf256;

fn bench_delta_codec(c: &mut Criterion) {
    let mut m = PageMutator::new(4096, 0.10, 64, 7);
    let p0 = m.initial_page();
    let p1 = m.mutate(&p0);
    let delta = xor_pages(&p0, &p1);
    let compressed = compress(&delta);

    let mut g = c.benchmark_group("delta_codec");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("compress_4k_delta", |b| b.iter(|| compress(std::hint::black_box(&delta))));
    g.bench_function("decompress_4k_delta", |b| {
        b.iter(|| decompress(std::hint::black_box(&compressed)).unwrap())
    });
    g.bench_function("xor_4k", |b| {
        b.iter_batched(
            || p0.clone(),
            |mut buf| xor_into(&mut buf, std::hint::black_box(&p1)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_parity_math(c: &mut Criterion) {
    let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let mut g = c.benchmark_group("parity");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("gf256_mul_slice_4k", |b| {
        b.iter_batched(
            || vec![0u8; 4096],
            |mut q| gf256::mul_slice_into(&mut q, std::hint::black_box(&data), 0x1d),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ftl(c: &mut Criterion) {
    let mut grp = c.benchmark_group("ftl");
    grp.bench_function("overwrite_churn_with_gc", |b| {
        b.iter_batched(
            || {
                let g = FlashGeometry {
                    channels: 4,
                    dies_per_channel: 1,
                    blocks_per_die: 64,
                    pages_per_block: 64,
                    page_size: 4096,
                };
                let mut f = Ftl::new(g, FlashTimings::mlc_default(), 0.15);
                for lpn in 0..f.logical_pages() {
                    f.write(lpn).unwrap();
                }
                f
            },
            |mut f| {
                for i in 0..4096u64 {
                    f.write(i % 512).unwrap();
                }
            },
            BatchSize::LargeInput,
        )
    });
    grp.finish();
}

fn bench_cache_directory(c: &mut Criterion) {
    let mut grp = c.benchmark_group("cache_directory");
    grp.bench_function("lookup_touch_hot", |b| {
        let g = CacheGeometry { total_pages: 65_536, ways: 64, page_size: 4096 };
        let mut cache = SetAssocCache::new(g, 64);
        for lba in 0..60_000u64 {
            cache.insert(lba, PageState::Clean, |s| s == PageState::Clean);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 60_000;
            if let Some(slot) = cache.lookup(std::hint::black_box(i)) {
                cache.touch(slot);
            }
        })
    });
    grp.finish();
}

criterion_group!(kernels, bench_delta_codec, bench_parity_math, bench_ftl, bench_cache_directory);
criterion_main!(kernels);
