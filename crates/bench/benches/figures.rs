//! Criterion benches: one per table/figure (and per ablation), each
//! timing the regeneration of that artifact at reduced scale. `cargo
//! bench` therefore re-runs the entire evaluation and `target/criterion`
//! keeps the history.

use criterion::{criterion_group, criterion_main, Criterion};
use kdd_bench::*;

fn cfg() -> ExpConfig {
    // Small but non-degenerate: thousands of requests per cell.
    ExpConfig { scale: 2000, seed: 42 }
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_trace_stats", |b| b.iter(|| table1(&cfg())));
    g.bench_function("table2_policy_summary", |b| b.iter(|| table2(&cfg())));
    g.finish();
}

fn bench_simulation_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("fig4_metadata_sweep", |b| b.iter(|| fig4(&cfg())));
    g.bench_function("fig5_hitratio_write", |b| b.iter(|| fig5(&cfg())));
    g.bench_function("fig6_traffic_write", |b| b.iter(|| fig6(&cfg())));
    g.bench_function("fig7_hitratio_read", |b| b.iter(|| fig7(&cfg())));
    g.bench_function("fig8_traffic_read", |b| b.iter(|| fig8(&cfg())));
    g.finish();
}

fn bench_latency_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency");
    g.sample_size(10);
    g.bench_function("fig9_replay_latency", |b| b.iter(|| fig9(&cfg())));
    g.bench_function("fig10_fio_latency", |b| b.iter(|| fig10(&cfg())));
    g.bench_function("fig11_fio_traffic", |b| b.iter(|| fig11(&cfg())));
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("ablation_zoning", |b| b.iter(|| ablation_zoning(&cfg())));
    g.bench_function("ablation_reclaim", |b| b.iter(|| ablation_reclaim(&cfg())));
    g.bench_function("ablation_metalog", |b| b.iter(|| ablation_metalog(&cfg())));
    g.bench_function("ablation_setmap", |b| b.iter(|| ablation_setmap(&cfg())));
    g.bench_function("ablation_admission", |b| b.iter(|| ablation_admission(&cfg())));
    g.bench_function("ablation_raid6", |b| b.iter(|| ablation_raid6(&cfg())));
    g.bench_function("ablation_desmodel", |b| b.iter(|| ablation_desmodel(&cfg())));
    g.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_simulation_figures,
    bench_latency_figures,
    bench_ablations
);
criterion_main!(figures);
