//! Property tests: the SPC/MSR writers and parsers round-trip arbitrary
//! traces, and the parsers never panic on hostile input.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use kdd_trace::record::{Op, Trace, TraceRecord};
use kdd_trace::{msr, spc, writer};
use kdd_util::units::SimTime;
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (0u64..1 << 30, 1u32..16, any::<bool>(), 0u64..1 << 40).prop_map(|(lba, len, read, ns)| {
        TraceRecord {
            time: SimTime::from_nanos(ns / 100 * 100), // MSR tick granularity
            op: if read { Op::Read } else { Op::Write },
            lba,
            len,
        }
    })
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(record_strategy(), 0..60).prop_map(|mut records| {
        records.sort_by_key(|r| r.time);
        Trace { records, page_size: 4096 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spc_write_parse_roundtrip(trace in trace_strategy()) {
        let mut buf = Vec::new();
        writer::write_spc(&trace, &mut buf).unwrap();
        let parsed = spc::parse(std::io::Cursor::new(&buf), 4096).unwrap();
        prop_assert_eq!(parsed.len(), trace.len());
        for (a, b) in trace.records.iter().zip(&parsed.records) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.lba, b.lba);
            prop_assert_eq!(a.len, b.len);
            // SPC carries seconds with 6 decimals: microsecond precision.
            prop_assert!(a.time.as_nanos().abs_diff(b.time.as_nanos()) <= 1_000);
        }
    }

    #[test]
    fn msr_write_parse_roundtrip(trace in trace_strategy()) {
        let mut buf = Vec::new();
        writer::write_msr(&trace, &mut buf).unwrap();
        let parsed = msr::parse(std::io::Cursor::new(&buf), 4096, None).unwrap();
        prop_assert_eq!(parsed.len(), trace.len());
        for (a, b) in trace.records.iter().zip(&parsed.records) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.lba, b.lba);
            prop_assert_eq!(a.len, b.len);
            // The parser rebases to the first record's tick; relative
            // times survive at 100ns resolution.
            let base_a = trace.records[0].time;
            let base_b = parsed.records[0].time;
            let rel_a = a.time.saturating_sub(base_a).as_nanos();
            let rel_b = b.time.saturating_sub(base_b).as_nanos();
            prop_assert!(rel_a.abs_diff(rel_b) <= 100);
        }
    }

    /// Arbitrary garbage never panics the parsers — it errors or parses.
    #[test]
    fn parsers_are_total(junk in proptest::collection::vec(any::<u8>(), 0..500)) {
        let _ = spc::parse(std::io::Cursor::new(&junk), 4096);
        let _ = msr::parse(std::io::Cursor::new(&junk), 4096, None);
    }

    /// Structured-but-wrong lines produce errors with line numbers.
    #[test]
    fn bad_lines_report_position(good_lines in 0usize..5) {
        let mut text = String::new();
        for i in 0..good_lines {
            text.push_str(&format!("0,{},4096,w,{}.0\n", i * 8, i));
        }
        text.push_str("0,NOT_A_NUMBER,4096,w,9.0\n");
        let err = spc::parse(std::io::Cursor::new(text.as_bytes()), 4096).unwrap_err();
        prop_assert_eq!(err.line, good_lines + 1);
    }
}
