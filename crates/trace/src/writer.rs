//! Trace serialisers: write a [`Trace`] back out in the SPC or
//! MSR-Cambridge on-disk formats, so synthetic workloads can be consumed
//! by external tools (or re-parsed — the parsers and writers round-trip).

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use crate::record::{Op, Trace};
use std::io::{self, Write};

/// Bytes per SPC logical block.
const SPC_BLOCK: u64 = 512;

/// Write `trace` in the SPC format (`ASU,LBA,Size,Opcode,Timestamp`).
///
/// Page-granular records become block-granular: LBA in 512-byte units,
/// size in bytes. ASU is always 0 (the parsers fold ASUs into one space).
pub fn write_spc<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let pp = trace.page_size as u64;
    for r in &trace.records {
        let lba_blocks = r.lba * pp / SPC_BLOCK;
        let size = r.len as u64 * pp;
        let op = match r.op {
            Op::Read => 'r',
            Op::Write => 'w',
        };
        writeln!(w, "0,{},{},{},{:.6}", lba_blocks, size, op, r.time.as_secs_f64())?;
    }
    Ok(())
}

/// Write `trace` in the MSR-Cambridge format
/// (`Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`).
///
/// Timestamps are emitted as Windows filetime ticks with an arbitrary
/// epoch (the parser rebases to the first record anyway).
pub fn write_msr<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let pp = trace.page_size as u64;
    const EPOCH_TICKS: u64 = 128_166_372_000_000_000;
    for r in &trace.records {
        let ticks = EPOCH_TICKS + r.time.as_nanos() / 100;
        let op = match r.op {
            Op::Read => "Read",
            Op::Write => "Write",
        };
        writeln!(w, "{},synth,0,{},{},{},0", ticks, op, r.lba * pp, r.len as u64 * pp)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use crate::synth::PaperTrace;
    use crate::{msr, spc};
    use kdd_util::units::SimTime;

    #[test]
    fn spc_roundtrip_exact() {
        let trace = PaperTrace::Fin2.generate_scaled(4000, 9);
        let mut buf = Vec::new();
        write_spc(&trace, &mut buf).unwrap();
        let parsed = spc::parse(std::io::Cursor::new(&buf), trace.page_size).unwrap();
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in trace.records.iter().zip(&parsed.records) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.len, b.len);
            // Timestamps survive to microsecond precision.
            assert!(a.time.as_nanos().abs_diff(b.time.as_nanos()) <= 1_000);
        }
    }

    #[test]
    fn msr_roundtrip_exact() {
        let trace = PaperTrace::Hm0.generate_scaled(8000, 5);
        let mut buf = Vec::new();
        write_msr(&trace, &mut buf).unwrap();
        let parsed = msr::parse(std::io::Cursor::new(&buf), trace.page_size, None).unwrap();
        assert_eq!(parsed.len(), trace.len());
        // The MSR parser rebases timestamps to the first record, so
        // compare relative times (100 ns tick resolution).
        let base_a = trace.records[0].time;
        let base_b = parsed.records[0].time;
        for (a, b) in trace.records.iter().zip(&parsed.records) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.len, b.len);
            let rel_a = a.time.saturating_sub(base_a).as_nanos();
            let rel_b = b.time.saturating_sub(base_b).as_nanos();
            assert!(rel_a.abs_diff(rel_b) <= 100);
        }
    }

    #[test]
    fn multi_page_records_roundtrip() {
        let mut t = Trace::new(4096);
        t.records.push(TraceRecord {
            time: SimTime::from_millis(1),
            op: Op::Write,
            lba: 5,
            len: 3,
        });
        t.records.push(TraceRecord { time: SimTime::from_millis(2), op: Op::Read, lba: 0, len: 1 });
        let mut buf = Vec::new();
        write_spc(&t, &mut buf).unwrap();
        let parsed = spc::parse(std::io::Cursor::new(&buf), 4096).unwrap();
        assert_eq!(parsed.records[0].len, 3);
        assert_eq!(parsed.records[0].lba, 5);
    }
}
