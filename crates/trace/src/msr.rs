//! Parser for MSR-Cambridge trace files (the Hm0/Web0 volumes).
//!
//! Each line is
//! `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`:
//!
//! * `Timestamp` — Windows filetime (100 ns ticks since 1601);
//! * `Type` — `Read`/`Write`;
//! * `Offset`, `Size` — bytes;
//! * `ResponseTime` — ignored (we re-simulate timing ourselves).
//!
//! The first record's timestamp is treated as trace start. An optional
//! disk filter selects one volume (the paper uses volume 0 of each
//! server).

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::record::{Op, Trace, TraceRecord};
use crate::spc::ParseError;
use kdd_util::units::SimTime;
use std::io::BufRead;

/// Parse an MSR-Cambridge trace.
///
/// `disk_filter` keeps only records of that disk number (None = all).
pub fn parse<R: BufRead>(
    reader: R,
    page_size: u32,
    disk_filter: Option<u32>,
) -> Result<Trace, ParseError> {
    let mut trace = Trace::new(page_size);
    let pp = page_size as u64;
    let mut t0: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseError { line: lineno, message: e.to_string() })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split(',').map(str::trim).collect();
        if f.len() < 6 {
            return Err(ParseError {
                line: lineno,
                message: format!("expected 6+ fields, got {}", f.len()),
            });
        }
        let ticks: u64 = f[0]
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad timestamp: {e}") })?;
        let disk: u32 = f[2]
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad disk number: {e}") })?;
        if disk_filter.is_some_and(|d| d != disk) {
            continue;
        }
        let op = match f[3] {
            "Read" | "read" | "R" | "r" => Op::Read,
            "Write" | "write" | "W" | "w" => Op::Write,
            other => {
                return Err(ParseError { line: lineno, message: format!("bad type {other:?}") })
            }
        };
        let offset: u64 = f[4]
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad offset: {e}") })?;
        let size: u64 = f[5]
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad size: {e}") })?;

        let start = *t0.get_or_insert(ticks);
        let rel_ns = ticks.saturating_sub(start) * 100; // 100ns ticks → ns
        let first_page = offset / pp;
        let last_page = (offset + size.max(1) - 1) / pp;
        trace.records.push(TraceRecord {
            time: SimTime::from_nanos(rel_ns),
            op,
            lba: first_page,
            len: (last_page - first_page + 1) as u32,
        });
    }
    trace.sort_by_time();
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
128166372003061629,hm,0,Read,383496192,32768,413
128166372016382155,hm,0,Write,2822144,4096,388
128166372026382245,hm,1,Read,0,512,100
";

    #[test]
    fn parses_and_rebases_time() {
        let t = parse(Cursor::new(SAMPLE), 4096, None).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.records[0].time, SimTime::ZERO);
        // (016382155-003061629)*100ns
        assert_eq!(t.records[1].time.as_nanos(), 13_320_526 * 100);
        assert_eq!(t.records[0].lba, 383496192 / 4096);
        assert_eq!(t.records[0].len, 8);
        assert_eq!(t.records[1].op, Op::Write);
    }

    #[test]
    fn disk_filter_selects_volume() {
        let t = parse(Cursor::new(SAMPLE), 4096, Some(0)).unwrap();
        assert_eq!(t.len(), 2);
        let t1 = parse(Cursor::new(SAMPLE), 4096, Some(1)).unwrap();
        assert_eq!(t1.len(), 1);
        assert_eq!(t1.records[0].len, 1); // 512B rounds up to one page
    }

    #[test]
    fn rejects_short_lines() {
        let err = parse(Cursor::new("1,hm,0,Read,0"), 4096, None).unwrap_err();
        assert!(err.message.contains("fields"));
    }

    #[test]
    fn rejects_bad_type() {
        assert!(parse(Cursor::new("1,hm,0,Delete,0,512,1"), 4096, None).is_err());
    }
}
