//! The uniform trace format every parser and generator produces.
//!
//! "The simulator first converts raw traces into a uniform format and then
//! processes trace requests one by one according to the timestamp of each
//! request" (§IV-A1). Addresses are page-granular (4 KiB by default) —
//! multi-page requests carry a length and the consumer expands them.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use kdd_util::units::SimTime;
use serde::{Deserialize, Serialize};

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Read request.
    Read,
    /// Write request.
    Write,
}

/// One block-level request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time relative to trace start.
    pub time: SimTime,
    /// Read or write.
    pub op: Op,
    /// First page touched.
    pub lba: u64,
    /// Pages touched (>= 1).
    pub len: u32,
}

impl TraceRecord {
    /// The pages this request touches.
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.lba..self.lba + self.len as u64
    }
}

/// An in-memory trace: records sorted by arrival time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The requests, in time order.
    pub records: Vec<TraceRecord>,
    /// Page size the LBAs are expressed in.
    pub page_size: u32,
}

impl Trace {
    /// Create an empty trace with the given page size.
    pub fn new(page_size: u32) -> Self {
        Trace { records: Vec::new(), page_size }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Trace duration (arrival of the last request).
    pub fn duration(&self) -> SimTime {
        self.records.last().map_or(SimTime::ZERO, |r| r.time)
    }

    /// Largest page number touched plus one (address-space size).
    pub fn address_space_pages(&self) -> u64 {
        self.records.iter().map(|r| r.lba + r.len as u64).max().unwrap_or(0)
    }

    /// Ensure time-ordering (parsers call this defensively).
    pub fn sort_by_time(&mut self) {
        self.records.sort_by_key(|r| r.time);
    }

    /// Keep only the first `n` requests (for scaled-down experiments).
    pub fn truncate(&mut self, n: usize) {
        self.records.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_expand_length() {
        let r = TraceRecord { time: SimTime::ZERO, op: Op::Write, lba: 10, len: 3 };
        assert_eq!(r.pages().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn trace_helpers() {
        let mut t = Trace::new(4096);
        assert!(t.is_empty());
        t.records.push(TraceRecord {
            time: SimTime::from_millis(5),
            op: Op::Read,
            lba: 100,
            len: 2,
        });
        t.records.push(TraceRecord {
            time: SimTime::from_millis(2),
            op: Op::Write,
            lba: 7,
            len: 1,
        });
        t.sort_by_time();
        assert_eq!(t.records[0].lba, 7);
        assert_eq!(t.duration(), SimTime::from_millis(5));
        assert_eq!(t.address_space_pages(), 102);
        assert_eq!(t.len(), 2);
        t.truncate(1);
        assert_eq!(t.len(), 1);
    }
}
