//! Workload substrate: block-trace records, on-disk trace parsers,
//! synthetic regenerators of the paper's traces, and the FIO-style
//! closed-loop generator.
//!
//! The paper evaluates on four block traces (Table I): the two UMass/SPC
//! financial OLTP traces (Fin1, Fin2) and two MSR-Cambridge volumes (Hm0,
//! Web0), plus FIO Zipfian synthetic load (§IV-B3). The original trace
//! files are not redistributable, so this crate provides **both** real
//! parsers for the published formats ([`spc`], [`msr`]) and synthetic
//! regenerators ([`synth`]) whose output matches Table I's marginal
//! statistics — unique pages (total/read/write), request counts, and read
//! ratio — with Zipf-skewed reuse and run-length spatial locality. The
//! cache policies only observe `(time, op, lba, len)`, so matching those
//! statistics preserves the *relative* behaviour of the policies, which is
//! what every figure reports.

#![warn(missing_docs)]

pub mod fio;
pub mod msr;
pub mod record;
pub mod spc;
pub mod stats;
pub mod synth;
pub mod writer;

pub use fio::FioWorkload;
pub use record::{Op, Trace, TraceRecord};
pub use stats::TraceStats;
pub use synth::{PaperTrace, SynthSpec};
