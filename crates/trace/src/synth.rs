//! Synthetic regenerators of the paper's four traces.
//!
//! The UMass and MSR trace files cannot ship with this repository, so we
//! regenerate workloads that match everything Table I reports about them:
//! unique pages touched (total / by reads / by writes), request counts,
//! and read ratio — with Zipf-skewed popularity for temporal locality and
//! clustered page allocation for spatial locality.
//!
//! Mechanism: reads draw from a read population, writes from a write
//! population, with the two populations overlapping by exactly
//! `unique_read + unique_write − unique_total` pages. A stream touches a
//! *new* page with probability `remaining_new / remaining_requests`
//! (forced when they become equal), which lands the unique-page counts
//! exactly; re-references pick an already-touched page with Zipf(rank)
//! popularity. New pages are allocated in sequential clusters of 8 whose
//! cluster order is a pseudo-random permutation — sequential runs exist
//! (spatial locality) but the address space is covered irregularly.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::record::{Op, Trace, TraceRecord};
use kdd_util::rng::{derive_seed, seeded_rng};
use kdd_util::sampler::Zipf;
use kdd_util::units::SimTime;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Pages allocated consecutively per "extent" (spatial locality knob).
const CLUSTER_PAGES: u64 = 8;

/// Everything needed to regenerate one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Human-readable name (e.g. "Fin1").
    pub name: &'static str,
    /// Unique pages read at least once.
    pub unique_read: u64,
    /// Unique pages written at least once.
    pub unique_write: u64,
    /// Unique pages touched at all (≤ read + write; the difference is the
    /// read/write overlap).
    pub unique_total: u64,
    /// Total read requests.
    pub read_requests: u64,
    /// Total write requests.
    pub write_requests: u64,
    /// Zipf exponent for read re-references.
    pub read_theta: f64,
    /// Zipf exponent for write re-references.
    pub write_theta: f64,
    /// Mean arrival rate (requests/second) for timestamp synthesis.
    pub mean_iops: f64,
}

impl SynthSpec {
    /// Scale all counts down by `factor` (≥ 1), keeping ratios.
    pub fn scaled(&self, factor: u64) -> SynthSpec {
        assert!(factor >= 1);
        let f = |x: u64| (x / factor).max(1);
        let mut s = self.clone();
        s.unique_read = f(self.unique_read);
        s.unique_write = f(self.unique_write);
        s.unique_total = f(self.unique_total)
            .max(s.unique_read.max(s.unique_write))
            .min(s.unique_read + s.unique_write);
        s.read_requests = f(self.read_requests).max(s.unique_read);
        s.write_requests = f(self.write_requests).max(s.unique_write);
        s
    }

    /// Read fraction of all requests.
    pub fn read_ratio(&self) -> f64 {
        self.read_requests as f64 / (self.read_requests + self.write_requests) as f64
    }

    /// Generate the trace.
    ///
    /// # Panics
    /// Panics if the spec is inconsistent (unique counts exceeding request
    /// counts or total outside the overlap bounds).
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.unique_read <= self.read_requests, "more unique reads than reads");
        assert!(self.unique_write <= self.write_requests, "more unique writes than writes");
        assert!(self.unique_total <= self.unique_read + self.unique_write);
        assert!(self.unique_total >= self.unique_read.max(self.unique_write));

        let overlap = self.unique_read + self.unique_write - self.unique_total;
        let mut rng = seeded_rng(derive_seed(seed, self.name));

        // Address mapping: shared ranks [0, overlap), read-only follows,
        // then write-only; rank → page via clustered permutation.
        let read_pop = RankMapper::new(self.unique_read, self.unique_total);
        let write_pop = RankMapper::with_offset(
            overlap,
            self.unique_read,
            self.unique_write,
            self.unique_total,
        );

        let mut read_stream = Stream::new(self.unique_read, self.read_requests, self.read_theta);
        let mut write_stream =
            Stream::new(self.unique_write, self.write_requests, self.write_theta);

        let total = self.read_requests + self.write_requests;
        let mut trace = Trace::new(4096);
        trace.records.reserve(total as usize);
        let mut remaining_reads = self.read_requests;
        let mut remaining_writes = self.write_requests;
        let mut now_ns: u64 = 0;
        let mean_gap_ns = (1e9 / self.mean_iops.max(1.0)) as u64;

        for _ in 0..total {
            let is_read = if remaining_reads == 0 {
                false
            } else if remaining_writes == 0 {
                true
            } else {
                (rng.random_range(0..remaining_reads + remaining_writes)) < remaining_reads
            };
            let (stream, pop) = if is_read {
                remaining_reads -= 1;
                (&mut read_stream, &read_pop)
            } else {
                remaining_writes -= 1;
                (&mut write_stream, &write_pop)
            };
            let rank = stream.next_rank(&mut rng);
            let lba = pop.page_of(rank);
            // Exponential interarrival.
            let u: f64 = rng.random::<f64>().max(1e-12);
            now_ns += ((-u.ln()) * mean_gap_ns as f64) as u64;
            trace.records.push(TraceRecord {
                time: SimTime::from_nanos(now_ns),
                op: if is_read { Op::Read } else { Op::Write },
                lba,
                len: 1,
            });
        }
        trace
    }
}

/// Maps popularity ranks of one stream to page numbers, clustering
/// consecutive ranks into sequential extents scattered over the space.
struct RankMapper {
    /// rank < overlap_len maps into the shared region directly; the rest
    /// is offset into this stream's private region.
    overlap_len: u64,
    private_base: u64,
    clusters: u64,
    stride: u64,
    total_pages: u64,
}

impl RankMapper {
    /// Reads: ranks [0, unique_read) = shared ∪ read-only = first
    /// `unique_read` ids.
    fn new(unique: u64, total: u64) -> Self {
        let full = total / CLUSTER_PAGES;
        RankMapper {
            overlap_len: unique,
            private_base: 0,
            clusters: full,
            stride: Self::coprime_stride(full.max(1)),
            total_pages: total,
        }
    }

    /// Writes: ranks [0, overlap) map to shared ids [0, overlap); ranks
    /// beyond map to write-only ids starting at `unique_read`.
    fn with_offset(overlap: u64, read_unique: u64, _unique: u64, total: u64) -> Self {
        let full = total / CLUSTER_PAGES;
        RankMapper {
            overlap_len: overlap,
            private_base: read_unique,
            clusters: full,
            stride: Self::coprime_stride(full.max(1)),
            total_pages: total,
        }
    }

    fn coprime_stride(n: u64) -> u64 {
        // Odd constant near the golden ratio of n, adjusted until coprime.
        let mut s = ((n as f64 * 0.6180339887) as u64) | 1;
        fn gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        while gcd(s.max(1), n) != 1 {
            s += 2;
        }
        s.max(1)
    }

    /// Page number for popularity rank `r` (0-based). The map is a
    /// bijection on `[0, total_pages)`: full clusters are permuted among
    /// themselves by a coprime stride, the partial tail stays in place.
    fn page_of(&self, r: u64) -> u64 {
        let id = if r < self.overlap_len { r } else { self.private_base + (r - self.overlap_len) };
        debug_assert!(id < self.total_pages);
        let cluster = id / CLUSTER_PAGES;
        let within = id % CLUSTER_PAGES;
        if cluster < self.clusters {
            let scattered = (cluster.wrapping_mul(self.stride)) % self.clusters;
            scattered * CLUSTER_PAGES + within
        } else {
            id
        }
    }
}

/// One request stream (reads or writes) hitting exact unique counts.
struct Stream {
    unique_target: u64,
    touched: u64,
    remaining_requests: u64,
    theta: f64,
    zipf: Option<Zipf>,
    zipf_size: u64,
}

impl Stream {
    fn new(unique_target: u64, requests: u64, theta: f64) -> Self {
        Stream {
            unique_target,
            touched: 0,
            remaining_requests: requests,
            theta,
            zipf: None,
            zipf_size: 0,
        }
    }

    fn next_rank<R: Rng>(&mut self, rng: &mut R) -> u64 {
        debug_assert!(self.remaining_requests > 0);
        let remaining_new = self.unique_target - self.touched;
        let take_new = remaining_new > 0
            && (self.touched == 0
                || remaining_new >= self.remaining_requests
                || rng.random_range(0..self.remaining_requests) < remaining_new);
        self.remaining_requests -= 1;
        if take_new {
            let rank = self.touched;
            self.touched += 1;
            rank
        } else {
            // Re-reference: Zipf over the touched set. Rebuild the sampler
            // lazily when the set has grown enough to matter (>25%).
            if self.zipf.is_none() || self.zipf_size * 5 < self.touched * 4 {
                self.zipf = Some(Zipf::new(self.touched.max(1), self.theta));
                self.zipf_size = self.touched.max(1);
            }
            let z = self.zipf.as_ref().unwrap().sample(rng) - 1;
            z.min(self.touched - 1)
        }
    }
}

/// The four traces of Table I, at full published scale.
///
/// # Examples
///
/// ```
/// use kdd_trace::synth::PaperTrace;
/// use kdd_trace::stats::TraceStats;
///
/// // Fin1 at 1/1000 scale: same shape, a few thousand requests.
/// let trace = PaperTrace::Fin1.generate_scaled(1000, 42);
/// let stats = TraceStats::compute(&trace);
/// assert_eq!(stats.unique_total, 993);            // 993k / 1000
/// assert!((stats.read_ratio() - 0.19).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaperTrace {
    /// OLTP financial trace 1 — write-dominant (read ratio 0.19).
    Fin1,
    /// OLTP financial trace 2 — read-dominant (read ratio 0.80).
    Fin2,
    /// MSR-Cambridge hm volume 0 — write-dominant (read ratio 0.33).
    Hm0,
    /// MSR-Cambridge web volume 0 — read-dominant (read ratio 0.59).
    Web0,
}

impl PaperTrace {
    /// All four traces in the paper's order.
    pub const ALL: [PaperTrace; 4] =
        [PaperTrace::Fin1, PaperTrace::Fin2, PaperTrace::Hm0, PaperTrace::Web0];

    /// The write-dominant pair (Figures 5–6).
    pub const WRITE_DOMINANT: [PaperTrace; 2] = [PaperTrace::Fin1, PaperTrace::Hm0];

    /// The read-dominant pair (Figures 7–8).
    pub const READ_DOMINANT: [PaperTrace; 2] = [PaperTrace::Fin2, PaperTrace::Web0];

    /// Table I row for this trace (counts in pages/requests, not
    /// thousands).
    pub fn spec(self) -> SynthSpec {
        match self {
            PaperTrace::Fin1 => SynthSpec {
                name: "Fin1",
                unique_read: 331_000,
                unique_write: 966_000,
                unique_total: 993_000,
                read_requests: 1_339_000,
                write_requests: 5_628_000,
                read_theta: 0.90,
                write_theta: 0.95,
                mean_iops: 160.0,
            },
            PaperTrace::Fin2 => SynthSpec {
                name: "Fin2",
                unique_read: 271_000,
                unique_write: 212_000,
                unique_total: 405_000,
                read_requests: 3_562_000,
                write_requests: 917_000,
                read_theta: 0.95,
                write_theta: 0.90,
                mean_iops: 125.0,
            },
            PaperTrace::Hm0 => SynthSpec {
                name: "Hm0",
                unique_read: 488_000,
                unique_write: 428_000,
                unique_total: 609_000,
                read_requests: 2_880_000,
                write_requests: 5_992_000,
                read_theta: 0.85,
                write_theta: 0.95,
                mean_iops: 15.0,
            },
            PaperTrace::Web0 => SynthSpec {
                name: "Web0",
                // Web0's writes have much stronger temporal locality than
                // its reads (§IV-A3's explanation of Figure 7).
                unique_read: 1_884_000,
                unique_write: 182_000,
                unique_total: 1_913_000,
                read_requests: 4_575_000,
                write_requests: 3_186_000,
                read_theta: 0.70,
                write_theta: 1.25,
                mean_iops: 13.0,
            },
        }
    }

    /// Trace name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Generate at reduced scale (`scale` divides all Table I counts).
    pub fn generate_scaled(self, scale: u64, seed: u64) -> Trace {
        self.spec().scaled(scale).generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn scaled_fin1_matches_table1_shape() {
        let spec = PaperTrace::Fin1.spec().scaled(100);
        let t = spec.generate(42);
        let s = TraceStats::compute(&t);
        assert_eq!(s.read_requests, spec.read_requests);
        assert_eq!(s.write_requests, spec.write_requests);
        assert_eq!(s.unique_read, spec.unique_read, "unique read pages must match exactly");
        assert_eq!(s.unique_write, spec.unique_write);
        assert_eq!(s.unique_total, spec.unique_total);
        assert!((s.read_ratio() - 0.19).abs() < 0.01, "read ratio {}", s.read_ratio());
    }

    #[test]
    fn all_traces_generate_consistently() {
        for pt in PaperTrace::ALL {
            let spec = pt.spec().scaled(400);
            let t = spec.generate(7);
            let s = TraceStats::compute(&t);
            assert_eq!(s.unique_total, spec.unique_total, "{}", pt.name());
            assert_eq!(s.unique_read, spec.unique_read, "{}", pt.name());
            assert_eq!(s.unique_write, spec.unique_write, "{}", pt.name());
            assert!((s.read_ratio() - pt.spec().read_ratio()).abs() < 0.02, "{}", pt.name());
        }
    }

    #[test]
    fn timestamps_monotone() {
        let t = PaperTrace::Fin2.generate_scaled(500, 3);
        for w in t.records.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(t.duration() > SimTime::ZERO);
    }

    #[test]
    fn reuse_is_skewed() {
        // The most popular pages should absorb a disproportionate share of
        // re-references — otherwise there is no cacheable locality.
        let t = PaperTrace::Fin1.generate_scaled(200, 9);
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in &t.records {
            *counts.entry(r.lba).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top1pct: u64 = freqs[..freqs.len() / 100 + 1].iter().sum();
        assert!(
            top1pct as f64 / total as f64 > 0.05,
            "top 1% of pages got only {:.1}% of accesses",
            100.0 * top1pct as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PaperTrace::Hm0.generate_scaled(800, 5);
        let b = PaperTrace::Hm0.generate_scaled(800, 5);
        assert_eq!(a.records, b.records);
        let c = PaperTrace::Hm0.generate_scaled(800, 6);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let full = PaperTrace::Web0.spec();
        let s = full.scaled(50);
        assert!((s.read_ratio() - full.read_ratio()).abs() < 0.01);
        assert!(s.unique_total <= s.unique_read + s.unique_write);
        assert!(s.unique_total >= s.unique_read.max(s.unique_write));
    }

    #[test]
    fn sequential_clusters_exist() {
        // Spatial locality: some touched pages must be adjacent.
        let t = PaperTrace::Fin1.generate_scaled(500, 11);
        let mut pages: Vec<u64> = t.records.iter().map(|r| r.lba).collect();
        pages.sort_unstable();
        pages.dedup();
        let adjacent = pages.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            adjacent as f64 / pages.len() as f64 > 0.3,
            "almost no sequential clustering: {adjacent}/{}",
            pages.len()
        );
    }
}
