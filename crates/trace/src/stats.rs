//! Trace characterisation — reproduces Table I.

use crate::record::{Op, Trace};
use kdd_util::hash::FastSet;
use serde::{Deserialize, Serialize};

/// The statistics Table I reports per workload.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Unique pages touched by any request.
    pub unique_total: u64,
    /// Unique pages touched by reads.
    pub unique_read: u64,
    /// Unique pages touched by writes.
    pub unique_write: u64,
    /// Read request count.
    pub read_requests: u64,
    /// Write request count.
    pub write_requests: u64,
}

impl TraceStats {
    /// Scan a trace and collect Table I statistics.
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut read_pages: FastSet<u64> = FastSet::default();
        let mut write_pages: FastSet<u64> = FastSet::default();
        let mut s = TraceStats::default();
        for r in &trace.records {
            match r.op {
                Op::Read => {
                    s.read_requests += 1;
                    read_pages.extend(r.pages());
                }
                Op::Write => {
                    s.write_requests += 1;
                    write_pages.extend(r.pages());
                }
            }
        }
        s.unique_read = read_pages.len() as u64;
        s.unique_write = write_pages.len() as u64;
        write_pages.extend(read_pages);
        s.unique_total = write_pages.len() as u64;
        s
    }

    /// Read fraction of all requests (Table I's "Read Ratio"). Routed
    /// through [`kdd_obs::frac`] so the empty case is 0.0 uniformly.
    pub fn read_ratio(&self) -> f64 {
        kdd_obs::frac(self.read_requests, self.read_requests + self.write_requests)
    }

    /// Export as a JSON object for `kddtool stats --json`.
    pub fn export(&self, name: &str) -> kdd_obs::Json {
        use kdd_obs::Json;
        kdd_obs::json::obj(vec![
            ("workload", Json::Str(name.to_string())),
            ("unique_total", Json::Num(self.unique_total as f64)),
            ("unique_read", Json::Num(self.unique_read as f64)),
            ("unique_write", Json::Num(self.unique_write as f64)),
            ("read_requests", Json::Num(self.read_requests as f64)),
            ("write_requests", Json::Num(self.write_requests as f64)),
            ("read_ratio", Json::Num(self.read_ratio())),
        ])
    }

    /// Format as a Table I row (counts in thousands, like the paper).
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10.2}",
            name,
            self.unique_total / 1000,
            self.unique_read / 1000,
            self.unique_write / 1000,
            self.read_requests / 1000,
            self.write_requests / 1000,
            self.read_ratio()
        )
    }

    /// The Table I header matching [`TraceStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10}",
            "Workload", "TotalK", "ReadK", "WriteK", "ReadReqK", "WriteReqK", "ReadRatio"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use kdd_util::units::SimTime;

    fn rec(op: Op, lba: u64, len: u32) -> TraceRecord {
        TraceRecord { time: SimTime::ZERO, op, lba, len }
    }

    #[test]
    fn counts_unique_and_requests() {
        let mut t = Trace::new(4096);
        t.records = vec![
            rec(Op::Read, 0, 2),  // pages 0,1
            rec(Op::Read, 1, 1),  // page 1 again
            rec(Op::Write, 1, 2), // pages 1,2
            rec(Op::Write, 9, 1),
        ];
        let s = TraceStats::compute(&t);
        assert_eq!(s.read_requests, 2);
        assert_eq!(s.write_requests, 2);
        assert_eq!(s.unique_read, 2); // {0,1}
        assert_eq!(s.unique_write, 3); // {1,2,9}
        assert_eq!(s.unique_total, 4); // {0,1,2,9}
        assert!((s.read_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&Trace::new(4096));
        assert_eq!(s.unique_total, 0);
        assert_eq!(s.read_ratio(), 0.0);
    }

    #[test]
    fn table_row_formats_thousands() {
        let s = TraceStats {
            unique_total: 993_000,
            unique_read: 331_000,
            unique_write: 966_000,
            read_requests: 1_339_000,
            write_requests: 5_628_000,
        };
        let row = s.table_row("Fin1");
        assert!(row.contains("993"));
        assert!(row.contains("0.19"));
        assert!(TraceStats::table_header().contains("Workload"));
    }
}
