//! Parser for SPC-1-style trace files (the UMass trace repository format
//! used by the Fin1/Fin2 financial traces).
//!
//! Each line is `ASU,LBA,Size,Opcode,Timestamp[,...]`:
//!
//! * `ASU` — application storage unit (we fold it into the page address
//!   space by offsetting each ASU into its own region);
//! * `LBA` — logical block address in 512-byte blocks within the ASU;
//! * `Size` — request size in **bytes**;
//! * `Opcode` — `r`/`R` or `w`/`W`;
//! * `Timestamp` — seconds (float) since trace start.
//!
//! Requests are converted to page granularity: a request covering any part
//! of a page touches the whole page, matching the paper's 4 KiB cache.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::record::{Op, Trace, TraceRecord};
use kdd_util::units::SimTime;
use std::io::BufRead;

/// Bytes per SPC logical block.
const SPC_BLOCK: u64 = 512;
/// Address-space region reserved per ASU, in pages (16 TiB / 4 KiB each —
/// ASUs never collide).
const ASU_REGION_PAGES: u64 = 1 << 32;

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an SPC trace from a reader into a page-granular [`Trace`].
///
/// Empty lines and lines starting with `#` are skipped.
pub fn parse<R: BufRead>(reader: R, page_size: u32) -> Result<Trace, ParseError> {
    let mut trace = Trace::new(page_size);
    let pp = page_size as u64;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseError { line: lineno, message: e.to_string() })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let mut next = |name: &str| {
            fields.next().filter(|s| !s.is_empty()).ok_or_else(|| ParseError {
                line: lineno,
                message: format!("missing field {name}"),
            })
        };
        let asu: u64 = next("ASU")?
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad ASU: {e}") })?;
        let lba: u64 = next("LBA")?
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad LBA: {e}") })?;
        let size: u64 = next("Size")?
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad size: {e}") })?;
        let op = match next("Opcode")? {
            "r" | "R" => Op::Read,
            "w" | "W" => Op::Write,
            other => {
                return Err(ParseError { line: lineno, message: format!("bad opcode {other:?}") })
            }
        };
        let ts: f64 = next("Timestamp")?
            .parse()
            .map_err(|e| ParseError { line: lineno, message: format!("bad timestamp: {e}") })?;

        let byte_start = lba * SPC_BLOCK;
        let byte_end = byte_start + size.max(1);
        let first_page = byte_start / pp + asu * ASU_REGION_PAGES;
        let last_page = (byte_end - 1) / pp + asu * ASU_REGION_PAGES;
        trace.records.push(TraceRecord {
            time: SimTime::from_secs_f64(ts),
            op,
            lba: first_page,
            len: (last_page - first_page + 1) as u32,
        });
    }
    trace.sort_by_time();
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_lines() {
        let data = "\
0,384,8192,w,0.0
0,8,512,r,0.015
# comment

1,0,4096,R,0.5
";
        let t = parse(Cursor::new(data), 4096).unwrap();
        assert_eq!(t.len(), 3);
        // 384 blocks * 512 = 196608 bytes = page 48, 8192 bytes = 2 pages.
        assert_eq!(t.records[0].lba, 48);
        assert_eq!(t.records[0].len, 2);
        assert_eq!(t.records[0].op, Op::Write);
        // 8 blocks * 512 = 4096 → page 1, size 512 → 1 page.
        assert_eq!(t.records[1].lba, 1);
        assert_eq!(t.records[1].len, 1);
        assert_eq!(t.records[1].op, Op::Read);
        // ASU 1 offset into its own region.
        assert_eq!(t.records[2].lba, 1 << 32);
    }

    #[test]
    fn unaligned_request_touches_both_pages() {
        // Bytes 2048..6144 straddle pages 0 and 1.
        let t = parse(Cursor::new("0,4,4096,w,0.0"), 4096).unwrap();
        assert_eq!(t.records[0].lba, 0);
        assert_eq!(t.records[0].len, 2);
    }

    #[test]
    fn sorts_by_timestamp() {
        let data = "0,0,512,w,2.0\n0,8,512,w,1.0\n";
        let t = parse(Cursor::new(data), 4096).unwrap();
        assert!(t.records[0].time < t.records[1].time);
        assert_eq!(t.records[0].lba, 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(Cursor::new("0,x,512,w,0.0"), 4096).is_err());
        assert!(parse(Cursor::new("0,0,512,z,0.0"), 4096).is_err());
        let err = parse(Cursor::new("0,0,512,w"), 4096).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("Timestamp"));
    }

    #[test]
    fn zero_size_counts_one_page() {
        let t = parse(Cursor::new("0,0,0,r,0.0"), 4096).unwrap();
        assert_eq!(t.records[0].len, 1);
    }
}
