//! FIO-equivalent closed-loop workload generator.
//!
//! §IV-B3: "we use FIO 2.2.10 ... to generate synthetic workloads with the
//! zipf distribution ... Zipfian write pattern of α=1.0001. The benchmark
//! reads/writes a total of 4GB data with 4KB block size. The number of
//! threads is set to 16 ... The working set size for this workload is
//! 1.6GB, larger than the SSD cache size."
//!
//! Closed-loop means there are no arrival timestamps: each of the N
//! threads issues its next request the moment the previous one completes.
//! [`FioWorkload`] is therefore a request *source*, not a timed trace; the
//! closed-loop simulator pulls from it.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use crate::record::Op;
use kdd_util::rng::seeded_rng;
use kdd_util::sampler::Zipf;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Configuration mirroring the paper's FIO invocation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FioConfig {
    /// Working-set size in pages (1.6 GiB / 4 KiB = 409 600 in the paper).
    pub wss_pages: u64,
    /// Zipf exponent (1.0001 in the paper).
    pub zipf_alpha: f64,
    /// Fraction of requests that are reads (0.0, 0.25, 0.50, 0.75 swept).
    pub read_rate: f64,
    /// Total data moved, in pages (4 GiB / 4 KiB = 1 048 576).
    pub total_pages: u64,
    /// Concurrent request threads (16 in the paper).
    pub threads: u32,
}

impl FioConfig {
    /// The paper's exact configuration at a given read rate.
    pub fn paper(read_rate: f64) -> Self {
        FioConfig {
            wss_pages: (16u64 << 30) / 10 / 4096, // 1.6 GiB
            zipf_alpha: 1.0001,
            read_rate,
            total_pages: (4u64 << 30) / 4096, // 4 GiB
            threads: 16,
        }
    }

    /// Scale the working set and total volume down by `factor`.
    pub fn scaled(mut self, factor: u64) -> Self {
        self.wss_pages = (self.wss_pages / factor).max(64);
        self.total_pages = (self.total_pages / factor).max(64);
        self
    }
}

/// The request source: thread-agnostic, pull-based.
#[derive(Debug)]
pub struct FioWorkload {
    config: FioConfig,
    zipf: Zipf,
    issued: u64,
    rng: StdRng,
    stride: u64,
}

impl FioWorkload {
    /// Create the generator.
    ///
    /// # Panics
    /// Panics if `read_rate` is outside `[0, 1]` or the working set is
    /// empty.
    pub fn new(config: FioConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&config.read_rate));
        assert!(config.wss_pages > 0 && config.total_pages > 0);
        let stride = Self::coprime_stride(config.wss_pages);
        FioWorkload {
            zipf: Zipf::new(config.wss_pages, config.zipf_alpha),
            config,
            issued: 0,
            rng: seeded_rng(seed),
            stride,
        }
    }

    fn coprime_stride(n: u64) -> u64 {
        let mut s = ((n as f64 * 0.6180339887) as u64) | 1;
        fn gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        while gcd(s.max(1), n) != 1 {
            s += 2;
        }
        s.max(1)
    }

    /// The configuration in force.
    pub fn config(&self) -> &FioConfig {
        &self.config
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Whether the configured volume has been issued.
    pub fn done(&self) -> bool {
        self.issued >= self.config.total_pages
    }

    /// Draw the next request, or `None` once the volume target is met.
    /// Popularity ranks are scattered over the working set so the hot set
    /// is not physically contiguous.
    pub fn next_request(&mut self) -> Option<(Op, u64)> {
        if self.done() {
            return None;
        }
        self.issued += 1;
        let op =
            if self.rng.random::<f64>() < self.config.read_rate { Op::Read } else { Op::Write };
        let rank = self.zipf.sample(&mut self.rng) - 1;
        let lba = rank.wrapping_mul(self.stride) % self.config.wss_pages;
        Some((op, lba))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_total_volume() {
        let mut w = FioWorkload::new(FioConfig::paper(0.5).scaled(4096), 1);
        let mut n = 0;
        while w.next_request().is_some() {
            n += 1;
        }
        assert_eq!(n, w.config().total_pages);
        assert!(w.done());
        assert!(w.next_request().is_none());
    }

    #[test]
    fn read_rate_honoured() {
        for rate in [0.0, 0.25, 0.5, 0.75] {
            let mut w = FioWorkload::new(FioConfig::paper(rate).scaled(1024), 2);
            let mut reads = 0u64;
            let mut total = 0u64;
            while let Some((op, _)) = w.next_request() {
                total += 1;
                reads += (op == Op::Read) as u64;
            }
            let measured = reads as f64 / total as f64;
            assert!((measured - rate).abs() < 0.03, "rate {rate} measured {measured}");
        }
    }

    #[test]
    fn addresses_within_wss() {
        let mut w = FioWorkload::new(FioConfig::paper(0.25).scaled(2048), 3);
        while let Some((_, lba)) = w.next_request() {
            assert!(lba < w.config().wss_pages);
        }
    }

    #[test]
    fn zipf_concentrates_accesses() {
        let mut w = FioWorkload::new(FioConfig::paper(0.0).scaled(1024), 4);
        let mut counts = std::collections::HashMap::new();
        while let Some((_, lba)) = w.next_request() {
            *counts.entry(lba).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        let total: u64 = counts.values().sum();
        // α≈1 over a small population: the hottest page gets a clearly
        // outsized share.
        assert!(max as f64 / total as f64 > 0.01, "no skew: {max}/{total}");
    }

    #[test]
    fn working_set_bounded_but_covered() {
        let cfg = FioConfig::paper(0.5).scaled(8192);
        let mut w = FioWorkload::new(cfg, 5);
        let mut seen = std::collections::HashSet::new();
        while let Some((_, lba)) = w.next_request() {
            seen.insert(lba);
        }
        assert!(seen.len() as u64 <= cfg.wss_pages);
        assert!(seen.len() as u64 > cfg.wss_pages / 4, "WSS badly under-covered");
    }

    #[test]
    fn paper_numbers() {
        let cfg = FioConfig::paper(0.75);
        assert_eq!(cfg.wss_pages, 419_430); // 1.6 GiB of 4 KiB pages
        assert_eq!(cfg.total_pages, 1_048_576);
        assert_eq!(cfg.threads, 16);
    }
}
