//! Model-based property tests: the FTL against a reference map, under
//! arbitrary write/trim/read interleavings — mapping integrity must
//! survive any garbage-collection schedule.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use kdd_blockdev::error::DevError;
use kdd_blockdev::flash::{FlashGeometry, FlashTimings};
use kdd_blockdev::ftl::Ftl;
use kdd_blockdev::ssd::SsdDevice;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Read(u64),
}

fn ops(lpns: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..lpns).prop_map(Op::Write),
        1 => (0..lpns).prop_map(Op::Trim),
        2 => (0..lpns).prop_map(Op::Read),
    ]
}

fn small_geometry() -> FlashGeometry {
    FlashGeometry {
        channels: 2,
        dies_per_channel: 1,
        blocks_per_die: 24,
        pages_per_block: 8,
        page_size: 512,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mapped-ness always matches the model; reads of mapped pages never
    /// fail; WAF ≥ 1 whenever anything was written.
    #[test]
    fn ftl_matches_model(script in proptest::collection::vec(ops(256), 1..400)) {
        let mut ftl = Ftl::new(small_geometry(), FlashTimings::mlc_default(), 0.25);
        let lpns = ftl.logical_pages();
        let mut model: HashMap<u64, ()> = HashMap::new();
        for op in &script {
            match op {
                Op::Write(l) => {
                    let l = l % lpns;
                    ftl.write(l).unwrap();
                    model.insert(l, ());
                }
                Op::Trim(l) => {
                    let l = l % lpns;
                    ftl.trim(l).unwrap();
                    model.remove(&l);
                }
                Op::Read(l) => {
                    let l = l % lpns;
                    match ftl.read(l) {
                        Ok(_) => prop_assert!(model.contains_key(&l), "read of unmapped {l} succeeded"),
                        Err(DevError::Unmapped { .. }) => prop_assert!(!model.contains_key(&l)),
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
                    }
                }
            }
        }
        for l in 0..lpns {
            prop_assert_eq!(ftl.is_mapped(l), model.contains_key(&l), "lpn {}", l);
        }
        let rep = ftl.endurance();
        if rep.host_written_bytes > 0 {
            prop_assert!(rep.waf() >= 1.0);
        }
        prop_assert!(rep.nand_written_bytes >= rep.host_written_bytes);
    }

    /// The SSD device layer preserves content through arbitrary GC churn.
    #[test]
    fn ssd_content_survives_gc(script in proptest::collection::vec(ops(64), 1..250)) {
        let mut ssd = SsdDevice::new(small_geometry(), FlashTimings::mlc_default(), 0.25);
        let lpns = ssd.capacity_pages().min(64);
        let ps = ssd.page_size() as usize;
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut stamp = 0u8;
        for op in &script {
            match op {
                Op::Write(l) => {
                    let l = l % lpns;
                    stamp = stamp.wrapping_add(1);
                    let data: Vec<u8> = (0..ps).map(|i| stamp ^ (i as u8)).collect();
                    ssd.write_page(l, &data).unwrap();
                    model.insert(l, data);
                }
                Op::Trim(l) => {
                    let l = l % lpns;
                    ssd.trim_page(l).unwrap();
                    model.remove(&l);
                }
                Op::Read(l) => {
                    let l = l % lpns;
                    if let Some(expect) = model.get(&l) {
                        let mut buf = vec![0u8; ps];
                        ssd.read_page(l, &mut buf).unwrap();
                        prop_assert_eq!(&buf, expect, "content of {} diverged", l);
                    }
                }
            }
        }
        // Final sweep: every mapped page readable and correct.
        let mut buf = vec![0u8; ps];
        for (l, expect) in &model {
            ssd.read_page(*l, &mut buf).unwrap();
            prop_assert_eq!(&buf, expect);
        }
    }

    /// Wear stays bounded and balanced relative to traffic.
    #[test]
    fn wear_accounting_consistent(overwrites in 1u64..2000) {
        let mut ftl = Ftl::new(small_geometry(), FlashTimings::mlc_default(), 0.25);
        let hot = 16u64;
        for i in 0..overwrites {
            ftl.write(i % hot).unwrap();
        }
        let rep = ftl.endurance();
        prop_assert_eq!(rep.host_written_bytes, overwrites * 512);
        // Erases * block size can never exceed NAND bytes written plus one
        // spare block cycle per block.
        let block_bytes = 8 * 512u64;
        prop_assert!(rep.erases * block_bytes <= rep.nand_written_bytes + 48 * block_bytes);
        prop_assert!(rep.life_used >= 0.0 && rep.life_used < 1.0);
    }
}
