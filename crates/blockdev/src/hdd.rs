//! Mechanical-disk service-time model.
//!
//! A small-write to parity RAID costs four disk I/Os, each paying seek +
//! rotational latency; that ~10 ms per op versus ~0.1 ms for the SSD is
//! the entire performance story of Figures 9–11. The model here follows
//! the classic Ruemmler & Wilkes decomposition:
//!
//! * **seek** — `a + b*sqrt(d)` for short seeks, linear for long ones,
//!   where `d` is the cylinder distance;
//! * **rotation** — uniform in `[0, full revolution)` approximated by its
//!   mean for analytic determinism, or sampled when a RNG is supplied;
//! * **transfer** — bytes / media rate.
//!
//! Defaults approximate the paper's 7200 RPM 1 TB drives.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use kdd_util::units::SimTime;

/// Service-time model for one hard disk drive.
#[derive(Debug, Clone)]
pub struct HddModel {
    /// Capacity in pages (used to map LPN to cylinder).
    pub capacity_pages: u64,
    /// Page size in bytes.
    pub page_size: u32,
    /// Number of cylinders the LPN space is spread over.
    pub cylinders: u64,
    /// Track-to-track seek time.
    pub seek_min: SimTime,
    /// Average seek time (1/3 full stroke by convention).
    pub seek_avg: SimTime,
    /// Full-stroke seek time.
    pub seek_max: SimTime,
    /// Time for one full platter revolution (8.33 ms at 7200 RPM).
    pub revolution: SimTime,
    /// Sustained media transfer rate in bytes/second.
    pub transfer_rate: u64,
    /// Head position after the last operation (cylinder).
    last_cylinder: u64,
}

impl HddModel {
    /// A 7200 RPM, 1 TB enterprise drive like the paper's testbed disks.
    pub fn enterprise_7200rpm(capacity_pages: u64, page_size: u32) -> Self {
        HddModel {
            capacity_pages,
            page_size,
            cylinders: 200_000,
            seek_min: SimTime::from_micros(500),
            seek_avg: SimTime::from_micros(8_500),
            seek_max: SimTime::from_micros(16_000),
            revolution: SimTime::from_micros(8_333),
            transfer_rate: 150 * 1024 * 1024,
            last_cylinder: 0,
        }
    }

    #[inline]
    fn cylinder_of(&self, lpn: u64) -> u64 {
        if self.capacity_pages == 0 {
            return 0;
        }
        (lpn.min(self.capacity_pages - 1)) * self.cylinders / self.capacity_pages
    }

    /// Seek time for a cylinder distance `d` (Ruemmler–Wilkes shape).
    fn seek_time(&self, d: u64) -> SimTime {
        if d == 0 {
            return SimTime::ZERO;
        }
        let frac = d as f64 / self.cylinders.max(1) as f64;
        // Square-root region up to 1/3 stroke, then linear to seek_max.
        let t = if frac < 1.0 / 3.0 {
            let x = (frac * 3.0).sqrt();
            self.seek_min.as_nanos() as f64
                + (self.seek_avg.as_nanos() - self.seek_min.as_nanos()) as f64 * x
        } else {
            let x = (frac - 1.0 / 3.0) / (2.0 / 3.0);
            self.seek_avg.as_nanos() as f64
                + (self.seek_max.as_nanos() - self.seek_avg.as_nanos()) as f64 * x
        };
        SimTime::from_nanos(t as u64)
    }

    /// Mean rotational latency (half a revolution).
    fn rotational_latency(&self) -> SimTime {
        self.revolution / 2
    }

    /// Transfer time for `bytes`.
    fn transfer_time(&self, bytes: u64) -> SimTime {
        SimTime::from_nanos(bytes.saturating_mul(1_000_000_000) / self.transfer_rate.max(1))
    }

    /// Service time for an access of `len_pages` pages starting at `lpn`,
    /// advancing the head. Reads and writes cost the same mechanically.
    pub fn access(&mut self, lpn: u64, len_pages: u64) -> SimTime {
        let cyl = self.cylinder_of(lpn);
        let dist = cyl.abs_diff(self.last_cylinder);
        self.last_cylinder = cyl;
        let bytes = len_pages * self.page_size as u64;
        self.seek_time(dist) + self.rotational_latency() + self.transfer_time(bytes)
    }

    /// Service time for a sequential continuation (no seek, no rotation):
    /// the stream case used for rebuild/resync estimates.
    pub fn sequential(&self, len_pages: u64) -> SimTime {
        self.transfer_time(len_pages * self.page_size as u64)
    }

    /// Peek the cost of an access without moving the head.
    pub fn peek_access(&self, lpn: u64, len_pages: u64) -> SimTime {
        let mut copy = self.clone();
        copy.access(lpn, len_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HddModel {
        HddModel::enterprise_7200rpm(1024 * 1024, 4096)
    }

    #[test]
    fn random_access_costs_milliseconds() {
        let mut m = model();
        let t = m.access(900_000, 1);
        // Seek (ms-scale) + ~4.2ms rotation + tiny transfer.
        assert!(t >= SimTime::from_millis(4), "too fast: {t}");
        assert!(t <= SimTime::from_millis(25), "too slow: {t}");
    }

    #[test]
    fn same_cylinder_access_skips_seek() {
        let mut m = model();
        m.access(500_000, 1);
        let near = m.access(500_000, 1);
        let mut m2 = model();
        m2.access(500_000, 1);
        let far = m2.access(0, 1);
        assert!(near < far, "near {near} should beat far {far}");
    }

    #[test]
    fn seek_monotone_in_distance() {
        let m = model();
        let mut prev = SimTime::ZERO;
        for d in [0u64, 10, 1000, 50_000, 100_000, 199_999] {
            let t = m.seek_time(d);
            assert!(t >= prev, "seek({d}) = {t} < {prev}");
            prev = t;
        }
        assert!(m.seek_time(m.cylinders) <= m.seek_max + SimTime::from_micros(1));
    }

    #[test]
    fn sequential_faster_than_random() {
        let mut m = model();
        let rand = m.access(700_000, 64);
        let seq = m.sequential(64);
        assert!(seq < rand / 2, "seq {seq} vs rand {rand}");
    }

    #[test]
    fn transfer_scales_with_length() {
        let m = model();
        let t1 = m.sequential(1);
        let t64 = m.sequential(64);
        assert!(t64 > t1 * 32, "transfer not scaling: {t1} vs {t64}");
    }

    #[test]
    fn peek_does_not_move_head() {
        let mut m = model();
        m.access(0, 1);
        let p1 = m.peek_access(900_000, 1);
        let p2 = m.peek_access(900_000, 1);
        assert_eq!(p1, p2);
        // Real access then changes state.
        m.access(900_000, 1);
        assert!(m.peek_access(900_000, 1) < p1);
    }
}
