//! Device-level error type.

use std::fmt;

/// Errors surfaced by the device substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Access past the end of the device.
    OutOfRange {
        /// Offending logical page number.
        lpn: u64,
        /// Device capacity in pages.
        capacity: u64,
    },
    /// The device has been failed by fault injection (or wore out).
    Failed,
    /// A flash block exceeded its rated program/erase cycles.
    WornOut {
        /// Physical block that wore out.
        block: u64,
    },
    /// NVRAM region capacity exceeded.
    NvramFull {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// Read of a logical page that was never written (strict mode).
    Unmapped {
        /// Offending logical page number.
        lpn: u64,
    },
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::OutOfRange { lpn, capacity } => {
                write!(f, "page {lpn} out of range (capacity {capacity} pages)")
            }
            DevError::Failed => write!(f, "device failed"),
            DevError::WornOut { block } => write!(f, "flash block {block} worn out"),
            DevError::NvramFull { requested, available } => {
                write!(f, "NVRAM full: requested {requested}B, available {available}B")
            }
            DevError::Unmapped { lpn } => write!(f, "page {lpn} unmapped"),
        }
    }
}

impl std::error::Error for DevError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DevError::OutOfRange { lpn: 9, capacity: 4 }.to_string().contains("out of range"));
        assert!(DevError::Failed.to_string().contains("failed"));
        assert!(DevError::WornOut { block: 3 }.to_string().contains("worn out"));
        assert!(DevError::NvramFull { requested: 10, available: 4 }.to_string().contains("NVRAM"));
        assert!(DevError::Unmapped { lpn: 1 }.to_string().contains("unmapped"));
    }
}
