//! Device-level error type and fault-domain identifiers.

use std::fmt;

/// Which physical device an error or injected fault belongs to.
///
/// Carried inside [`DevError::Failed`] so callers can tell a dying cache SSD
/// (recoverable by falling back to pass-through RAID, §III-E2) from a dying
/// array member (recoverable by degraded reads + rebuild, §III-E3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// Not attributed to a specific device (legacy / wildcard in fault plans).
    Unknown,
    /// The cache SSD.
    Ssd,
    /// RAID member disk by index.
    Disk(u32),
    /// The battery-backed NVRAM region.
    Nvram,
}

impl fmt::Display for FaultDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultDomain::Unknown => write!(f, "device"),
            FaultDomain::Ssd => write!(f, "ssd"),
            FaultDomain::Disk(d) => write!(f, "disk{d}"),
            FaultDomain::Nvram => write!(f, "nvram"),
        }
    }
}

/// Errors surfaced by the device substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Access past the end of the device.
    OutOfRange {
        /// Offending logical page number.
        lpn: u64,
        /// Device capacity in pages.
        capacity: u64,
    },
    /// The device failed (fault injection, wear-out, or resource exhaustion).
    Failed {
        /// Which device failed.
        device: FaultDomain,
        /// `true` for a one-shot fault where retrying the same operation may
        /// succeed; `false` when the device is gone until replaced.
        transient: bool,
    },
    /// Power was lost: every device stops serving until power is restored.
    PowerLoss,
    /// A flash block exceeded its rated program/erase cycles.
    WornOut {
        /// Physical block that wore out.
        block: u64,
    },
    /// NVRAM region capacity exceeded.
    NvramFull {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// Read of a logical page that was never written (strict mode).
    Unmapped {
        /// Offending logical page number.
        lpn: u64,
    },
}

impl DevError {
    /// Permanent failure of `device`.
    pub fn failed(device: FaultDomain) -> Self {
        DevError::Failed { device, transient: false }
    }

    /// Transient (retryable) failure of `device`.
    pub fn transient(device: FaultDomain) -> Self {
        DevError::Failed { device, transient: true }
    }

    /// Whether retrying the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, DevError::Failed { transient: true, .. })
    }
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::OutOfRange { lpn, capacity } => {
                write!(f, "page {lpn} out of range (capacity {capacity} pages)")
            }
            DevError::Failed { device, transient: true } => {
                write!(f, "{device} failed (transient fault, retry may succeed)")
            }
            DevError::Failed { device, transient: false } => {
                write!(f, "{device} failed (permanent, needs replacement)")
            }
            DevError::PowerLoss => write!(f, "power loss: all devices stopped"),
            DevError::WornOut { block } => write!(f, "flash block {block} worn out"),
            DevError::NvramFull { requested, available } => {
                write!(f, "NVRAM full: requested {requested}B, available {available}B")
            }
            DevError::Unmapped { lpn } => write!(f, "page {lpn} unmapped"),
        }
    }
}

impl std::error::Error for DevError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DevError::OutOfRange { lpn: 9, capacity: 4 }.to_string().contains("out of range"));
        assert!(DevError::WornOut { block: 3 }.to_string().contains("worn out"));
        assert!(DevError::NvramFull { requested: 10, available: 4 }.to_string().contains("NVRAM"));
        assert!(DevError::Unmapped { lpn: 1 }.to_string().contains("unmapped"));
        assert!(DevError::PowerLoss.to_string().contains("power loss"));
    }

    #[test]
    fn failed_carries_device_and_persistence() {
        let t = DevError::transient(FaultDomain::Disk(3));
        assert!(t.is_transient());
        assert!(t.to_string().contains("disk3"));
        assert!(t.to_string().contains("transient"));

        let p = DevError::failed(FaultDomain::Ssd);
        assert!(!p.is_transient());
        assert!(p.to_string().contains("ssd"));
        assert!(p.to_string().contains("permanent"));

        assert!(!DevError::PowerLoss.is_transient());
        assert!(!DevError::Unmapped { lpn: 0 }.is_transient());
    }

    #[test]
    fn fault_domain_display() {
        assert_eq!(FaultDomain::Ssd.to_string(), "ssd");
        assert_eq!(FaultDomain::Disk(7).to_string(), "disk7");
        assert_eq!(FaultDomain::Nvram.to_string(), "nvram");
        assert_eq!(FaultDomain::Unknown.to_string(), "device");
    }
}
