//! Sparse in-memory page stores.
//!
//! A 5-disk RAID over 1 TB drives cannot be materialised as flat buffers;
//! [`MemStore`] keeps only pages that were ever written in a hash map and
//! reads unwritten pages as zeros — exactly what a fresh disk returns.

use crate::error::{DevError, FaultDomain};
use crate::fault::{apply_read_outcome, apply_write_outcome, FaultInjector, IoDir, IoOutcome};
use kdd_util::hash::FastMap;

/// Page-granular storage of actual contents.
pub trait PageStore {
    /// Page size in bytes.
    fn page_size(&self) -> u32;

    /// Capacity in pages.
    fn capacity_pages(&self) -> u64;

    /// Read page `lpn` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, lpn: u64, buf: &mut [u8]) -> Result<(), DevError>;

    /// Write `data` (`data.len() == page_size`) to page `lpn`.
    fn write_page(&mut self, lpn: u64, data: &[u8]) -> Result<(), DevError>;

    /// Discard page `lpn` (it reads back as zeros).
    fn trim_page(&mut self, lpn: u64) -> Result<(), DevError>;
}

/// Sparse in-memory page store; unwritten pages read as zeros.
#[derive(Debug, Clone)]
pub struct MemStore {
    page_size: u32,
    capacity_pages: u64,
    pages: FastMap<u64, Box<[u8]>>,
    failed: bool,
    injector: Option<FaultInjector>,
    domain: FaultDomain,
}

impl MemStore {
    /// Create a store of `capacity_pages` pages of `page_size` bytes.
    pub fn new(capacity_pages: u64, page_size: u32) -> Self {
        assert!(page_size > 0 && capacity_pages > 0);
        MemStore {
            page_size,
            capacity_pages,
            pages: FastMap::default(),
            failed: false,
            injector: None,
            domain: FaultDomain::Unknown,
        }
    }

    /// Route every I/O through `injector`, identifying this store as `domain`.
    pub fn attach_injector(&mut self, injector: FaultInjector, domain: FaultDomain) {
        self.injector = Some(injector);
        self.domain = domain;
    }

    /// The fault domain this store reports itself as.
    pub fn domain(&self) -> FaultDomain {
        self.domain
    }

    fn intercept(&self, dir: IoDir) -> IoOutcome {
        match &self.injector {
            Some(inj) => inj.begin_io(self.domain, dir),
            None => IoOutcome::Proceed,
        }
    }

    /// Inject a permanent device failure: all subsequent I/O errors.
    pub fn fail(&mut self) {
        self.failed = true;
        self.pages.clear(); // a failed disk's contents are gone
    }

    /// Whether the device has been failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Replace a failed device with a fresh (zeroed) one of the same shape.
    pub fn replace(&mut self) {
        self.failed = false;
        self.pages.clear();
    }

    /// Number of pages that have ever been written (resident set).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, lpn: u64) -> Result<(), DevError> {
        if self.failed {
            return Err(DevError::failed(self.domain));
        }
        if lpn >= self.capacity_pages {
            return Err(DevError::OutOfRange { lpn, capacity: self.capacity_pages });
        }
        Ok(())
    }
}

impl PageStore for MemStore {
    fn page_size(&self) -> u32 {
        self.page_size
    }

    fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    fn read_page(&self, lpn: u64, buf: &mut [u8]) -> Result<(), DevError> {
        self.check(lpn)?;
        assert_eq!(buf.len(), self.page_size as usize, "buffer/page size mismatch");
        let outcome = self.intercept(IoDir::Read);
        match self.pages.get(&lpn) {
            Some(data) => buf.copy_from_slice(data),
            None => buf.fill(0),
        }
        apply_read_outcome(outcome, buf)
    }

    fn write_page(&mut self, lpn: u64, data: &[u8]) -> Result<(), DevError> {
        self.check(lpn)?;
        assert_eq!(data.len(), self.page_size as usize, "buffer/page size mismatch");
        if self.injector.is_none() {
            // Fast path: without an injector no write can be torn or failed,
            // so the previous-content snapshot is unnecessary and a resident
            // page can be overwritten in place (no allocation at all).
            match self.pages.get_mut(&lpn) {
                Some(page) => page.copy_from_slice(data),
                None => {
                    self.pages.insert(lpn, data.into());
                }
            }
            return Ok(());
        }
        let outcome = self.intercept(IoDir::Write);
        // kdd-waiver(KDD006): torn-write emulation needs the pre-image; this
        // runs only under fault injection, never on the hot path.
        let mut previous = vec![0u8; self.page_size as usize];
        if let Some(old) = self.pages.get(&lpn) {
            previous.copy_from_slice(old);
        }
        match apply_write_outcome(outcome, data, &previous)? {
            Some(mangled) => self.pages.insert(lpn, mangled.into_boxed_slice()),
            None => self.pages.insert(lpn, data.into()),
        };
        Ok(())
    }

    fn trim_page(&mut self, lpn: u64) -> Result<(), DevError> {
        self.check(lpn)?;
        if let IoOutcome::Fail(e) = self.intercept(IoDir::Write) {
            return Err(e);
        }
        self.pages.remove(&lpn);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pages_read_zero() {
        let s = MemStore::new(16, 512);
        let mut buf = vec![0xffu8; 512];
        s.read_page(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = MemStore::new(16, 512);
        let data = vec![0xabu8; 512];
        s.write_page(7, &data).unwrap();
        let mut buf = vec![0u8; 512];
        s.read_page(7, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn trim_restores_zero() {
        let mut s = MemStore::new(4, 64);
        s.write_page(0, &[1u8; 64]).unwrap();
        s.trim_page(0).unwrap();
        let mut buf = vec![9u8; 64];
        s.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = MemStore::new(4, 64);
        let mut buf = vec![0u8; 64];
        assert!(matches!(s.read_page(4, &mut buf), Err(DevError::OutOfRange { .. })));
        assert!(matches!(s.write_page(100, &buf), Err(DevError::OutOfRange { .. })));
    }

    #[test]
    fn failure_injection() {
        let mut s = MemStore::new(4, 64);
        s.write_page(1, &[5u8; 64]).unwrap();
        s.fail();
        assert!(s.is_failed());
        let mut buf = vec![0u8; 64];
        assert_eq!(s.read_page(1, &mut buf), Err(DevError::failed(FaultDomain::Unknown)));
        assert_eq!(s.write_page(1, &buf), Err(DevError::failed(FaultDomain::Unknown)));
        s.replace();
        assert!(!s.is_failed());
        s.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "replacement disk must be empty");
    }

    #[test]
    fn injector_gates_io() {
        use crate::fault::FaultPlan;
        // op 0: transient write failure; op 2: torn write keeping 2 new bytes.
        let inj =
            FaultInjector::new(FaultPlan::new().transient(0, FaultDomain::Disk(1)).torn_write(
                2,
                FaultDomain::Disk(1),
                2,
            ));
        let mut s = MemStore::new(8, 4);
        s.attach_injector(inj.clone(), FaultDomain::Disk(1));
        assert_eq!(s.domain(), FaultDomain::Disk(1));

        let err = s.write_page(0, &[7u8; 4]).unwrap_err();
        assert!(err.is_transient());
        s.write_page(0, &[1, 2, 3, 4]).unwrap(); // op 1: proceeds
        s.write_page(0, &[9, 9, 9, 9]).unwrap(); // op 2: torn after 2 bytes

        let mut buf = [0u8; 4];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [9, 9, 3, 4], "torn write keeps the old suffix");
        assert_eq!(inj.counters().torn_writes, 1);
        assert_eq!(inj.op_count(), 4);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_panics() {
        let s = MemStore::new(4, 64);
        let mut buf = vec![0u8; 32];
        let _ = s.read_page(0, &mut buf);
    }
}
