//! Deterministic fault injection for every device in the stack.
//!
//! The paper's reliability story (§III-E) is about behaviour *during*
//! faults: power loss mid-metadata-batch, a cache SSD wearing out or dying,
//! a RAID member disk dropping out. This module provides a seedable,
//! replayable way to trigger exactly those events:
//!
//! * a [`FaultPlan`] is a list of [`FaultSpec`]s — "at global device-op
//!   index `N`, device `D` suffers fault `K`" — built by hand, parsed from a
//!   compact string (`kddtool faults --plan ...`), or generated from a seed;
//! * a [`FaultInjector`] owns the plan at runtime. Every wrapped device
//!   calls [`FaultInjector::begin_io`] before touching its backing store;
//!   the injector counts the op, fires any due spec, and tells the device
//!   to proceed, fail, tear the write, or corrupt the payload.
//!
//! The injector is shared (`Arc<Mutex<_>>`) between the SSD, every RAID
//! member and the engine, so one plan describes correlated faults across
//! the whole array, and the global op counter gives an exhaustive
//! crash-at-every-op sweep a deterministic clock to key off.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::error::{DevError, FaultDomain};
use kdd_util::rng::splitmix64;
use std::sync::{Arc, Mutex};

/// Direction of the intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Page read.
    Read,
    /// Page write (or trim).
    Write,
}

/// What kind of fault a spec injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this single operation; the device stays healthy.
    TransientIo,
    /// The device fails permanently: this and all later ops error, and a
    /// replacement does **not** help (no spare — exercises pass-through
    /// fallback). Clear with [`FaultInjector::revive`].
    PersistentIo,
    /// The device drops out with its contents: this and all later ops error
    /// until the device is replaced/rebuilt (a spare exists).
    DeviceDrop,
    /// A write persists only its first `valid_bytes` bytes; the rest of the
    /// page keeps its previous contents (torn page).
    TornWrite {
        /// Bytes of the new payload that reach the medium.
        valid_bytes: u32,
    },
    /// `len` bytes starting at `offset` are bit-flipped in the payload
    /// (write) or the returned data (read).
    CorruptPage {
        /// First corrupted byte offset within the page.
        offset: u32,
        /// Number of corrupted bytes.
        len: u32,
    },
    /// Global power loss: the op does not complete and every device errors
    /// with [`DevError::PowerLoss`] until [`FaultInjector::restore_power`].
    PowerLoss,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Global device-op index at which the fault fires.
    pub at_op: u64,
    /// Target device; [`FaultDomain::Unknown`] matches any device.
    pub device: FaultDomain,
    /// Restrict to one direction (`None` matches reads and writes).
    pub dir: Option<IoDir>,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// A fault that actually fired, for reporting and determinism checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global op index at which it fired.
    pub op: u64,
    /// Device the intercepted op targeted.
    pub device: FaultDomain,
    /// Direction of the intercepted op.
    pub dir: IoDir,
    /// The injected fault.
    pub kind: FaultKind,
}

/// Tallies of injected faults, mirrored into `CacheStats` by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Total faults fired.
    pub injected: u64,
    /// Transient single-op failures.
    pub transient: u64,
    /// Persistent failures (no spare).
    pub persistent: u64,
    /// Device drops (spare available).
    pub device_drops: u64,
    /// Torn writes.
    pub torn_writes: u64,
    /// Corrupted pages.
    pub corrupted: u64,
    /// Power losses.
    pub power_losses: u64,
}

/// A deterministic, replayable schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults (order irrelevant; matched by `at_op`).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Empty plan: the injector only counts ops.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a transient (single-op) failure.
    pub fn transient(mut self, at_op: u64, device: FaultDomain) -> Self {
        self.specs.push(FaultSpec { at_op, device, dir: None, kind: FaultKind::TransientIo });
        self
    }

    /// Add a persistent, non-replaceable failure.
    pub fn persistent(mut self, at_op: u64, device: FaultDomain) -> Self {
        self.specs.push(FaultSpec { at_op, device, dir: None, kind: FaultKind::PersistentIo });
        self
    }

    /// Add a device drop (contents lost, spare available).
    pub fn drop_device(mut self, at_op: u64, device: FaultDomain) -> Self {
        self.specs.push(FaultSpec { at_op, device, dir: None, kind: FaultKind::DeviceDrop });
        self
    }

    /// Add a torn write persisting only `valid_bytes` of the payload.
    pub fn torn_write(mut self, at_op: u64, device: FaultDomain, valid_bytes: u32) -> Self {
        self.specs.push(FaultSpec {
            at_op,
            device,
            dir: Some(IoDir::Write),
            kind: FaultKind::TornWrite { valid_bytes },
        });
        self
    }

    /// Add a payload corruption of `len` bytes at `offset`.
    pub fn corrupt(mut self, at_op: u64, device: FaultDomain, offset: u32, len: u32) -> Self {
        self.specs.push(FaultSpec {
            at_op,
            device,
            dir: None,
            kind: FaultKind::CorruptPage { offset, len },
        });
        self
    }

    /// Add a global power loss at `at_op`.
    pub fn power_loss(mut self, at_op: u64) -> Self {
        self.specs.push(FaultSpec {
            at_op,
            device: FaultDomain::Unknown,
            dir: None,
            kind: FaultKind::PowerLoss,
        });
        self
    }

    /// Generate `n_faults` pseudo-random transient/corrupt faults over the
    /// first `ops` device operations of an array with `disks` members.
    ///
    /// Only *survivable* kinds are drawn (transient I/O errors and read
    /// corruptions on member disks), so a randomized soak stays comparable
    /// run to run; drops and power losses are scheduled explicitly.
    pub fn randomized(seed: u64, ops: u64, disks: u32, n_faults: usize) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let at_op = splitmix64(&mut state) % ops.max(1);
            let device = match splitmix64(&mut state) % (disks as u64 + 1) {
                0 => FaultDomain::Ssd,
                d => FaultDomain::Disk((d - 1) as u32),
            };
            plan = plan.transient(at_op, device);
        }
        plan.specs.sort_by_key(|s| s.at_op);
        plan
    }

    /// Parse a compact plan string: comma-separated `device@op:kind` clauses.
    ///
    /// Devices: `ssd`, `nvram`, `disk<N>`, `any`. Kinds: `transient`,
    /// `persistent`, `drop`, `torn=<valid_bytes>`, `corrupt=<offset>+<len>`,
    /// `power`. Example: `ssd@120:transient,disk1@50:drop,any@200:power`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (dev_s, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("`{clause}`: expected device@op:kind"))?;
            let (op_s, kind_s) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{clause}`: expected device@op:kind"))?;
            let at_op: u64 =
                op_s.parse().map_err(|_| format!("`{clause}`: bad op index `{op_s}`"))?;
            let device = match dev_s {
                "ssd" => FaultDomain::Ssd,
                "nvram" => FaultDomain::Nvram,
                "any" => FaultDomain::Unknown,
                d => match d.strip_prefix("disk").and_then(|n| n.parse::<u32>().ok()) {
                    Some(n) => FaultDomain::Disk(n),
                    None => return Err(format!("`{clause}`: unknown device `{dev_s}`")),
                },
            };
            plan = match kind_s {
                "transient" => plan.transient(at_op, device),
                "persistent" => plan.persistent(at_op, device),
                "drop" => plan.drop_device(at_op, device),
                "power" => plan.power_loss(at_op),
                k => {
                    if let Some(v) = k.strip_prefix("torn=") {
                        let valid = v
                            .parse()
                            .map_err(|_| format!("`{clause}`: bad torn byte count `{v}`"))?;
                        plan.torn_write(at_op, device, valid)
                    } else if let Some(v) = k.strip_prefix("corrupt=") {
                        let (off_s, len_s) = v
                            .split_once('+')
                            .ok_or_else(|| format!("`{clause}`: corrupt wants offset+len"))?;
                        let off = off_s
                            .parse()
                            .map_err(|_| format!("`{clause}`: bad offset `{off_s}`"))?;
                        let len = len_s
                            .parse()
                            .map_err(|_| format!("`{clause}`: bad length `{len_s}`"))?;
                        plan.corrupt(at_op, device, off, len)
                    } else {
                        return Err(format!("`{clause}`: unknown fault kind `{kind_s}`"));
                    }
                }
            };
        }
        Ok(plan)
    }
}

/// What the device must do with the intercepted operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOutcome {
    /// Perform the operation normally.
    Proceed,
    /// Fail with the given error; the medium is untouched.
    Fail(DevError),
    /// Persist only the first `valid_bytes` bytes of the payload.
    Torn {
        /// Bytes of the new payload that reach the medium.
        valid_bytes: usize,
    },
    /// Bit-flip `len` bytes at `offset` in the payload / returned data.
    Corrupt {
        /// First corrupted byte.
        offset: usize,
        /// Corrupted byte count.
        len: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadKind {
    /// Cleared when the device is replaced/rebuilt.
    Replaceable,
    /// Survives replacement; cleared only by `revive`.
    Permanent,
}

#[derive(Debug, Default)]
struct InjectorState {
    op: u64,
    specs: Vec<FaultSpec>,
    dead: Vec<(FaultDomain, DeadKind)>,
    power_lost: bool,
    events: Vec<FaultEvent>,
    counters: FaultCounters,
}

impl InjectorState {
    fn dead_kind(&self, device: FaultDomain) -> Option<DeadKind> {
        self.dead.iter().find(|(d, _)| *d == device).map(|(_, k)| *k)
    }
}

/// Shared runtime fault injector. Cheap to clone (all clones share state).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Mutex<InjectorState>>,
}

impl FaultInjector {
    /// Injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let inner = InjectorState { specs: plan.specs, ..InjectorState::default() };
        FaultInjector { inner: Arc::new(Mutex::new(inner)) }
    }

    /// Injector with no faults (pure op counter).
    pub fn none() -> Self {
        FaultInjector::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Intercept one device operation. Called by every wrapped device
    /// immediately before touching its backing store.
    pub fn begin_io(&self, device: FaultDomain, dir: IoDir) -> IoOutcome {
        let mut st = self.lock();
        let op = st.op;
        st.op += 1;

        if st.power_lost {
            return IoOutcome::Fail(DevError::PowerLoss);
        }
        if st.dead_kind(device).is_some() {
            return IoOutcome::Fail(DevError::failed(device));
        }

        // A spec arms at `at_op` and fires on the first matching op at or
        // after it (the exact op index may belong to another device).
        let idx = st.specs.iter().position(|s| {
            s.at_op <= op
                && (s.device == FaultDomain::Unknown || s.device == device)
                && (s.dir.is_none() || s.dir == Some(dir))
        });
        let Some(idx) = idx else { return IoOutcome::Proceed };
        let spec = st.specs.swap_remove(idx);
        st.events.push(FaultEvent { op, device, dir, kind: spec.kind });
        st.counters.injected += 1;

        match spec.kind {
            FaultKind::TransientIo => {
                st.counters.transient += 1;
                IoOutcome::Fail(DevError::transient(device))
            }
            FaultKind::PersistentIo => {
                st.counters.persistent += 1;
                st.dead.push((device, DeadKind::Permanent));
                IoOutcome::Fail(DevError::failed(device))
            }
            FaultKind::DeviceDrop => {
                st.counters.device_drops += 1;
                st.dead.push((device, DeadKind::Replaceable));
                IoOutcome::Fail(DevError::failed(device))
            }
            FaultKind::TornWrite { valid_bytes } => {
                st.counters.torn_writes += 1;
                IoOutcome::Torn { valid_bytes: valid_bytes as usize }
            }
            FaultKind::CorruptPage { offset, len } => {
                st.counters.corrupted += 1;
                IoOutcome::Corrupt { offset: offset as usize, len: len as usize }
            }
            FaultKind::PowerLoss => {
                st.counters.power_losses += 1;
                st.power_lost = true;
                IoOutcome::Fail(DevError::PowerLoss)
            }
        }
    }

    /// Whether power is currently lost.
    pub fn power_lost(&self) -> bool {
        self.lock().power_lost
    }

    /// Restore power after a [`FaultKind::PowerLoss`] (the "reboot" step of a
    /// recovery test). Dead devices stay dead; later specs stay armed.
    pub fn restore_power(&self) {
        self.lock().power_lost = false;
    }

    /// Whether `device` is currently dead (persistent fault or drop).
    pub fn is_dead(&self, device: FaultDomain) -> bool {
        self.lock().dead_kind(device).is_some()
    }

    /// Notify the injector that `device` was physically replaced/rebuilt.
    /// Clears a [`FaultKind::DeviceDrop`]; a [`FaultKind::PersistentIo`]
    /// stays in force (there is no working spare).
    pub fn on_replace(&self, device: FaultDomain) {
        self.lock().dead.retain(|(d, k)| *d != device || *k == DeadKind::Permanent);
    }

    /// Forcibly clear any dead mark on `device` (tests / drills only).
    pub fn revive(&self, device: FaultDomain) {
        self.lock().dead.retain(|(d, _)| *d != device);
    }

    /// Global device-op count so far (the sweep clock).
    pub fn op_count(&self) -> u64 {
        self.lock().op
    }

    /// Every fault fired so far, in firing order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.lock().events.clone()
    }

    /// Snapshot of the fault tallies.
    pub fn counters(&self) -> FaultCounters {
        self.lock().counters
    }
}

/// Apply an [`IoOutcome`] to a write payload given the page's previous
/// contents. Returns the bytes that actually reach the medium, or the error.
pub fn apply_write_outcome(
    outcome: IoOutcome,
    data: &[u8],
    previous: &[u8],
) -> Result<Option<Vec<u8>>, DevError> {
    match outcome {
        IoOutcome::Proceed => Ok(None),
        IoOutcome::Fail(e) => Err(e),
        IoOutcome::Torn { valid_bytes } => {
            let cut = valid_bytes.min(data.len());
            let mut page = previous.to_vec();
            page[..cut].copy_from_slice(&data[..cut]);
            Ok(Some(page))
        }
        IoOutcome::Corrupt { offset, len } => {
            let mut page = data.to_vec();
            let start = offset.min(page.len());
            let end = offset.saturating_add(len).min(page.len());
            for b in &mut page[start..end] {
                *b ^= 0xFF;
            }
            Ok(Some(page))
        }
    }
}

/// Apply an [`IoOutcome`] to a freshly-read buffer (corruption only).
pub fn apply_read_outcome(outcome: IoOutcome, buf: &mut [u8]) -> Result<(), DevError> {
    match outcome {
        IoOutcome::Proceed | IoOutcome::Torn { .. } => Ok(()),
        IoOutcome::Fail(e) => Err(e),
        IoOutcome::Corrupt { offset, len } => {
            let start = offset.min(buf.len());
            let end = offset.saturating_add(len).min(buf.len());
            for b in &mut buf[start..end] {
                *b ^= 0xFF;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_counted_and_faults_fire_once() {
        let inj = FaultInjector::new(FaultPlan::new().transient(2, FaultDomain::Ssd));
        assert_eq!(inj.begin_io(FaultDomain::Ssd, IoDir::Read), IoOutcome::Proceed);
        assert_eq!(inj.begin_io(FaultDomain::Ssd, IoDir::Write), IoOutcome::Proceed);
        assert_eq!(
            inj.begin_io(FaultDomain::Ssd, IoDir::Read),
            IoOutcome::Fail(DevError::transient(FaultDomain::Ssd))
        );
        // One-shot: the very next op proceeds.
        assert_eq!(inj.begin_io(FaultDomain::Ssd, IoDir::Read), IoOutcome::Proceed);
        assert_eq!(inj.op_count(), 4);
        assert_eq!(inj.counters().transient, 1);
        assert_eq!(inj.events().len(), 1);
    }

    #[test]
    fn armed_spec_waits_for_its_device() {
        let inj = FaultInjector::new(FaultPlan::new().transient(0, FaultDomain::Disk(2)));
        // Op 0 goes elsewhere: the spec stays armed rather than expiring.
        assert_eq!(inj.begin_io(FaultDomain::Ssd, IoDir::Read), IoOutcome::Proceed);
        assert_eq!(
            inj.begin_io(FaultDomain::Disk(2), IoDir::Read),
            IoOutcome::Fail(DevError::transient(FaultDomain::Disk(2)))
        );
        assert_eq!(inj.counters().injected, 1);
    }

    #[test]
    fn persistent_faults_survive_replacement_drops_do_not() {
        let inj = FaultInjector::new(
            FaultPlan::new().persistent(0, FaultDomain::Ssd).drop_device(1, FaultDomain::Disk(0)),
        );
        assert!(matches!(inj.begin_io(FaultDomain::Ssd, IoDir::Write), IoOutcome::Fail(_)));
        assert!(matches!(inj.begin_io(FaultDomain::Disk(0), IoDir::Write), IoOutcome::Fail(_)));
        assert!(inj.is_dead(FaultDomain::Ssd));
        assert!(inj.is_dead(FaultDomain::Disk(0)));

        inj.on_replace(FaultDomain::Ssd);
        inj.on_replace(FaultDomain::Disk(0));
        assert!(inj.is_dead(FaultDomain::Ssd), "no spare for a persistent fault");
        assert!(!inj.is_dead(FaultDomain::Disk(0)), "drop cleared by rebuild");

        inj.revive(FaultDomain::Ssd);
        assert!(!inj.is_dead(FaultDomain::Ssd));
    }

    #[test]
    fn power_loss_stops_everything_until_restored() {
        let inj = FaultInjector::new(FaultPlan::new().power_loss(1));
        assert_eq!(inj.begin_io(FaultDomain::Disk(1), IoDir::Write), IoOutcome::Proceed);
        assert_eq!(
            inj.begin_io(FaultDomain::Ssd, IoDir::Write),
            IoOutcome::Fail(DevError::PowerLoss)
        );
        assert_eq!(
            inj.begin_io(FaultDomain::Disk(0), IoDir::Read),
            IoOutcome::Fail(DevError::PowerLoss)
        );
        assert!(inj.power_lost());
        inj.restore_power();
        assert_eq!(inj.begin_io(FaultDomain::Disk(0), IoDir::Read), IoOutcome::Proceed);
    }

    #[test]
    fn torn_write_keeps_old_suffix() {
        let out = IoOutcome::Torn { valid_bytes: 3 };
        let page =
            apply_write_outcome(out, &[9, 9, 9, 9, 9, 9], &[1, 2, 3, 4, 5, 6]).unwrap().unwrap();
        assert_eq!(page, vec![9, 9, 9, 4, 5, 6]);
    }

    #[test]
    fn corrupt_flips_requested_range() {
        let page = apply_write_outcome(
            IoOutcome::Corrupt { offset: 1, len: 2 },
            &[0, 0, 0, 0],
            &[0, 0, 0, 0],
        )
        .unwrap()
        .unwrap();
        assert_eq!(page, vec![0, 0xFF, 0xFF, 0]);

        let mut buf = [0u8; 4];
        apply_read_outcome(IoOutcome::Corrupt { offset: 2, len: 10 }, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0xFF, 0xFF]);
    }

    #[test]
    fn randomized_plans_are_reproducible() {
        let a = FaultPlan::randomized(42, 1000, 5, 8);
        let b = FaultPlan::randomized(42, 1000, 5, 8);
        let c = FaultPlan::randomized(43, 1000, 5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.specs.len(), 8);
    }

    #[test]
    fn plan_parsing_roundtrip() {
        let plan =
            FaultPlan::parse("ssd@120:transient, disk1@50:drop, any@200:power, disk0@7:torn=100")
                .unwrap();
        assert_eq!(plan.specs.len(), 4);
        assert_eq!(
            plan.specs[0],
            FaultSpec {
                at_op: 120,
                device: FaultDomain::Ssd,
                dir: None,
                kind: FaultKind::TransientIo
            }
        );
        assert_eq!(plan.specs[1].device, FaultDomain::Disk(1));
        assert_eq!(plan.specs[2].kind, FaultKind::PowerLoss);
        assert_eq!(plan.specs[3].kind, FaultKind::TornWrite { valid_bytes: 100 });

        assert!(FaultPlan::parse("ssd@x:transient").is_err());
        assert!(FaultPlan::parse("floppy@1:transient").is_err());
        assert!(FaultPlan::parse("ssd@1:explode").is_err());
        assert!(
            FaultPlan::parse("disk0@3:corrupt=16+32").unwrap().specs[0].kind
                == FaultKind::CorruptPage { offset: 16, len: 32 }
        );
    }
}
