//! The SSD cache device: FTL + content store + timing.
//!
//! [`SsdDevice`] is what the cache layer writes to. It combines:
//!
//! * the [`Ftl`] for wear/write-amplification accounting and channel
//!   placement,
//! * a sparse [`MemStore`] holding actual page contents (keyed by logical
//!   page, since the FTL hides physical placement), and
//! * [`FlashTimings`] to produce per-operation service times.
//!
//! Sub-page writes (KDD's compacted delta pages are still whole-page
//! programs; the *metadata* log writes whole pages too) are charged a full
//! page program, as on real flash.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::error::{DevError, FaultDomain};
use crate::fault::FaultInjector;
use crate::flash::{FlashGeometry, FlashTimings};
use crate::ftl::{EnduranceReport, Ftl};
use crate::store::{MemStore, PageStore};
use kdd_util::units::SimTime;

/// An SSD with contents, wear accounting and service times.
///
/// # Examples
///
/// ```
/// use kdd_blockdev::SsdDevice;
///
/// let mut ssd = SsdDevice::with_logical_capacity(1 << 20, 4096, 0.07);
/// let page = vec![0xAB; 4096];
/// let t = ssd.write_page(3, &page).unwrap();
/// assert!(t.as_micros() >= 900, "MLC program time");
///
/// let mut buf = vec![0u8; 4096];
/// ssd.read_page(3, &mut buf).unwrap();
/// assert_eq!(buf, page);
/// assert_eq!(ssd.endurance().host_written_bytes, 4096);
/// ```
#[derive(Debug, Clone)]
pub struct SsdDevice {
    ftl: Ftl,
    store: MemStore,
    failed: bool,
    injector: Option<FaultInjector>,
}

impl SsdDevice {
    /// Create an SSD exposing at least `logical_bytes` of logical space.
    ///
    /// Physical capacity is sized up so that after over-provisioning
    /// (`op_fraction`) the logical space fits.
    pub fn with_logical_capacity(logical_bytes: u64, page_size: u32, op_fraction: f64) -> Self {
        let physical = (logical_bytes as f64 / (1.0 - op_fraction)).ceil() as u64;
        let geometry = FlashGeometry::fit_capacity(physical, page_size);
        let ftl = Ftl::new(geometry, FlashTimings::mlc_default(), op_fraction);
        let store = MemStore::new(ftl.logical_pages(), page_size);
        SsdDevice { ftl, store, failed: false, injector: None }
    }

    /// Create from explicit geometry/timings.
    pub fn new(geometry: FlashGeometry, timings: FlashTimings, op_fraction: f64) -> Self {
        let ftl = Ftl::new(geometry, timings, op_fraction);
        let store = MemStore::new(ftl.logical_pages(), geometry.page_size);
        SsdDevice { ftl, store, failed: false, injector: None }
    }

    /// Logical pages available to the cache layer.
    pub fn capacity_pages(&self) -> u64 {
        self.ftl.logical_pages()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.store.page_size()
    }

    /// Number of independent flash channels (read parallelism).
    pub fn channels(&self) -> u32 {
        self.ftl.geometry().channels
    }

    /// Route every page I/O through `injector` as [`FaultDomain::Ssd`].
    pub fn attach_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector.clone());
        self.store.attach_injector(injector, FaultDomain::Ssd);
    }

    /// Read a logical page; returns its service time.
    pub fn read_page(&self, lpn: u64, buf: &mut [u8]) -> Result<SimTime, DevError> {
        if self.failed {
            return Err(DevError::failed(FaultDomain::Ssd));
        }
        let cost = self.ftl.read(lpn)?;
        self.store.read_page(lpn, buf)?;
        Ok(cost.service_time(self.ftl.timings()))
    }

    /// Read several logical pages concurrently; the service time is the
    /// maximum over the channels involved (the SSD-internal parallelism
    /// KDD leans on to fetch data and delta together, §IV-B2).
    pub fn read_pages_parallel(
        &self,
        lpns: &[u64],
        bufs: &mut [Vec<u8>],
    ) -> Result<SimTime, DevError> {
        assert_eq!(lpns.len(), bufs.len());
        if self.failed {
            return Err(DevError::failed(FaultDomain::Ssd));
        }
        let t = self.ftl.timings();
        let mut per_channel = vec![SimTime::ZERO; self.channels() as usize];
        for (&lpn, buf) in lpns.iter().zip(bufs.iter_mut()) {
            let cost = self.ftl.read(lpn)?;
            self.store.read_page(lpn, buf)?;
            per_channel[cost.channel as usize] += cost.service_time(t);
        }
        Ok(per_channel.into_iter().max().unwrap_or(SimTime::ZERO))
    }

    /// Write a logical page; returns its service time (including any GC).
    pub fn write_page(&mut self, lpn: u64, data: &[u8]) -> Result<SimTime, DevError> {
        if self.failed {
            return Err(DevError::failed(FaultDomain::Ssd));
        }
        let cost = self.ftl.write(lpn)?;
        self.store.write_page(lpn, data)?;
        Ok(cost.service_time(self.ftl.timings()))
    }

    /// Discard a logical page (cache eviction) — free for the flash.
    pub fn trim_page(&mut self, lpn: u64) -> Result<(), DevError> {
        if self.failed {
            return Err(DevError::failed(FaultDomain::Ssd));
        }
        self.ftl.trim(lpn)?;
        self.store.trim_page(lpn)
    }

    /// Whether a logical page currently holds data.
    pub fn is_mapped(&self, lpn: u64) -> bool {
        !self.failed && self.ftl.is_mapped(lpn)
    }

    /// Inject an SSD failure: contents lost, all I/O errors until replaced.
    pub fn fail(&mut self) {
        self.failed = true;
        self.store.fail();
    }

    /// Whether the device is failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Swap in a fresh replacement device of identical shape.
    pub fn replace(&mut self) {
        let geometry = *self.ftl.geometry();
        let timings = *self.ftl.timings();
        // Recompute the original OP fraction from the exposed capacity.
        let op = 1.0 - self.ftl.logical_pages() as f64 / geometry.total_pages() as f64;
        self.ftl = Ftl::new(geometry, timings, op.clamp(0.02, 0.5));
        self.store.replace();
        self.failed = false;
        if let Some(inj) = &self.injector {
            // A drop is cured by the spare; a persistent fault is not.
            inj.on_replace(FaultDomain::Ssd);
        }
    }

    /// Endurance snapshot (wear, WAF, projected lifetime).
    pub fn endurance(&self) -> EnduranceReport {
        self.ftl.endurance()
    }

    /// Per-block erase counts (observability wear histogram).
    pub fn erase_counts(&self) -> impl Iterator<Item = u32> + '_ {
        self.ftl.erase_counts()
    }

    /// Projected total host bytes writable before wear-out at current WAF.
    pub fn projected_lifetime_bytes(&self) -> f64 {
        self.ftl.endurance().projected_lifetime_bytes(self.ftl.geometry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ssd() -> SsdDevice {
        // ~8 MiB logical.
        SsdDevice::with_logical_capacity(8 << 20, 4096, 0.1)
    }

    #[test]
    fn logical_capacity_at_least_requested() {
        let d = small_ssd();
        assert!(d.capacity_pages() * 4096 >= 8 << 20);
    }

    #[test]
    fn rw_roundtrip_with_times() {
        let mut d = small_ssd();
        let data = vec![0x42u8; 4096];
        let tw = d.write_page(10, &data).unwrap();
        let mut buf = vec![0u8; 4096];
        let tr = d.read_page(10, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert!(tw > tr, "program {tw} should cost more than read {tr}");
    }

    #[test]
    fn parallel_read_cheaper_than_serial() {
        let mut d = small_ssd();
        let data = vec![1u8; 4096];
        // Write enough pages to touch several channels.
        for lpn in 0..64 {
            d.write_page(lpn, &data).unwrap();
        }
        let lpns: Vec<u64> = (0..8).collect();
        let mut bufs = vec![vec![0u8; 4096]; 8];
        let t_par = d.read_pages_parallel(&lpns, &mut bufs).unwrap();
        let mut t_ser = SimTime::ZERO;
        for &lpn in &lpns {
            let mut b = vec![0u8; 4096];
            t_ser += d.read_page(lpn, &mut b).unwrap();
        }
        assert!(t_par < t_ser, "parallel {t_par} vs serial {t_ser}");
        for b in &bufs {
            assert_eq!(b, &data);
        }
    }

    #[test]
    fn failure_and_replacement() {
        let mut d = small_ssd();
        d.write_page(0, &vec![9u8; 4096]).unwrap();
        d.fail();
        assert!(d.is_failed());
        let mut buf = vec![0u8; 4096];
        assert_eq!(d.read_page(0, &mut buf), Err(DevError::failed(FaultDomain::Ssd)));
        d.replace();
        assert!(!d.is_failed());
        assert!(!d.is_mapped(0), "replacement must be empty");
        assert_eq!(d.endurance().host_written_bytes, 0, "fresh wear counters");
    }

    #[test]
    fn trim_unmaps() {
        let mut d = small_ssd();
        d.write_page(3, &vec![1u8; 4096]).unwrap();
        assert!(d.is_mapped(3));
        d.trim_page(3).unwrap();
        assert!(!d.is_mapped(3));
    }

    #[test]
    fn endurance_tracks_traffic() {
        let mut d = small_ssd();
        let data = vec![7u8; 4096];
        for i in 0..100 {
            d.write_page(i % 10, &data).unwrap();
        }
        let rep = d.endurance();
        assert_eq!(rep.host_written_bytes, 100 * 4096);
        assert!(rep.waf() >= 1.0);
        assert!(d.projected_lifetime_bytes() > 0.0);
    }
}
