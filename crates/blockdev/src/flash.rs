//! NAND flash geometry and raw operation timings.
//!
//! Flash is read/programmed in pages and erased in blocks (64–128 pages);
//! blocks sustain a finite number of erasures (§II-A). Geometry matters to
//! the reproduction for two reasons: the FTL's write amplification depends
//! on block size and over-provisioning, and the SSD's channel count gives
//! the internal parallelism KDD exploits to read data+delta concurrently
//! (§IV-B2).

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_util::units::SimTime;
use serde::{Deserialize, Serialize};

/// Physical layout of a NAND flash device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Independent channels (command parallelism).
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Erase blocks per die.
    pub blocks_per_die: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_size: u32,
}

impl FlashGeometry {
    /// Geometry sized to hold at least `capacity_bytes` of physical flash,
    /// shaped like a small commodity MLC cache device (8 channels,
    /// 128-page blocks, 4 KiB pages).
    pub fn fit_capacity(capacity_bytes: u64, page_size: u32) -> Self {
        let channels = 8u32;
        let dies_per_channel = 1u32;
        let pages_per_block = 128u32;
        let block_bytes = pages_per_block as u64 * page_size as u64;
        let blocks_needed = capacity_bytes.div_ceil(block_bytes);
        let blocks_per_die =
            (blocks_needed.div_ceil(channels as u64 * dies_per_channel as u64)).max(4) as u32;
        FlashGeometry { channels, dies_per_channel, blocks_per_die, pages_per_block, page_size }
    }

    /// Total erase blocks.
    pub fn total_blocks(&self) -> u64 {
        self.channels as u64 * self.dies_per_channel as u64 * self.blocks_per_die as u64
    }

    /// Total physical pages.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Total physical bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Channel that owns physical block `block` (blocks are striped
    /// round-robin across channels so sequential allocation spreads load).
    pub fn channel_of_block(&self, block: u64) -> u32 {
        (block % self.channels as u64) as u32
    }
}

/// Raw NAND operation latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashTimings {
    /// Page read (cell sense) time.
    pub read_page: SimTime,
    /// Page program time.
    pub program_page: SimTime,
    /// Block erase time.
    pub erase_block: SimTime,
    /// Bus transfer time for one page over its channel.
    pub xfer_page: SimTime,
    /// Rated program/erase cycles per block before wear-out.
    pub rated_pe_cycles: u32,
}

impl FlashTimings {
    /// Typical MLC NAND (the paper's endurance discussion assumes MLC with
    /// 5 000–10 000 cycles; we default to the midpoint).
    pub fn mlc_default() -> Self {
        FlashTimings {
            read_page: SimTime::from_micros(50),
            program_page: SimTime::from_micros(900),
            erase_block: SimTime::from_micros(3_500),
            xfer_page: SimTime::from_micros(20),
            rated_pe_cycles: 7_500,
        }
    }

    /// SLC-like timings (fast, high endurance) for ablations.
    pub fn slc_default() -> Self {
        FlashTimings {
            read_page: SimTime::from_micros(25),
            program_page: SimTime::from_micros(250),
            erase_block: SimTime::from_micros(1_500),
            xfer_page: SimTime::from_micros(20),
            rated_pe_cycles: 100_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_capacity_covers_request() {
        for gib in [1u64, 4, 120] {
            let bytes = gib * 1024 * 1024 * 1024;
            let g = FlashGeometry::fit_capacity(bytes, 4096);
            assert!(g.capacity_bytes() >= bytes, "{gib}GiB: got {}", g.capacity_bytes());
            // No more than one block of slack per die.
            let slack = g.capacity_bytes() - bytes;
            let max_slack =
                g.channels as u64 * g.dies_per_channel as u64 * g.pages_per_block as u64 * 4096;
            assert!(slack <= max_slack, "slack {slack} > {max_slack}");
        }
    }

    #[test]
    fn geometry_arithmetic() {
        let g = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            blocks_per_die: 10,
            pages_per_block: 64,
            page_size: 4096,
        };
        assert_eq!(g.total_blocks(), 40);
        assert_eq!(g.total_pages(), 2560);
        assert_eq!(g.capacity_bytes(), 2560 * 4096);
    }

    #[test]
    fn channels_cover_blocks() {
        let g = FlashGeometry::fit_capacity(1 << 30, 4096);
        let mut seen = vec![false; g.channels as usize];
        for b in 0..g.channels as u64 * 2 {
            seen[g.channel_of_block(b) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mlc_slower_than_slc() {
        let mlc = FlashTimings::mlc_default();
        let slc = FlashTimings::slc_default();
        assert!(mlc.program_page > slc.program_page);
        assert!(mlc.rated_pe_cycles < slc.rated_pe_cycles);
    }
}
