//! Block-device substrate for the KDD reproduction.
//!
//! The paper's testbed is 15 × 1 TB 7200 RPM disks plus a 120 GB SSD
//! (§IV-B1). We rebuild both ends in software:
//!
//! * [`store`] — sparse in-memory page stores holding actual page contents
//!   (used by the prototype-style engine and by RAID correctness tests);
//! * [`hdd`] — a mechanical-disk service-time model (seek + rotation +
//!   transfer) parameterised like a 7200 RPM enterprise drive;
//! * [`flash`] + [`ftl`] — NAND geometry/timing and a page-mapped FTL with
//!   greedy garbage collection and per-block erase-count (wear) accounting,
//!   which is what turns "bytes written to the SSD" into the paper's
//!   *lifetime* claim (§IV-A3: "extending the lifetime of SSD by up to
//!   5.1×");
//! * [`ssd`] — an SSD device combining the FTL with channel-parallel
//!   timing;
//! * [`nvram`] — the battery-backed RAM the paper assumes for KDD's staging
//!   buffer, metadata buffer and log head/tail counters (§III-B), with
//!   capacity accounting and power-failure survival semantics for the
//!   recovery tests.

#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod flash;
pub mod ftl;
pub mod hdd;
pub mod nvram;
pub mod ssd;
pub mod store;

pub use error::{DevError, FaultDomain};
pub use fault::{
    FaultCounters, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSpec, IoDir, IoOutcome,
};
pub use flash::{FlashGeometry, FlashTimings};
pub use ftl::{EnduranceReport, Ftl};
pub use hdd::HddModel;
pub use nvram::Nvram;
pub use ssd::SsdDevice;
pub use store::{MemStore, PageStore};
