//! Page-mapped flash translation layer with greedy GC and wear accounting.
//!
//! The paper's endurance argument is stated in *bytes written to the SSD*;
//! the FTL turns those bytes into erase cycles (including the write
//! amplification of garbage collection) so the repository can report real
//! lifetime numbers: a cache policy that writes 5.1× less data makes the
//! device last ~5.1× longer at equal write amplification (§IV-A3).
//!
//! Design: logical pages map to physical pages; writes go to per-channel
//! open blocks (round-robin for channel parallelism); when free blocks run
//! low a greedy collector victimises the block with the fewest valid pages,
//! relocates them, and erases it. Per-block erase counts model wear, and a
//! block past its rated P/E cycles is retired.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::error::{DevError, FaultDomain};
use crate::flash::{FlashGeometry, FlashTimings};
use kdd_util::units::SimTime;
use serde::{Deserialize, Serialize};

const UNMAPPED: u64 = u64::MAX;

/// What one host operation cost the flash array (for the timing layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlashOpCost {
    /// Channel the final page landed on / was read from.
    pub channel: u32,
    /// NAND pages programmed (1 host page + GC relocations).
    pub pages_programmed: u64,
    /// NAND pages read (GC relocations).
    pub pages_read: u64,
    /// Blocks erased.
    pub erases: u64,
}

impl FlashOpCost {
    /// Total device-busy time implied by this op, assuming the GC work is
    /// serialised on the op's channel (a pessimistic but simple bound; the
    /// discrete-event simulator can overlap channels instead).
    pub fn service_time(&self, t: &FlashTimings) -> SimTime {
        t.xfer_page * (self.pages_programmed + self.pages_read)
            + t.program_page * self.pages_programmed
            + t.read_page * self.pages_read
            + t.erase_block * self.erases
    }
}

/// Cumulative endurance statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EnduranceReport {
    /// Bytes the host wrote to the device.
    pub host_written_bytes: u64,
    /// Bytes physically programmed to NAND (host + GC relocation).
    pub nand_written_bytes: u64,
    /// Total block erasures.
    pub erases: u64,
    /// Mean erase count over all blocks.
    pub mean_erase_count: f64,
    /// Maximum erase count over all blocks.
    pub max_erase_count: u32,
    /// Rated P/E cycles per block.
    pub rated_pe_cycles: u32,
    /// Fraction of rated life consumed (mean erase / rated).
    pub life_used: f64,
}

impl EnduranceReport {
    /// Write amplification factor (NAND bytes / host bytes); 1.0 if no
    /// host writes yet.
    pub fn waf(&self) -> f64 {
        if self.host_written_bytes == 0 {
            1.0
        } else {
            self.nand_written_bytes as f64 / self.host_written_bytes as f64
        }
    }

    /// Projected total host bytes writable before the device wears out,
    /// extrapolating current write amplification.
    pub fn projected_lifetime_bytes(&self, geometry: &FlashGeometry) -> f64 {
        let raw_endurance = geometry.capacity_bytes() as f64 * self.rated_pe_cycles as f64;
        raw_endurance / self.waf()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Open,
    Full,
    Retired,
}

#[derive(Debug, Clone)]
struct Block {
    state: BlockState,
    valid: u32,
    write_ptr: u32,
    erase_count: u32,
}

/// Page-mapped FTL over a [`FlashGeometry`].
#[derive(Debug, Clone)]
pub struct Ftl {
    geometry: FlashGeometry,
    timings: FlashTimings,
    /// Logical capacity exposed to the host (after over-provisioning).
    logical_pages: u64,
    map: Vec<u64>,
    rmap: Vec<u64>,
    blocks: Vec<Block>,
    /// Open block per channel, or UNMAPPED.
    open_blocks: Vec<u64>,
    free_blocks: u64,
    gc_threshold: u64,
    host_pages_written: u64,
    nand_pages_written: u64,
    erases: u64,
}

impl Ftl {
    /// Build an FTL with the given over-provisioning fraction (e.g. 0.07).
    ///
    /// # Panics
    /// Panics if `op_fraction` is not in `[0.02, 0.5]` — below ~2 % the
    /// greedy collector livelocks, above 50 % is outside any real device.
    pub fn new(geometry: FlashGeometry, timings: FlashTimings, op_fraction: f64) -> Self {
        assert!((0.02..=0.5).contains(&op_fraction), "unrealistic over-provisioning");
        let physical = geometry.total_pages();
        let logical_pages = ((physical as f64) * (1.0 - op_fraction)) as u64;
        let total_blocks = geometry.total_blocks() as usize;
        let gc_threshold = (geometry.channels as u64 + 2).min(geometry.total_blocks() / 4).max(2);
        Ftl {
            geometry,
            timings,
            logical_pages,
            map: vec![UNMAPPED; logical_pages as usize],
            rmap: vec![UNMAPPED; physical as usize],
            blocks: vec![
                Block { state: BlockState::Free, valid: 0, write_ptr: 0, erase_count: 0 };
                total_blocks
            ],
            open_blocks: vec![UNMAPPED; geometry.channels as usize],
            free_blocks: total_blocks as u64,
            gc_threshold,
            host_pages_written: 0,
            nand_pages_written: 0,
            erases: 0,
        }
    }

    /// Logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// The device geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The device timings.
    pub fn timings(&self) -> &FlashTimings {
        &self.timings
    }

    #[inline]
    fn block_of_ppn(&self, ppn: u64) -> u64 {
        ppn / self.geometry.pages_per_block as u64
    }

    fn check_lpn(&self, lpn: u64) -> Result<(), DevError> {
        if lpn >= self.logical_pages {
            Err(DevError::OutOfRange { lpn, capacity: self.logical_pages })
        } else {
            Ok(())
        }
    }

    /// Translate a logical page for reading; returns the channel it lives
    /// on, or `Unmapped` if never written.
    pub fn read(&self, lpn: u64) -> Result<FlashOpCost, DevError> {
        self.check_lpn(lpn)?;
        let ppn = self.map[lpn as usize];
        if ppn == UNMAPPED {
            return Err(DevError::Unmapped { lpn });
        }
        Ok(FlashOpCost {
            channel: self.geometry.channel_of_block(self.block_of_ppn(ppn)),
            pages_read: 1,
            ..Default::default()
        })
    }

    /// Whether a logical page is currently mapped.
    pub fn is_mapped(&self, lpn: u64) -> bool {
        lpn < self.logical_pages && self.map[lpn as usize] != UNMAPPED
    }

    /// Write (or overwrite) a logical page; returns the cost including any
    /// garbage collection it triggered.
    pub fn write(&mut self, lpn: u64) -> Result<FlashOpCost, DevError> {
        self.check_lpn(lpn)?;
        let mut cost = FlashOpCost::default();
        // Invalidate the old copy first: its space becomes reclaimable.
        let old = self.map[lpn as usize];
        if old != UNMAPPED {
            self.invalidate_ppn(old);
        }
        let ppn = self.allocate_page(lpn, &mut cost)?;
        self.map[lpn as usize] = ppn;
        self.rmap[ppn as usize] = lpn;
        cost.pages_programmed += 1;
        cost.channel = self.geometry.channel_of_block(self.block_of_ppn(ppn));
        self.host_pages_written = self.host_pages_written.saturating_add(1);
        self.nand_pages_written = self.nand_pages_written.saturating_add(1);
        Ok(cost)
    }

    /// Discard a logical page (cache eviction); frees its flash space
    /// without any NAND write.
    pub fn trim(&mut self, lpn: u64) -> Result<(), DevError> {
        self.check_lpn(lpn)?;
        let ppn = self.map[lpn as usize];
        if ppn != UNMAPPED {
            self.invalidate_ppn(ppn);
            self.map[lpn as usize] = UNMAPPED;
        }
        Ok(())
    }

    fn invalidate_ppn(&mut self, ppn: u64) {
        let b = self.block_of_ppn(ppn) as usize;
        debug_assert!(self.blocks[b].valid > 0);
        self.blocks[b].valid -= 1;
        self.rmap[ppn as usize] = UNMAPPED;
    }

    /// Allocate one physical page, running GC if free space is low.
    fn allocate_page(&mut self, _for_lpn: u64, cost: &mut FlashOpCost) -> Result<u64, DevError> {
        if self.free_blocks <= self.gc_threshold {
            self.collect(cost)?;
        }
        // Round-robin over channels: pick the channel whose open block has
        // the lowest fill (spreads programs across channels).
        let ppb = self.geometry.pages_per_block as u64;
        for attempt in 0..2 {
            let mut best: Option<(usize, u32)> = None;
            for (ch, &ob) in self.open_blocks.iter().enumerate() {
                if ob != UNMAPPED {
                    let wp = self.blocks[ob as usize].write_ptr;
                    if best.is_none_or(|(_, bwp)| wp < bwp) {
                        best = Some((ch, wp));
                    }
                }
            }
            if let Some((ch, _)) = best {
                let ob = self.open_blocks[ch];
                let blk = &mut self.blocks[ob as usize];
                let ppn = ob * ppb + blk.write_ptr as u64;
                blk.write_ptr += 1;
                blk.valid += 1;
                if blk.write_ptr == self.geometry.pages_per_block {
                    blk.state = BlockState::Full;
                    self.open_blocks[ch] = UNMAPPED;
                }
                return Ok(ppn);
            }
            // No open block anywhere: open one per channel from the free list.
            if attempt == 0 {
                self.open_channel_blocks()?;
            }
        }
        Err(DevError::failed(FaultDomain::Ssd))
    }

    /// Open a free block on every channel that lacks one.
    fn open_channel_blocks(&mut self) -> Result<(), DevError> {
        let channels = self.geometry.channels as usize;
        for ch in 0..channels {
            if self.open_blocks[ch] != UNMAPPED {
                continue;
            }
            // Wear-levelling flavour: among free blocks on this channel,
            // choose the one with the lowest erase count.
            let mut chosen: Option<(u64, u32)> = None;
            for b in 0..self.blocks.len() as u64 {
                if self.geometry.channel_of_block(b) as usize == ch
                    && self.blocks[b as usize].state == BlockState::Free
                {
                    let ec = self.blocks[b as usize].erase_count;
                    if chosen.is_none_or(|(_, best)| ec < best) {
                        chosen = Some((b, ec));
                    }
                }
            }
            if let Some((b, _)) = chosen {
                self.blocks[b as usize].state = BlockState::Open;
                self.blocks[b as usize].write_ptr = 0;
                self.open_blocks[ch] = b;
                self.free_blocks -= 1;
            }
        }
        if self.open_blocks.iter().all(|&b| b == UNMAPPED) {
            return Err(DevError::failed(FaultDomain::Ssd));
        }
        Ok(())
    }

    /// Greedy garbage collection: victimise full blocks with the fewest
    /// valid pages until the free pool is above threshold.
    fn collect(&mut self, cost: &mut FlashOpCost) -> Result<(), DevError> {
        let ppb = self.geometry.pages_per_block as u64;
        let mut guard = 0;
        while self.free_blocks <= self.gc_threshold {
            guard += 1;
            if guard > self.blocks.len() * 2 {
                return Err(DevError::failed(FaultDomain::Ssd)); // no reclaimable space
            }
            let mut victim: Option<(u64, u32)> = None;
            for b in 0..self.blocks.len() as u64 {
                let blk = &self.blocks[b as usize];
                if blk.state == BlockState::Full && victim.is_none_or(|(_, v)| blk.valid < v) {
                    victim = Some((b, blk.valid));
                }
            }
            let Some((vb, valid)) = victim else {
                return Err(DevError::failed(FaultDomain::Ssd));
            };
            // Relocate valid pages.
            if valid > 0 {
                let mut moved = 0;
                for p in 0..ppb {
                    let ppn = vb * ppb + p;
                    let lpn = self.rmap[ppn as usize];
                    if lpn != UNMAPPED {
                        // GC read + program.
                        cost.pages_read += 1;
                        // Mark the source invalid before reallocating so the
                        // victim's valid count drains.
                        self.invalidate_ppn(ppn);
                        let new_ppn = self.allocate_page_for_gc(vb)?;
                        self.map[lpn as usize] = new_ppn;
                        self.rmap[new_ppn as usize] = lpn;
                        cost.pages_programmed += 1;
                        self.nand_pages_written = self.nand_pages_written.saturating_add(1);
                        moved += 1;
                    }
                }
                debug_assert_eq!(moved, valid);
            }
            // Erase the victim.
            let blk = &mut self.blocks[vb as usize];
            blk.erase_count = blk.erase_count.saturating_add(1);
            blk.write_ptr = 0;
            blk.valid = 0;
            self.erases = self.erases.saturating_add(1);
            cost.erases = cost.erases.saturating_add(1);
            if blk.erase_count >= self.timings.rated_pe_cycles {
                blk.state = BlockState::Retired;
                // Retired blocks never return to the pool; if everything is
                // retired the device is worn out.
                if self.blocks.iter().all(|b| b.state == BlockState::Retired) {
                    return Err(DevError::WornOut { block: vb });
                }
            } else {
                blk.state = BlockState::Free;
                self.free_blocks += 1;
            }
        }
        Ok(())
    }

    /// Allocation for GC relocation: must not recurse into GC, and must not
    /// target the victim block.
    fn allocate_page_for_gc(&mut self, victim: u64) -> Result<u64, DevError> {
        let ppb = self.geometry.pages_per_block as u64;
        loop {
            // Prefer any open block with room.
            if let Some(ch) = (0..self.open_blocks.len()).find(|&ch| {
                let ob = self.open_blocks[ch];
                ob != UNMAPPED && ob != victim
            }) {
                let ob = self.open_blocks[ch];
                let blk = &mut self.blocks[ob as usize];
                let ppn = ob * ppb + blk.write_ptr as u64;
                blk.write_ptr += 1;
                blk.valid += 1;
                if blk.write_ptr == self.geometry.pages_per_block {
                    blk.state = BlockState::Full;
                    self.open_blocks[ch] = UNMAPPED;
                }
                return Ok(ppn);
            }
            self.open_channel_blocks()?;
        }
    }

    /// Per-block erase counts, in physical block order (feeds the
    /// observability wear histogram without exposing `Block`).
    pub fn erase_counts(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.iter().map(|b| b.erase_count)
    }

    /// Endurance snapshot.
    pub fn endurance(&self) -> EnduranceReport {
        let page_bytes = self.geometry.page_size as u64;
        let n = self.blocks.len() as f64;
        let mean = self.blocks.iter().map(|b| b.erase_count as f64).sum::<f64>() / n;
        let max = self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0);
        EnduranceReport {
            host_written_bytes: self.host_pages_written * page_bytes,
            nand_written_bytes: self.nand_pages_written * page_bytes,
            erases: self.erases,
            mean_erase_count: mean,
            max_erase_count: max,
            rated_pe_cycles: self.timings.rated_pe_cycles,
            life_used: mean / self.timings.rated_pe_cycles as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> Ftl {
        let g = FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            blocks_per_die: 32,
            pages_per_block: 16,
            page_size: 4096,
        };
        Ftl::new(g, FlashTimings::mlc_default(), 0.25)
    }

    #[test]
    fn logical_capacity_respects_op() {
        let f = small_ftl();
        // 64 blocks * 16 pages = 1024 physical; 25% OP => 768 logical.
        assert_eq!(f.logical_pages(), 768);
    }

    #[test]
    fn write_then_read_maps() {
        let mut f = small_ftl();
        assert!(matches!(f.read(5), Err(DevError::Unmapped { .. })));
        let c = f.write(5).unwrap();
        assert_eq!(c.pages_programmed, 1);
        assert!(f.is_mapped(5));
        let r = f.read(5).unwrap();
        assert_eq!(r.pages_read, 1);
    }

    #[test]
    fn overwrite_invalidates_old_copy() {
        let mut f = small_ftl();
        f.write(1).unwrap();
        f.write(1).unwrap();
        let rep = f.endurance();
        assert_eq!(rep.host_written_bytes, 2 * 4096);
        // Exactly one page valid for lpn 1.
        let total_valid: u32 = f.blocks.iter().map(|b| b.valid).sum();
        assert_eq!(total_valid, 1);
    }

    #[test]
    fn trim_frees_space_without_writes() {
        let mut f = small_ftl();
        f.write(2).unwrap();
        let before = f.endurance().nand_written_bytes;
        f.trim(2).unwrap();
        assert!(!f.is_mapped(2));
        assert_eq!(f.endurance().nand_written_bytes, before);
        assert!(matches!(f.read(2), Err(DevError::Unmapped { .. })));
    }

    #[test]
    fn sequential_fill_has_waf_one() {
        let mut f = small_ftl();
        for lpn in 0..f.logical_pages() {
            f.write(lpn).unwrap();
        }
        let rep = f.endurance();
        assert!(rep.waf() < 1.01, "sequential fill WAF {}", rep.waf());
    }

    #[test]
    fn overwrite_churn_triggers_gc_and_waf() {
        let mut f = small_ftl();
        // Fill the device, then overwrite hot pages far beyond capacity.
        for lpn in 0..f.logical_pages() {
            f.write(lpn).unwrap();
        }
        for i in 0..(f.logical_pages() * 6) {
            f.write(i % f.logical_pages()).unwrap();
        }
        let rep = f.endurance();
        assert!(rep.erases > 0, "GC never ran");
        assert!(rep.waf() >= 1.0);
        assert!(rep.waf() < 3.0, "WAF blew up: {}", rep.waf());
        // Every logical page still readable.
        for lpn in 0..f.logical_pages() {
            f.read(lpn).unwrap();
        }
    }

    #[test]
    fn gc_preserves_mapping_integrity() {
        let mut f = small_ftl();
        for round in 0..8u64 {
            for lpn in 0..f.logical_pages() {
                if (lpn + round) % 3 != 0 {
                    f.write(lpn).unwrap();
                }
            }
        }
        // rmap/map must agree everywhere.
        for lpn in 0..f.logical_pages() {
            let ppn = f.map[lpn as usize];
            if ppn != UNMAPPED {
                assert_eq!(f.rmap[ppn as usize], lpn, "rmap broken at lpn {lpn}");
            }
        }
        // Per-block valid counts must match the rmap.
        for (b, blk) in f.blocks.iter().enumerate() {
            let counted = (0..f.geometry.pages_per_block as u64)
                .filter(|&p| f.rmap[b * 16 + p as usize] != UNMAPPED)
                .count() as u32;
            assert_eq!(blk.valid, counted, "valid count wrong in block {b}");
        }
    }

    #[test]
    fn wear_levelling_bounds_skew() {
        let mut f = small_ftl();
        for i in 0..f.logical_pages() * 20 {
            f.write(i % 64).unwrap(); // tiny hot set
        }
        let rep = f.endurance();
        assert!(
            rep.max_erase_count as f64 <= (rep.mean_erase_count + 1.0) * 8.0 + 4.0,
            "wear skew too large: max {} mean {}",
            rep.max_erase_count,
            rep.mean_erase_count
        );
    }

    #[test]
    fn out_of_range_lpn() {
        let mut f = small_ftl();
        let lp = f.logical_pages();
        assert!(matches!(f.write(lp), Err(DevError::OutOfRange { .. })));
        assert!(matches!(f.read(lp), Err(DevError::OutOfRange { .. })));
    }

    #[test]
    fn op_cost_service_time_positive() {
        let mut f = small_ftl();
        let c = f.write(0).unwrap();
        let t = c.service_time(f.timings());
        assert!(t >= SimTime::from_micros(900), "program too fast: {t}");
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn silly_op_fraction_rejected() {
        let g = FlashGeometry::fit_capacity(1 << 24, 4096);
        let _ = Ftl::new(g, FlashTimings::mlc_default(), 0.001);
    }
}
