//! Battery-backed RAM with capacity accounting.
//!
//! KDD keeps three things in NVRAM (§III-B): the delta *staging buffer*,
//! the *metadata buffer*, and the metadata log's *head/tail counters* —
//! "all stored in the NVRAM (e.g., battery-backed RAM) which is commonly
//! used in storage arrays". NVRAM survives power failures but not much of
//! it exists (it is expensive), so [`Nvram`] enforces a byte budget: every
//! insertion declares its size and overflow is an error the caller must
//! handle by flushing to flash first.
//!
//! The wrapper is generic over the resident state so the recovery tests
//! can "power-cycle" a cache and get back exactly the NVRAM-resident part.

use crate::error::DevError;

/// A typed NVRAM region with a byte budget.
#[derive(Debug, Clone)]
pub struct Nvram<T> {
    state: T,
    capacity_bytes: u64,
    used_bytes: u64,
}

impl<T> Nvram<T> {
    /// Wrap `state` in an NVRAM region of `capacity_bytes`.
    pub fn new(state: T, capacity_bytes: u64) -> Self {
        Nvram { state, capacity_bytes, used_bytes: 0 }
    }

    /// Budget in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently accounted as used.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes still available.
    pub fn available_bytes(&self) -> u64 {
        self.capacity_bytes - self.used_bytes
    }

    /// Reserve `bytes` of budget; errors with [`DevError::NvramFull`] if it
    /// does not fit (caller must flush and [`Nvram::release`] first).
    pub fn reserve(&mut self, bytes: u64) -> Result<(), DevError> {
        if self.used_bytes + bytes > self.capacity_bytes {
            return Err(DevError::NvramFull {
                requested: bytes,
                available: self.available_bytes(),
            });
        }
        self.used_bytes += bytes;
        Ok(())
    }

    /// Return `bytes` of budget after flushing content to flash.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used_bytes, "releasing more than reserved");
        self.used_bytes = self.used_bytes.saturating_sub(bytes);
    }

    /// Whether a reservation of `bytes` would fit.
    pub fn fits(&self, bytes: u64) -> bool {
        self.used_bytes + bytes <= self.capacity_bytes
    }

    /// Access the resident state.
    pub fn get(&self) -> &T {
        &self.state
    }

    /// Mutably access the resident state. Budget accounting is the
    /// caller's job via [`Nvram::reserve`]/[`Nvram::release`].
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.state
    }

    /// Simulate a power failure: NVRAM content *survives*; this simply
    /// hands the state back so a recovering instance can adopt it.
    pub fn into_surviving_state(self) -> T {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_enforced() {
        let mut nv = Nvram::new(Vec::<u32>::new(), 100);
        assert!(nv.fits(100));
        nv.reserve(60).unwrap();
        assert_eq!(nv.used_bytes(), 60);
        assert_eq!(nv.available_bytes(), 40);
        assert!(matches!(nv.reserve(41), Err(DevError::NvramFull { .. })));
        nv.reserve(40).unwrap();
        assert_eq!(nv.available_bytes(), 0);
    }

    #[test]
    fn release_returns_budget() {
        let mut nv = Nvram::new((), 10);
        nv.reserve(10).unwrap();
        nv.release(4);
        assert_eq!(nv.used_bytes(), 6);
        nv.reserve(4).unwrap();
    }

    #[test]
    fn state_survives_power_failure() {
        let mut nv = Nvram::new(vec![1u8, 2, 3], 64);
        nv.get_mut().push(4);
        let survived = nv.into_surviving_state();
        assert_eq!(survived, vec![1, 2, 3, 4]);
    }
}
