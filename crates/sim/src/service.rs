//! The foreground service-time model.
//!
//! The response a client sees is dominated by which devices sit on the
//! critical path:
//!
//! * a **RAID round** is a batch of member-disk operations that proceed in
//!   parallel (the two reads of a read-modify-write are one round; the two
//!   writes are a second) — each round costs one random disk access,
//!   ~12.7 ms at 7200 RPM;
//! * **SSD reads** on the critical path cost ~70 µs per round (reads in
//!   the same round use different channels — KDD fetches data + delta
//!   concurrently, §IV-B2);
//! * **SSD writes** overlap disk I/O when any RAID round is present
//!   (0.9 ms ≪ 12.7 ms), so they only appear in the response when the
//!   request touches no disk (pure cache write);
//! * delta compression/decompression cost tens of microseconds (§IV-B2).

use kdd_blockdev::flash::FlashTimings;
use kdd_blockdev::hdd::HddModel;
use kdd_cache::effects::Effects;
use kdd_obs::{Stage, StageTimes};
use kdd_util::units::SimTime;
use serde::{Deserialize, Serialize};

/// Per-operation service times.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServiceModel {
    /// One random member-disk access (seek + rotation + transfer).
    pub hdd_op: SimTime,
    /// One SSD read round (sense + transfer).
    pub ssd_read: SimTime,
    /// One SSD page program.
    pub ssd_write: SimTime,
    /// One delta compression.
    pub compress: SimTime,
    /// One delta decompression + combine.
    pub decompress: SimTime,
}

impl ServiceModel {
    /// The paper's testbed: 7200 RPM disks, MLC SSD, lzo-class codec.
    pub fn paper_default() -> Self {
        let mut hdd = HddModel::enterprise_7200rpm(1 << 28, 4096);
        // Mean random access: average seek + half rotation + one page.
        let hdd_op = hdd.access(1 << 27, 1);
        let flash = FlashTimings::mlc_default();
        ServiceModel {
            hdd_op,
            ssd_read: flash.read_page + flash.xfer_page,
            ssd_write: flash.program_page + flash.xfer_page,
            compress: SimTime::from_micros(30),
            decompress: SimTime::from_micros(20),
        }
    }

    /// Foreground response time of one request's effects.
    pub fn response_time(&self, fx: &Effects) -> SimTime {
        let cpu =
            self.compress * fx.compressions as u64 + self.decompress * fx.decompressions as u64;
        let ssd_reads = self.ssd_read * fx.ssd_read_rounds as u64;
        if fx.raid_rounds > 0 {
            // SSD programs overlap the (much slower) disk access.
            self.hdd_op * fx.raid_rounds as u64 + ssd_reads + cpu
        } else {
            ssd_reads + self.ssd_write * fx.ssd_writes() as u64 + cpu
        }
    }

    /// Number of member-disk service slots this request needs (for the
    /// queueing simulators): one slot per RAID round.
    pub fn raid_rounds(&self, fx: &Effects) -> u32 {
        fx.raid_rounds
    }

    /// Stage attribution of [`Self::response_time`]: the same cost
    /// terms, charged to the `kdd-obs/v2` stage taxonomy, so the
    /// counting-model simulators emit the same span breakdowns the
    /// engine does. The returned breakdown sums to *exactly*
    /// `response_time(fx)` — the queueing delay a driver adds on top is
    /// the only unattributed remainder, which is what keeps the
    /// conservation invariant (stage sum ≤ span duration) intact.
    pub fn stage_times(&self, is_read: bool, fx: &Effects) -> StageTimes {
        let mut st = StageTimes::new();
        st.add(Stage::DeltaEncode, self.compress * u64::from(fx.compressions));
        st.add(Stage::DeltaDecode, self.decompress * u64::from(fx.decompressions));
        st.add(Stage::SsdRead, self.ssd_read * u64::from(fx.ssd_read_rounds));
        if fx.raid_rounds > 0 {
            // SSD programs overlap the (much slower) disk access.
            let raid = if is_read { Stage::RaidRead } else { Stage::RaidWrite };
            st.add(raid, self.hdd_op * u64::from(fx.raid_rounds));
        } else {
            st.add(Stage::SsdWrite, self.ssd_write * u64::from(fx.ssd_writes()));
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx() -> Effects {
        Effects::default()
    }

    #[test]
    fn paper_defaults_are_sane() {
        let m = ServiceModel::paper_default();
        assert!(m.hdd_op > SimTime::from_millis(5), "disk op {}", m.hdd_op);
        assert!(m.hdd_op < SimTime::from_millis(30));
        assert!(m.ssd_read < SimTime::from_micros(200));
        assert!(m.ssd_write > m.ssd_read);
    }

    #[test]
    fn small_write_costs_two_disk_rounds() {
        let m = ServiceModel::paper_default();
        let small_write = Effects { raid_reads: 2, raid_writes: 2, raid_rounds: 2, ..fx() };
        let t = m.response_time(&small_write);
        assert_eq!(t, m.hdd_op * 2);
        let data_only = Effects { raid_writes: 1, raid_rounds: 1, ..fx() };
        assert_eq!(m.response_time(&data_only), m.hdd_op);
    }

    #[test]
    fn cache_hit_is_microseconds() {
        let m = ServiceModel::paper_default();
        let read_hit = Effects { ssd_reads: 1, ssd_read_rounds: 1, ..fx() };
        assert!(m.response_time(&read_hit) < SimTime::from_millis(1));
        // KDD old-page hit: 2 reads in 1 round + decompress.
        let old_hit = Effects { ssd_reads: 2, ssd_read_rounds: 1, decompressions: 1, ..fx() };
        let t = m.response_time(&old_hit);
        assert!(t < SimTime::from_millis(1), "delta combine must stay cheap: {t}");
    }

    #[test]
    fn ssd_writes_overlap_disk_io() {
        let m = ServiceModel::paper_default();
        let wt_write =
            Effects { ssd_data_writes: 1, raid_reads: 2, raid_writes: 2, raid_rounds: 2, ..fx() };
        let no_ssd = Effects { raid_reads: 2, raid_writes: 2, raid_rounds: 2, ..fx() };
        assert_eq!(m.response_time(&wt_write), m.response_time(&no_ssd));
        // But a pure cache write does pay the program time.
        let pure = Effects { ssd_data_writes: 1, ..fx() };
        assert_eq!(m.response_time(&pure), m.ssd_write);
    }
}
