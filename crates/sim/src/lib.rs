//! Timing simulation: turns the policies' counted device operations into
//! response times — the §IV-B measurements (Figures 9–11).
//!
//! * [`service`] — the service-time model: how long one request's
//!   foreground operations take on the disks, the flash and the CPU;
//! * [`queue`] — virtual-time multi-server queues (the RAID's member
//!   disks, the SSD's channels);
//! * [`openloop`] — trace replay by arrival timestamp (the RAIDmeter
//!   experiment of Figure 9);
//! * [`des`] — a refined discrete-event replay: per-member-disk FIFO
//!   queues with seek-position-aware mechanical service times;
//! * [`closedloop`] — N back-to-back request threads over a Zipf source
//!   (the FIO experiment of Figures 10–11);
//! * [`factory`] — constructs any policy by name so experiments can sweep
//!   them uniformly;
//! * [`prototype`] — drives the real-byte `KddEngine` from concurrent OS
//!   threads with a background cleaner, demonstrating the kernel-module
//!   deployment shape.

#![warn(missing_docs)]

pub mod closedloop;
pub mod des;
pub mod factory;
pub mod openloop;
pub mod prototype;
pub mod queue;
pub mod service;

pub use closedloop::{
    run_closed_loop, run_closed_loop_engine, run_closed_loop_observed, ClosedLoopReport,
    EngineClosedLoopReport,
};
pub use des::{replay_des, DesReport};
pub use factory::{build_policy, PolicyKind};
pub use openloop::{
    obs_snapshot_policy, replay_open_loop, replay_open_loop_engine, replay_open_loop_observed,
    EngineReplayReport, OpenLoopReport,
};
pub use queue::MultiServer;
pub use service::ServiceModel;
