//! Discrete-event open-loop replay: per-member-disk FIFO queues with
//! head-position-aware service times.
//!
//! The algebraic replayer ([`crate::openloop`]) treats the array as `k`
//! interchangeable servers with a fixed random-access cost. This module
//! refines both approximations:
//!
//! * each member disk is its own FIFO queue, and a request's member
//!   operations go to the *actual* disks its LBA and parity placement
//!   imply (via [`Layout`]);
//! * service times come from the mechanical [`HddModel`], so they depend
//!   on the seek distance from wherever the head last landed — sequential
//!   runs are cheap, cross-platter jumps are not.
//!
//! A request proceeds in phases (the read round of a read-modify-write,
//! then the write round); a phase completes when its last member
//! operation finishes, upon which the next phase's operations are
//! enqueued. SSD and CPU time are added at completion (the flash is two
//! orders of magnitude faster than the disks and never queues here).

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::service::ServiceModel;
use kdd_blockdev::hdd::HddModel;
use kdd_cache::effects::Effects;
use kdd_cache::policies::CachePolicy;
use kdd_raid::layout::Layout;
use kdd_trace::record::Trace;
use kdd_util::stats::{Histogram, StreamingStats};
use kdd_util::units::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One member-disk operation of one request phase.
#[derive(Debug, Clone, Copy)]
struct MemberOp {
    req: usize,
    disk_page: u64,
}

/// A member disk: FIFO queue + mechanical model.
struct DiskSim {
    model: HddModel,
    queue: VecDeque<MemberOp>,
    busy_until: SimTime,
    current: Option<MemberOp>,
}

impl DiskSim {
    fn new(capacity_pages: u64, page_size: u32) -> Self {
        DiskSim {
            model: HddModel::enterprise_7200rpm(capacity_pages, page_size),
            queue: VecDeque::new(),
            busy_until: SimTime::ZERO,
            current: None,
        }
    }

    /// Enqueue an op; if idle, start it and return its completion time.
    fn push(&mut self, now: SimTime, op: MemberOp) -> Option<SimTime> {
        if self.current.is_none() {
            let service = self.model.access(op.disk_page, 1);
            self.busy_until = now.max(self.busy_until) + service;
            self.current = Some(op);
            Some(self.busy_until)
        } else {
            self.queue.push_back(op);
            None
        }
    }

    /// The current op finished; start the next one if any. Returns the
    /// finished op and, when another was started, its completion time.
    fn complete(&mut self, now: SimTime) -> (MemberOp, Option<SimTime>) {
        let done = self.current.take().expect("completion without an op");
        let next = self.queue.pop_front().map(|op| {
            let service = self.model.access(op.disk_page, 1);
            self.busy_until = now + service;
            self.current = Some(op);
            self.busy_until
        });
        (done, next)
    }
}

/// Per-request state across phases.
struct ReqState {
    arrival: SimTime,
    /// Remaining member ops in the current phase.
    outstanding: u32,
    /// Phases still to run after the current one: lists of (disk, page).
    phases: VecDeque<Vec<(usize, u64)>>,
    /// Flash + CPU time added once all disk phases are done.
    ssd_cpu: SimTime,
    done: bool,
}

/// Results of a DES replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesReport {
    /// Policy display name.
    pub policy: String,
    /// Requests replayed.
    pub requests: u64,
    /// Mean response time.
    pub mean_response: SimTime,
    /// 99th percentile response time.
    pub p99: SimTime,
    /// Cache hit ratio over the run.
    pub hit_ratio: f64,
    /// Mean member-disk queue depth sampled at arrivals.
    pub mean_queue_depth: f64,
}

/// Derive the member-disk operations a request's foreground effects imply.
///
/// The mapping follows the array's actual behaviour for the patterns the
/// policies emit: a plain read touches the page's disk; a small write
/// reads the page's disk + its parity disk(s), then writes them; a
/// `write_no_parity_update` writes only the page's disk.
fn phases_for(layout: &Layout, lba: u64, fx: &Effects) -> VecDeque<Vec<(usize, u64)>> {
    let mut phases = VecDeque::new();
    if fx.raid_rounds == 0 {
        return phases;
    }
    let lba = lba % layout.capacity_pages();
    let loc = layout.locate(lba);
    let row = layout.row_of(lba);
    let parity = layout.parity_location(row);
    let q = layout.q_location(row);
    let mut targets: Vec<(usize, u64)> = vec![(loc.disk, loc.disk_page)];
    if fx.raid_reads >= 2 || fx.raid_writes >= 2 {
        if let Some((pd, pp)) = parity {
            targets.push((pd, pp));
        }
        if fx.raid_reads >= 3 || fx.raid_writes >= 3 {
            if let Some((qd, qp)) = q {
                targets.push((qd, qp));
            }
        }
    }
    if fx.raid_rounds >= 2 {
        // Read-modify-write: read round then write round on the same set.
        phases.push_back(targets.clone());
        phases.push_back(targets);
    } else {
        // Single round: either a plain read or a lone data write.
        phases.push_back(vec![(loc.disk, loc.disk_page)]);
    }
    phases
}

/// Replay a trace with the discrete-event device model.
pub fn replay_des(
    policy: &mut dyn CachePolicy,
    trace: &Trace,
    layout: &Layout,
    model: &ServiceModel,
) -> DesReport {
    let page_size = trace.page_size;
    let mut disks: Vec<DiskSim> =
        (0..layout.disks).map(|_| DiskSim::new(layout.disk_pages, page_size)).collect();
    let mut reqs: Vec<ReqState> = Vec::new();
    let mut stats = StreamingStats::new();
    let mut hist = Histogram::new();
    let mut depth = StreamingStats::new();

    // Event queue: (time, seq, disk) — disk completions only; arrivals are
    // processed in trace order against the advancing clock.
    let mut events: BinaryHeap<Reverse<(SimTime, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;

    let finish_phase_op = |reqs: &mut Vec<ReqState>,
                           disks: &mut Vec<DiskSim>,
                           events: &mut BinaryHeap<Reverse<(SimTime, u64, usize)>>,
                           seq: &mut u64,
                           stats: &mut StreamingStats,
                           hist: &mut Histogram,
                           now: SimTime,
                           op: MemberOp| {
        let r = &mut reqs[op.req];
        r.outstanding -= 1;
        if r.outstanding > 0 {
            return;
        }
        if let Some(next) = r.phases.pop_front() {
            r.outstanding = next.len() as u32;
            for (disk, page) in next {
                if let Some(done_at) =
                    disks[disk].push(now, MemberOp { req: op.req, disk_page: page })
                {
                    *seq += 1;
                    events.push(Reverse((done_at, *seq, disk)));
                }
            }
        } else if !r.done {
            r.done = true;
            let resp = now + r.ssd_cpu - r.arrival;
            stats.record(resp.as_nanos() as f64);
            hist.record(resp.as_nanos());
        }
    };

    #[allow(unused_mut)]
    let mut drain_until = |reqs: &mut Vec<ReqState>,
                           disks: &mut Vec<DiskSim>,
                           events: &mut BinaryHeap<Reverse<(SimTime, u64, usize)>>,
                           seq: &mut u64,
                           stats: &mut StreamingStats,
                           hist: &mut Histogram,
                           t: SimTime| {
        while let Some(&Reverse((when, _, disk))) = events.peek() {
            if when > t {
                break;
            }
            events.pop();
            let (op, _next_started) = {
                let d = &mut disks[disk];
                let (op, next) = d.complete(when);
                if let Some(done_at) = next {
                    *seq += 1;
                    events.push(Reverse((done_at, *seq, disk)));
                }
                (op, ())
            };
            finish_phase_op(reqs, disks, events, seq, stats, hist, when, op);
        }
    };

    for rec in &trace.records {
        let arrival = rec.time;
        drain_until(&mut reqs, &mut disks, &mut events, &mut seq, &mut stats, &mut hist, arrival);
        depth.record(
            disks.iter().map(|d| d.queue.len() + d.current.is_some() as usize).sum::<usize>()
                as f64,
        );
        for lba in rec.pages() {
            let outcome = policy.access(rec.op, lba);
            let fx = outcome.foreground;
            let ssd_cpu = model.response_time(&Effects {
                raid_rounds: 0,
                raid_reads: 0,
                raid_writes: 0,
                ..fx
            });
            let phases = phases_for(layout, lba, &fx);
            let id = reqs.len();
            let mut state = ReqState { arrival, outstanding: 0, phases, ssd_cpu, done: false };
            if let Some(first) = state.phases.pop_front() {
                state.outstanding = first.len() as u32;
                reqs.push(state);
                for (disk, page) in first {
                    if let Some(done_at) =
                        disks[disk].push(arrival, MemberOp { req: id, disk_page: page })
                    {
                        seq += 1;
                        events.push(Reverse((done_at, seq, disk)));
                    }
                }
            } else {
                // Pure cache operation: completes without touching disks.
                let resp = ssd_cpu;
                stats.record(resp.as_nanos() as f64);
                hist.record(resp.as_nanos());
                state.done = true;
                reqs.push(state);
            }
        }
    }
    drain_until(&mut reqs, &mut disks, &mut events, &mut seq, &mut stats, &mut hist, SimTime::MAX);
    policy.flush();

    DesReport {
        policy: policy.name(),
        requests: stats.count(),
        mean_response: SimTime::from_nanos(stats.mean() as u64),
        p99: SimTime::from_nanos(hist.quantile(0.99).unwrap_or(0)),
        hit_ratio: policy.stats().hit_ratio(),
        mean_queue_depth: depth.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_policy, PolicyKind};
    use crate::openloop::replay_open_loop;
    use kdd_cache::policies::RaidModel;
    use kdd_cache::setassoc::CacheGeometry;
    use kdd_trace::record::{Op, TraceRecord};
    use kdd_trace::synth::PaperTrace;

    fn run(kind: PolicyKind, trace: &Trace, cache_pages: u64) -> DesReport {
        let g = CacheGeometry {
            total_pages: cache_pages,
            ways: 64.min(cache_pages as u32),
            page_size: 4096,
        };
        let raid = RaidModel::paper_default(trace.address_space_pages().max(1024));
        let layout = raid.layout;
        let mut p = build_policy(kind, g, raid, 3);
        replay_des(p.as_mut(), trace, &layout, &ServiceModel::paper_default())
    }

    #[test]
    fn sparse_writes_cost_two_sequential_rounds() {
        let mut t = Trace::new(4096);
        for i in 0..8u64 {
            t.records.push(TraceRecord {
                time: SimTime::from_secs(i),
                op: Op::Write,
                lba: i * 64,
                len: 1,
            });
        }
        let r = run(PolicyKind::Nossd, &t, 64);
        assert_eq!(r.requests, 8);
        // Two mechanical accesses back to back: 8–50 ms.
        assert!(r.mean_response > SimTime::from_millis(8), "{}", r.mean_response);
        assert!(r.mean_response < SimTime::from_millis(60), "{}", r.mean_response);
    }

    #[test]
    fn bursts_build_real_queues() {
        let mut t = Trace::new(4096);
        for i in 0..100u64 {
            t.records.push(TraceRecord { time: SimTime::ZERO, op: Op::Write, lba: i * 64, len: 1 });
        }
        let r = run(PolicyKind::Nossd, &t, 64);
        assert!(r.p99 > SimTime::from_millis(100), "no queueing visible: {}", r.p99);
        assert!(r.mean_queue_depth >= 0.0);
    }

    #[test]
    fn des_and_algebraic_models_agree_on_ranking() {
        let trace = PaperTrace::Fin1.generate_scaled(2000, 17);
        let cache = 4096u64;
        let mut des = Vec::new();
        let mut alg = Vec::new();
        for kind in [PolicyKind::Nossd, PolicyKind::Wt, PolicyKind::Kdd(0.25)] {
            des.push(run(kind, &trace, cache).mean_response);
            let g = CacheGeometry { total_pages: cache, ways: 64, page_size: 4096 };
            let raid = RaidModel::paper_default(trace.address_space_pages().max(1024));
            let mut p = build_policy(kind, g, raid, 3);
            alg.push(
                replay_open_loop(p.as_mut(), &trace, &ServiceModel::paper_default(), 5, 1)
                    .mean_response,
            );
        }
        // Same ordering: KDD < WT < Nossd under both models.
        assert!(des[2] < des[1] && des[1] < des[0], "DES ranking broken: {des:?}");
        assert!(alg[2] < alg[1] && alg[1] < alg[0], "algebraic ranking broken: {alg:?}");
    }

    #[test]
    fn sequential_locality_is_cheaper_under_des() {
        // The mechanical model rewards short seeks: a sequential read scan
        // must beat a scattered one.
        let make = |stride: u64| {
            let mut t = Trace::new(4096);
            for i in 0..200u64 {
                t.records.push(TraceRecord {
                    time: SimTime::from_millis(i * 40),
                    op: Op::Read,
                    lba: (i * stride) % 60_000,
                    len: 1,
                });
            }
            t
        };
        let seq = run(PolicyKind::Nossd, &make(1), 64);
        let scattered = run(PolicyKind::Nossd, &make(7919), 64);
        assert!(
            seq.mean_response < scattered.mean_response,
            "sequential {} should beat scattered {}",
            seq.mean_response,
            scattered.mean_response
        );
    }
}
