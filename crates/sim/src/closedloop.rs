//! Closed-loop FIO-style load — the Figures 10/11 experiment.
//!
//! "In closed-loop model, requests are generated back to back with a
//! limited request queue (i.e. equal to the number of request threads)"
//! (§IV-B1). N virtual threads each keep exactly one request outstanding;
//! a thread's next request is issued the instant its previous one
//! completes. Disk rounds contend on the shared member-disk center, which
//! is what pushes latencies to the ~100 ms the paper tunes for.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use crate::openloop::policy_sample;
use crate::queue::MultiServer;
use crate::service::ServiceModel;
use kdd_cache::policies::CachePolicy;
use kdd_cache::stats::CacheStats;
use kdd_core::engine::{EngineError, KddEngine, WriteRequest};
use kdd_delta::content::PageMutator;
use kdd_obs::{Recorder, Stage};
use kdd_trace::fio::FioWorkload;
use kdd_trace::record::Op;
use kdd_util::stats::{Histogram, StreamingStats};
use kdd_util::units::{ByteSize, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Results of one closed-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedLoopReport {
    /// Policy display name.
    pub policy: String,
    /// Requests completed.
    pub requests: u64,
    /// Mean response time (the Figure 10 metric).
    pub mean_response: SimTime,
    /// 99th percentile response time.
    pub p99: SimTime,
    /// Total virtual run time.
    pub makespan: SimTime,
    /// SSD bytes written (the Figure 11 metric).
    pub ssd_write_bytes: ByteSize,
    /// Cache hit ratio.
    pub hit_ratio: f64,
    /// Final cache statistics.
    pub stats: CacheStats,
}

/// Run the FIO-style closed loop: `workload.config().threads` virtual
/// threads, one outstanding request each, until the volume target is met.
pub fn run_closed_loop(
    policy: &mut dyn CachePolicy,
    workload: &mut FioWorkload,
    model: &ServiceModel,
    disks: usize,
) -> ClosedLoopReport {
    run_closed_loop_observed(policy, workload, model, disks, &Recorder::disabled())
}

/// [`run_closed_loop`] with an observability recorder: spans stamped
/// with issue/completion virtual times, periodic samples on the
/// simulated clock. A disabled recorder reduces this to the plain run.
pub fn run_closed_loop_observed(
    policy: &mut dyn CachePolicy,
    workload: &mut FioWorkload,
    model: &ServiceModel,
    disks: usize,
    recorder: &Recorder,
) -> ClosedLoopReport {
    let threads = workload.config().threads.max(1);
    let page_size = 4096u32;
    let mut raid = MultiServer::new(disks);
    let mut stats = StreamingStats::new();
    let mut hist = Histogram::new();
    // Each heap entry: the time a thread becomes ready to issue.
    let mut ready: BinaryHeap<Reverse<SimTime>> =
        (0..threads).map(|_| Reverse(SimTime::ZERO)).collect();
    let mut makespan = SimTime::ZERO;
    while let Some(Reverse(now)) = ready.pop() {
        let Some((op, lba)) = workload.next_request() else {
            makespan = makespan.max(now);
            continue; // thread retires
        };
        let outcome = policy.access(op, lba);
        let fx = outcome.foreground;
        let ssd_fx =
            kdd_cache::effects::Effects { raid_rounds: 0, raid_reads: 0, raid_writes: 0, ..fx };
        let ssd_cpu = model.response_time(&ssd_fx);
        let done = if fx.raid_rounds > 0 {
            raid.serve_rounds(now, model.hdd_op, fx.raid_rounds) + ssd_cpu
        } else {
            now + ssd_cpu
        };
        let resp = done - now;
        stats.record(resp.as_nanos() as f64);
        hist.record(resp.as_nanos());
        if recorder.is_enabled() {
            let is_read = op == Op::Read;
            let mut c = outcome.to_obs(is_read, lba, resp);
            // Same attribution rule as the open-loop driver: charged
            // SSD/CPU terms plus held member-disk service; queueing
            // delay stays unattributed (conservation).
            c.stages = model.stage_times(is_read, &ssd_fx);
            if fx.raid_rounds > 0 {
                let raid_stage = if is_read { Stage::RaidRead } else { Stage::RaidWrite };
                c.stages.add(raid_stage, model.hdd_op * u64::from(fx.raid_rounds));
            }
            if recorder.record_at(c, now, done) {
                recorder.push_sample(policy_sample(policy, recorder.now()));
            }
        }
        makespan = makespan.max(done);
        ready.push(Reverse(done));
    }
    policy.flush();
    recorder.sync_cache(&policy.stats().counters());
    ClosedLoopReport {
        policy: policy.name(),
        requests: stats.count(),
        mean_response: SimTime::from_nanos(stats.mean() as u64),
        p99: SimTime::from_nanos(hist.quantile(0.99).unwrap_or(0)),
        makespan,
        ssd_write_bytes: policy.stats().ssd_write_bytes(page_size),
        hit_ratio: policy.stats().hit_ratio(),
        stats: *policy.stats(),
    }
}

/// Results of one engine-backed closed-loop run
/// ([`run_closed_loop_engine`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineClosedLoopReport {
    /// Page requests completed (reads + writes).
    pub requests: u64,
    /// Group commits submitted through [`KddEngine::write_batch`].
    pub write_batches: u64,
    /// Summed simulated device time across all requests.
    pub device_time: SimTime,
    /// Reads whose content disagreed with the last version written. Always
    /// zero on a healthy engine; surfaced as data so callers can assert.
    pub read_mismatches: u64,
    /// Cache hit ratio over the run.
    pub hit_ratio: f64,
    /// SSD write amplification at the end of the run.
    pub waf: f64,
}

/// Run the FIO-style load against the real-byte [`KddEngine`] with a
/// bounded submission queue: writes accumulate up to `queue_depth` and are
/// submitted as **one group commit** via [`KddEngine::write_batch`]; a
/// read acts as a barrier (the pending batch is flushed first, preserving
/// read-after-write ordering). This is the closed-loop analogue of a
/// request queue draining into a plugged block layer.
///
/// Write contents are seeded mutations of the previous version
/// ([`PageMutator`]) so the delta path is exercised; every read is
/// verified against the last acknowledged content for its address.
///
/// # Errors
/// Propagates any [`EngineError`] from the engine's read or write path.
pub fn run_closed_loop_engine(
    engine: &mut KddEngine,
    workload: &mut FioWorkload,
    queue_depth: usize,
    seed: u64,
) -> Result<EngineClosedLoopReport, EngineError> {
    let queue_depth = queue_depth.max(1);
    let capacity = engine.raid().capacity_pages();
    let mut mutator = PageMutator::new(engine.page_size(), 0.15, 64, seed ^ 0x9e37);
    // Last acknowledged content per page. Updated at enqueue time so a
    // rewrite landing in the same batch mutates the pending version, which
    // is exactly what `write_batch` (in-order dispatch) will persist.
    let mut versions: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut pending: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut requests = 0u64;
    let mut write_batches = 0u64;
    let mut read_mismatches = 0u64;
    let mut device_time = SimTime::ZERO;
    let flush_pending = |engine: &mut KddEngine,
                         pending: &mut Vec<(u64, Vec<u8>)>,
                         device_time: &mut SimTime,
                         write_batches: &mut u64|
     -> Result<(), EngineError> {
        if pending.is_empty() {
            return Ok(());
        }
        let reqs: Vec<WriteRequest<'_>> =
            pending.iter().map(|(lba, data)| WriteRequest { lba: *lba, data }).collect();
        for t in engine.write_batch(&reqs)? {
            *device_time += t;
        }
        *write_batches += 1;
        pending.clear();
        Ok(())
    };
    while let Some((op, lba)) = workload.next_request() {
        let lba = lba % capacity;
        requests += 1;
        match op {
            Op::Read => {
                flush_pending(engine, &mut pending, &mut device_time, &mut write_batches)?;
                let (data, t) = engine.read(lba)?;
                device_time += t;
                match versions.get(&lba) {
                    Some(expect) if *expect != data => read_mismatches += 1,
                    None if data.iter().any(|&b| b != 0) => read_mismatches += 1,
                    _ => {}
                }
            }
            Op::Write => {
                let next = match versions.get(&lba) {
                    Some(prev) => mutator.mutate(prev),
                    None => mutator.initial_page(),
                };
                versions.insert(lba, next.clone());
                pending.push((lba, next));
                if pending.len() >= queue_depth {
                    flush_pending(engine, &mut pending, &mut device_time, &mut write_batches)?;
                }
            }
        }
    }
    flush_pending(engine, &mut pending, &mut device_time, &mut write_batches)?;
    Ok(EngineClosedLoopReport {
        requests,
        write_batches,
        device_time,
        read_mismatches,
        hit_ratio: engine.stats().hit_ratio(),
        waf: engine.ssd().endurance().waf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_policy, PolicyKind};
    use kdd_cache::policies::RaidModel;
    use kdd_cache::setassoc::CacheGeometry;
    use kdd_trace::fio::FioConfig;

    fn run(kind: PolicyKind, read_rate: f64, scale: u64) -> ClosedLoopReport {
        let cfg = FioConfig::paper(read_rate).scaled(scale);
        // Cache smaller than the working set, like the paper (1 GB cache,
        // 1.6 GB WSS): cache = WSS * 0.625.
        let cache_pages = (cfg.wss_pages * 5 / 8).max(64);
        let g = CacheGeometry {
            total_pages: cache_pages,
            ways: 64.min(cache_pages as u32),
            page_size: 4096,
        };
        let raid = RaidModel::paper_default(cfg.wss_pages.max(1024));
        let mut p = build_policy(kind, g, raid, 5);
        let mut w = FioWorkload::new(cfg, 99);
        run_closed_loop(p.as_mut(), &mut w, &ServiceModel::paper_default(), 5)
    }

    #[test]
    fn completes_the_configured_volume() {
        let r = run(PolicyKind::Wt, 0.5, 8192);
        let cfg = FioConfig::paper(0.5).scaled(8192);
        assert_eq!(r.requests, cfg.total_pages);
        assert!(r.makespan > SimTime::ZERO);
    }

    #[test]
    fn contention_raises_latency_above_service_time() {
        let r = run(PolicyKind::Nossd, 0.0, 8192);
        let m = ServiceModel::paper_default();
        // 16 threads on 5 disks: mean response must exceed raw service.
        assert!(r.mean_response > m.hdd_op * 2, "no contention visible: {}", r.mean_response);
    }

    #[test]
    fn kdd_cuts_latency_versus_nossd_and_wt() {
        let nossd = run(PolicyKind::Nossd, 0.25, 2048);
        let wt = run(PolicyKind::Wt, 0.25, 2048);
        let kdd = run(PolicyKind::Kdd(0.25), 0.25, 2048);
        assert!(
            kdd.mean_response < nossd.mean_response,
            "KDD {} !< Nossd {}",
            kdd.mean_response,
            nossd.mean_response
        );
        assert!(
            kdd.mean_response < wt.mean_response,
            "KDD {} !< WT {}",
            kdd.mean_response,
            wt.mean_response
        );
    }

    #[test]
    fn wa_writes_least_to_ssd() {
        let wa = run(PolicyKind::Wa, 0.25, 2048);
        let wt = run(PolicyKind::Wt, 0.25, 2048);
        let lv = run(PolicyKind::LeavO, 0.25, 2048);
        let kdd = run(PolicyKind::Kdd(0.25), 0.25, 2048);
        assert!(wa.ssd_write_bytes < kdd.ssd_write_bytes);
        assert!(
            kdd.ssd_write_bytes < wt.ssd_write_bytes,
            "KDD {} !< WT {}",
            kdd.ssd_write_bytes,
            wt.ssd_write_bytes
        );
        assert!(
            wt.ssd_write_bytes < lv.ssd_write_bytes,
            "WT {} !< LeavO {}",
            wt.ssd_write_bytes,
            lv.ssd_write_bytes
        );
    }

    #[test]
    fn engine_closed_loop_preserves_content_and_batches() {
        use kdd_blockdev::ssd::SsdDevice;
        use kdd_core::KddConfig;
        use kdd_raid::array::RaidArray;
        use kdd_raid::layout::{Layout, RaidLevel};

        let build = || {
            let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 64);
            let raid = RaidArray::new(layout, 4096);
            let ssd = SsdDevice::with_logical_capacity((256 + 64) * 4096, 4096, 0.1);
            let g =
                kdd_cache::setassoc::CacheGeometry { total_pages: 256, ways: 8, page_size: 4096 };
            KddEngine::new(KddConfig::new(g), ssd, raid).unwrap()
        };
        let mut cfg = FioConfig::paper(0.3).scaled(2048);
        cfg.wss_pages = 200;

        let mut deep = build();
        let mut w = FioWorkload::new(cfg, 7);
        let r = run_closed_loop_engine(&mut deep, &mut w, 32, 7).unwrap();
        assert_eq!(r.requests, cfg.total_pages);
        assert_eq!(r.read_mismatches, 0, "read-after-write content must hold across batching");
        assert!(r.write_batches > 0);
        assert!(r.waf >= 1.0);

        // Depth-1 submits every write as its own group: same request count,
        // at least as many metadata page writes as the deep queue.
        let mut shallow = build();
        let mut w = FioWorkload::new(cfg, 7);
        let r1 = run_closed_loop_engine(&mut shallow, &mut w, 1, 7).unwrap();
        assert_eq!(r1.read_mismatches, 0);
        assert!(r1.write_batches >= r.write_batches);
        assert!(
            deep.stats().ssd_meta_writes <= shallow.stats().ssd_meta_writes,
            "group commit must never write more meta pages: deep {} vs shallow {}",
            deep.stats().ssd_meta_writes,
            shallow.stats().ssd_meta_writes
        );
    }

    #[test]
    fn higher_read_rate_narrows_wa_gap() {
        let kdd0 = run(PolicyKind::Kdd(0.25), 0.0, 2048);
        let kdd75 = run(PolicyKind::Kdd(0.25), 0.75, 2048);
        let wa0 = run(PolicyKind::Wa, 0.0, 2048);
        let wa75 = run(PolicyKind::Wa, 0.75, 2048);
        let gap0 =
            kdd0.ssd_write_bytes.as_u64() as f64 / wa0.ssd_write_bytes.as_u64().max(1) as f64;
        let gap75 =
            kdd75.ssd_write_bytes.as_u64() as f64 / wa75.ssd_write_bytes.as_u64().max(1) as f64;
        assert!(gap75 < gap0, "gap must narrow with read rate: {gap0} vs {gap75}");
    }
}
