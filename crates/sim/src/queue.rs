//! Virtual-time multi-server queue.
//!
//! Models a service center with `k` identical servers (the RAID's member
//! disks, or the SSD's channels) in virtual time: a job arriving at time
//! `t` starts on the earliest-free server (but not before `t`) and holds
//! it for its service time. No real threads, no waiting — just arithmetic
//! over completion times, which is all open/closed-loop latency
//! measurement needs.

use kdd_util::units::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `k` identical servers in virtual time.
#[derive(Debug, Clone)]
pub struct MultiServer {
    free_at: BinaryHeap<Reverse<SimTime>>,
}

impl MultiServer {
    /// A center with `servers` servers, all free at time zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0);
        MultiServer { free_at: (0..servers).map(|_| Reverse(SimTime::ZERO)).collect() }
    }

    /// Serve a job arriving at `arrival` needing `service` time; returns
    /// its completion time.
    pub fn serve(&mut self, arrival: SimTime, service: SimTime) -> SimTime {
        let Reverse(free) = self.free_at.pop().expect("at least one server");
        let start = free.max(arrival);
        let done = start + service;
        self.free_at.push(Reverse(done));
        done
    }

    /// Earliest time any server is free.
    pub fn next_free(&self) -> SimTime {
        self.free_at.peek().map(|Reverse(t)| *t).unwrap_or(SimTime::ZERO)
    }

    /// Serve a job that must hold a server for `rounds` consecutive
    /// service quanta (a read-modify-write's read round then write round).
    pub fn serve_rounds(&mut self, arrival: SimTime, quantum: SimTime, rounds: u32) -> SimTime {
        if rounds == 0 {
            return arrival;
        }
        self.serve(arrival, quantum * rounds as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serialises() {
        let mut q = MultiServer::new(1);
        let t1 = q.serve(SimTime::ZERO, SimTime::from_millis(10));
        let t2 = q.serve(SimTime::ZERO, SimTime::from_millis(10));
        assert_eq!(t1, SimTime::from_millis(10));
        assert_eq!(t2, SimTime::from_millis(20));
    }

    #[test]
    fn parallel_servers_overlap() {
        let mut q = MultiServer::new(4);
        let dones: Vec<SimTime> =
            (0..4).map(|_| q.serve(SimTime::ZERO, SimTime::from_millis(5))).collect();
        assert!(dones.iter().all(|&d| d == SimTime::from_millis(5)));
        // Fifth job queues behind the earliest.
        let t5 = q.serve(SimTime::ZERO, SimTime::from_millis(5));
        assert_eq!(t5, SimTime::from_millis(10));
    }

    #[test]
    fn idle_server_starts_at_arrival() {
        let mut q = MultiServer::new(1);
        let done = q.serve(SimTime::from_secs(1), SimTime::from_millis(1));
        assert_eq!(done, SimTime::from_secs(1) + SimTime::from_millis(1));
    }

    #[test]
    fn rounds_hold_one_server() {
        let mut q = MultiServer::new(2);
        let done = q.serve_rounds(SimTime::ZERO, SimTime::from_millis(10), 2);
        assert_eq!(done, SimTime::from_millis(20));
        assert_eq!(q.serve_rounds(SimTime::ZERO, SimTime::from_millis(10), 0), SimTime::ZERO);
    }
}
