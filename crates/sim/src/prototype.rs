//! Concurrent prototype runner: the real-byte [`KddEngine`] driven by
//! multiple OS threads with a background cleaner — the deployment shape
//! of the paper's kernel prototype (request contexts + cleaning thread,
//! §III-D/IV-B1).
//!
//! The engine's shared state sits behind a `parking_lot::Mutex`; worker
//! threads issue reads/writes generated from a seeded Zipf source, and a
//! cleaner thread periodically wakes to repair stale parity, exactly like
//! the paper's "background cleaning thread ... triggered by several system
//! events". Virtual device time accumulates per thread; wall-clock
//! concurrency is real.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_core::engine::{EngineError, KddEngine};
use kdd_trace::fio::FioWorkload;
use kdd_trace::record::Op;
use kdd_util::rng::seeded_rng;
use kdd_util::units::SimTime;
use parking_lot::Mutex;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Results of a concurrent prototype run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrototypeReport {
    /// Requests completed across all workers.
    pub requests: u64,
    /// Mean virtual response time per request.
    pub mean_response: SimTime,
    /// Cleaner wake-ups that found work.
    pub cleanings: u64,
    /// Cache hit ratio.
    pub hit_ratio: f64,
    /// SSD write amplification at the end of the run.
    pub waf: f64,
}

/// Drive `engine` from `threads` concurrent workers issuing `requests`
/// page requests drawn from `workload`, with a background cleaner.
///
/// Content integrity is verified inline: every read checks the page
/// against the last version written to it.
pub fn run_concurrent(
    engine: KddEngine,
    workload: &FioWorkload,
    threads: usize,
    requests: u64,
    seed: u64,
) -> Result<(KddEngine, PrototypeReport), EngineError> {
    let page_size = 4096usize;
    let engine = Mutex::new(engine);
    let issued = AtomicU64::new(0);
    let total_ns = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let cleanings = AtomicU64::new(0);
    let wss = workload.config().wss_pages;
    let read_rate = workload.config().read_rate;

    // Version tags per page so readers can verify content integrity. A
    // page's content is a function of (lba, version); version 0 means the
    // page was never written and reads back as zeros from the RAID.
    let versions: Vec<AtomicU64> = (0..wss).map(|_| AtomicU64::new(0)).collect();
    let page_of = |lba: u64, version: u64| -> Vec<u8> {
        (0..page_size)
            .map(|i| (lba as u8) ^ (version as u8).wrapping_mul(31) ^ (i as u8).wrapping_mul(7))
            .collect()
    };

    std::thread::scope(|scope| {
        // Background cleaner, woken every few scheduling quanta.
        let cleaner = scope.spawn(|| {
            while !stop.load(Ordering::Acquire) {
                std::thread::yield_now();
                let mut guard = engine.lock();
                if guard.pending_row_count() > 0 {
                    let mut t = SimTime::ZERO;
                    if guard.clean(&mut t).is_ok() {
                        cleanings.fetch_add(1, Ordering::Relaxed);
                    }
                }
                drop(guard);
                std::thread::yield_now();
            }
        });

        let workers: Vec<_> = (0..threads)
            .map(|w| {
                let versions = &versions;
                let engine = &engine;
                let issued = &issued;
                let total_ns = &total_ns;
                scope.spawn(move || -> Result<(), String> {
                    let mut rng = seeded_rng(seed.wrapping_add(w as u64 * 7919));
                    let zipf = kdd_util::sampler::Zipf::new(wss, 1.0001);
                    loop {
                        if issued.fetch_add(1, Ordering::Relaxed) >= requests {
                            return Ok(());
                        }
                        let lba = zipf.sample(&mut rng) - 1;
                        let op = if rng.random::<f64>() < read_rate { Op::Read } else { Op::Write };
                        // Lock around the whole request: the engine is the
                        // serialisation point, like a request queue.
                        let mut guard = engine.lock();
                        match op {
                            Op::Read => {
                                let v = versions[lba as usize].load(Ordering::Acquire);
                                let (data, t) = guard.read(lba).map_err(|e| e.to_string())?;
                                total_ns.fetch_add(t.as_nanos(), Ordering::Relaxed);
                                // The engine lock is held across load+read,
                                // so the version cannot move underneath us.
                                let expect = if v == 0 {
                                    vec![0u8; page_size] // never written
                                } else {
                                    page_of(lba, v)
                                };
                                if data != expect {
                                    return Err(format!("corrupt read at {lba} (version {v})"));
                                }
                            }
                            Op::Write => {
                                let v = versions[lba as usize].fetch_add(1, Ordering::AcqRel) + 1;
                                let data = page_of(lba, v);
                                let t = guard.write(lba, &data).map_err(|e| e.to_string())?;
                                total_ns.fetch_add(t.as_nanos(), Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        // Collect results first and stop the cleaner unconditionally —
        // propagating a worker failure before stopping it would leave the
        // scope joining a spinning thread forever.
        let results: Vec<_> = workers.into_iter().map(|w| w.join()).collect();
        stop.store(true, Ordering::Release);
        cleaner.join().expect("cleaner panicked");
        for r in results {
            r.expect("worker panicked").expect("worker failed");
        }
    });

    let engine = engine.into_inner();
    let s = engine.stats();
    let completed = requests.min(issued.load(Ordering::Relaxed));
    let report = PrototypeReport {
        requests: completed,
        mean_response: SimTime::from_nanos(total_ns.load(Ordering::Relaxed) / completed.max(1)),
        cleanings: cleanings.load(Ordering::Relaxed),
        hit_ratio: s.hit_ratio(),
        waf: engine.ssd().endurance().waf(),
    };
    Ok((engine, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdd_blockdev::ssd::SsdDevice;
    use kdd_cache::setassoc::CacheGeometry;
    use kdd_core::KddConfig;
    use kdd_raid::array::RaidArray;
    use kdd_raid::layout::{Layout, RaidLevel};
    use kdd_trace::fio::FioConfig;

    #[test]
    fn concurrent_run_preserves_integrity() {
        let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 64);
        let raid = RaidArray::new(layout, 4096);
        let cache_pages = 256u64;
        let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * 4096, 4096, 0.1);
        let g = CacheGeometry { total_pages: cache_pages, ways: 8, page_size: 4096 };
        let engine = KddEngine::new(KddConfig::new(g), ssd, raid).unwrap();
        let mut cfg = FioConfig::paper(0.4).scaled(4096);
        cfg.wss_pages = 200; // inside the RAID capacity
        let workload = FioWorkload::new(cfg, 1);
        let (engine, report) = run_concurrent(engine, &workload, 4, 2_000, 42).unwrap();
        assert!(report.requests >= 2_000);
        assert!(report.hit_ratio > 0.0);
        assert!(report.waf >= 1.0);
        assert!(engine.raid().failed_disks().is_empty());
    }
}
