//! Uniform policy construction for experiment sweeps.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use kdd_cache::policies::{
    CachePolicy, LeavO, Nossd, RaidModel, WriteAround, WriteBack, WriteThrough,
};
use kdd_cache::setassoc::CacheGeometry;
use kdd_core::{KddConfig, KddPolicy};
use kdd_delta::model::GaussianDeltaModel;
use serde::{Deserialize, Serialize};

/// The policies the paper evaluates (plus write-back for reference).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// RAID with no cache.
    Nossd,
    /// Write-through.
    Wt,
    /// Write-around.
    Wa,
    /// Write-back (not in the paper's evaluation; loses data on SSD
    /// failure).
    Wb,
    /// The SAC'15 delayed-parity baseline.
    LeavO,
    /// KDD at a mean delta-compression ratio (0.50 / 0.25 / 0.12 in the
    /// paper).
    Kdd(f64),
}

impl PolicyKind {
    /// The set Figures 5–8 compare, at the paper's three locality levels.
    pub fn figure_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Wt,
            PolicyKind::Wa,
            PolicyKind::LeavO,
            PolicyKind::Kdd(0.50),
            PolicyKind::Kdd(0.25),
            PolicyKind::Kdd(0.12),
        ]
    }

    /// The set Figures 9–11 compare (KDD at medium locality, §IV-B1).
    pub fn latency_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Nossd,
            PolicyKind::Wa,
            PolicyKind::Wt,
            PolicyKind::LeavO,
            PolicyKind::Kdd(0.25),
        ]
    }

    /// Display name matching the figures.
    pub fn name(&self) -> String {
        match self {
            PolicyKind::Nossd => "Nossd".into(),
            PolicyKind::Wt => "WT".into(),
            PolicyKind::Wa => "WA".into(),
            PolicyKind::Wb => "WB".into(),
            PolicyKind::LeavO => "LeavO".into(),
            PolicyKind::Kdd(r) => format!("KDD-{}%", (r * 100.0).round() as u32),
        }
    }
}

/// Build a policy instance over the given cache geometry and RAID model.
///
/// `seed` feeds KDD's Gaussian compressibility sampler; the other policies
/// are deterministic.
pub fn build_policy(
    kind: PolicyKind,
    geometry: CacheGeometry,
    raid: RaidModel,
    seed: u64,
) -> Box<dyn CachePolicy> {
    match kind {
        PolicyKind::Nossd => Box::new(Nossd::new(raid)),
        PolicyKind::Wt => Box::new(WriteThrough::new(geometry, raid)),
        PolicyKind::Wa => Box::new(WriteAround::new(geometry, raid)),
        PolicyKind::Wb => Box::new(WriteBack::new(geometry, raid)),
        PolicyKind::LeavO => Box::new(LeavO::new(geometry, raid)),
        PolicyKind::Kdd(ratio) => Box::new(KddPolicy::new(
            KddConfig::new(geometry),
            raid,
            Box::new(GaussianDeltaModel::new(ratio, seed)),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdd_trace::record::Op;

    #[test]
    fn all_kinds_construct_and_run() {
        let g = CacheGeometry { total_pages: 128, ways: 8, page_size: 4096 };
        let raid = RaidModel::paper_default(100_000);
        let mut kinds = PolicyKind::figure_set();
        kinds.push(PolicyKind::Nossd);
        kinds.push(PolicyKind::Wb);
        for kind in kinds {
            let mut p = build_policy(kind, g, raid, 7);
            assert_eq!(p.name(), kind.name());
            for lba in 0..64 {
                p.access(Op::Write, lba);
                p.access(Op::Read, lba);
            }
            p.flush();
            assert_eq!(p.stats().requests(), 128, "{}", kind.name());
        }
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(PolicyKind::Kdd(0.12).name(), "KDD-12%");
        assert_eq!(PolicyKind::Wt.name(), "WT");
        assert_eq!(PolicyKind::latency_set().len(), 5);
        assert_eq!(PolicyKind::figure_set().len(), 6);
    }
}
