//! Open-loop trace replay — the Figure 9 experiment.
//!
//! "In open-loop model, I/Os are issued according to the request time"
//! (§IV-B1, the RAIDmeter methodology). Each trace record is injected at
//! its timestamp; its disk rounds queue on the shared member-disk service
//! center, so bursts congest exactly as on a real array; the response time
//! is queueing delay plus service.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use crate::queue::MultiServer;
use crate::service::ServiceModel;
use kdd_cache::policies::CachePolicy;
use kdd_core::engine::{EngineError, KddEngine, WriteRequest};
use kdd_delta::content::PageMutator;
use kdd_obs::{Recorder, Sample, Stage};
use kdd_trace::record::{Op, Trace};
use kdd_util::stats::{Histogram, StreamingStats};
use kdd_util::units::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One timeseries sample drawn from a policy's cumulative counters. The
/// trace drivers have no device gauges (those belong to the engine), so
/// only the cache-counter half of the sample is populated.
pub(crate) fn policy_sample(policy: &dyn CachePolicy, at: SimTime) -> Sample {
    Sample { at, cache: policy.stats().counters(), ..Sample::default() }
}

/// Export the recorder's snapshot after a policy-level (counting) run:
/// the closing sample is drawn from the policy's cumulative counters
/// and the wear histogram is empty — the counting models have no flash
/// to sample. Returns `None` for a disabled recorder.
pub fn obs_snapshot_policy(policy: &dyn CachePolicy, recorder: &Recorder) -> Option<kdd_obs::Json> {
    recorder.export(&policy_sample(policy, recorder.now()), &kdd_obs::Log2Hist::new())
}

/// Latency results of one replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopReport {
    /// Policy display name.
    pub policy: String,
    /// Requests replayed.
    pub requests: u64,
    /// Mean response time.
    pub mean_response: SimTime,
    /// Median response time.
    pub p50: SimTime,
    /// 99th percentile response time.
    pub p99: SimTime,
    /// Cache hit ratio over the run.
    pub hit_ratio: f64,
}

/// Replay a trace against `policy`, with `disks` member-disk servers.
///
/// Time is rescaled so the offered load stays the same shape but the run
/// completes regardless of trace duration: requests keep their relative
/// spacing. `speedup` divides inter-arrival gaps (1 = as recorded).
pub fn replay_open_loop(
    policy: &mut dyn CachePolicy,
    trace: &Trace,
    model: &ServiceModel,
    disks: usize,
    speedup: u64,
) -> OpenLoopReport {
    replay_open_loop_observed(policy, trace, model, disks, speedup, &Recorder::disabled())
}

/// [`replay_open_loop`] with an observability recorder: every request
/// becomes a lifecycle span stamped with its arrival/completion times,
/// and periodic samples are drawn on the simulated clock. A disabled
/// recorder reduces this to the plain replay.
pub fn replay_open_loop_observed(
    policy: &mut dyn CachePolicy,
    trace: &Trace,
    model: &ServiceModel,
    disks: usize,
    speedup: u64,
    recorder: &Recorder,
) -> OpenLoopReport {
    let mut raid = MultiServer::new(disks);
    let mut stats = StreamingStats::new();
    let mut hist = Histogram::new();
    let speedup = speedup.max(1);
    // §III-D: the cleaning thread also wakes when the system has been
    // idle for a period. Two quiet seconds count as idle — short enough to
    // exploit real lulls, long enough that Poisson gaps at the traces'
    // 13–160 IOPS don't constantly drain the delta zone (which would cost
    // the pinned-page hits the paper observes).
    let idle_threshold = SimTime::from_secs(2);
    let mut prev_arrival = SimTime::ZERO;
    for r in &trace.records {
        let arrival = r.time / speedup;
        if arrival.saturating_sub(prev_arrival.max(raid.next_free())) > idle_threshold {
            policy.idle_tick(); // background work during the idle gap
        }
        prev_arrival = arrival;
        for lba in r.pages() {
            let outcome = policy.access(r.op, lba);
            let fx = outcome.foreground;
            // Disk rounds queue on the shared array; SSD/CPU time is added
            // on top (the SSD is never the bottleneck here).
            let disk_rounds = fx.raid_rounds;
            let ssd_fx =
                kdd_cache::effects::Effects { raid_rounds: 0, raid_reads: 0, raid_writes: 0, ..fx };
            let ssd_cpu = model.response_time(&ssd_fx);
            let done = if disk_rounds > 0 {
                raid.serve_rounds(arrival, model.hdd_op, disk_rounds) + ssd_cpu
            } else {
                arrival + ssd_cpu
            };
            let resp = done - arrival;
            stats.record(resp.as_nanos() as f64);
            hist.record(resp.as_nanos());
            if recorder.is_enabled() {
                let is_read = r.op == Op::Read;
                let mut c = outcome.to_obs(is_read, lba, resp);
                // Attribute exactly what this driver charged: the SSD/CPU
                // terms plus the member-disk service held on the queue;
                // the queueing delay stays unattributed (conservation).
                c.stages = model.stage_times(is_read, &ssd_fx);
                if disk_rounds > 0 {
                    let raid_stage = if is_read { Stage::RaidRead } else { Stage::RaidWrite };
                    c.stages.add(raid_stage, model.hdd_op * u64::from(disk_rounds));
                }
                if recorder.record_at(c, arrival, done) {
                    recorder.push_sample(policy_sample(policy, recorder.now()));
                }
            }
        }
    }
    let fx = policy.flush();
    let _ = fx; // background work; not part of response time
    recorder.sync_cache(&policy.stats().counters());
    OpenLoopReport {
        policy: policy.name(),
        requests: stats.count(),
        mean_response: SimTime::from_nanos(stats.mean() as u64),
        p50: SimTime::from_nanos(hist.quantile(0.5).unwrap_or(0)),
        p99: SimTime::from_nanos(hist.quantile(0.99).unwrap_or(0)),
        hit_ratio: policy.stats().hit_ratio(),
    }
}

/// Results of one engine-backed batched replay ([`replay_open_loop_engine`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineReplayReport {
    /// Page operations issued (reads + writes).
    pub ops: u64,
    /// Group commits submitted through [`KddEngine::write_batch`].
    pub write_batches: u64,
    /// Summed simulated device time across all operations.
    pub device_time: SimTime,
    /// Reads whose content disagreed with the last version written. Always
    /// zero on a healthy engine; surfaced as data so callers can assert.
    pub read_mismatches: u64,
    /// Cache hit ratio over the run.
    pub hit_ratio: f64,
    /// SSD write amplification at the end of the run.
    pub waf: f64,
}

/// Replay a trace against the real-byte [`KddEngine`], submitting each
/// record's write pages as **one group commit** via
/// [`KddEngine::write_batch`] — the batched write path of the prototype
/// (one metalog flush covers the whole record, mirroring how the kernel
/// module would plug a multi-page bio into the staging area).
///
/// Rewrites are seeded mutations of the previous content ([`PageMutator`])
/// so the delta-compression path is exercised; every read is verified
/// against the last version written to that address.
///
/// # Errors
/// Propagates any [`EngineError`] from the engine's read or write path.
pub fn replay_open_loop_engine(
    engine: &mut KddEngine,
    trace: &Trace,
    seed: u64,
) -> Result<EngineReplayReport, EngineError> {
    let capacity = engine.raid().capacity_pages();
    let mut mutator = PageMutator::new(engine.page_size(), 0.15, 64, seed ^ 0x9e37);
    // Current content of every written page, so rewrites are *mutations*
    // (exercising the delta path) rather than fresh random pages.
    let mut versions: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut ops = 0u64;
    let mut write_batches = 0u64;
    let mut read_mismatches = 0u64;
    let mut device_time = SimTime::ZERO;
    for rec in &trace.records {
        match rec.op {
            Op::Read => {
                for page in rec.pages() {
                    let lba = page % capacity;
                    let (data, t) = engine.read(lba)?;
                    device_time += t;
                    ops += 1;
                    match versions.get(&lba) {
                        Some(expect) if *expect != data => read_mismatches += 1,
                        None if data.iter().any(|&b| b != 0) => read_mismatches += 1,
                        _ => {}
                    }
                }
            }
            Op::Write => {
                batch.clear();
                for page in rec.pages() {
                    let lba = page % capacity;
                    let next = match versions.get(&lba) {
                        Some(prev) => mutator.mutate(prev),
                        None => mutator.initial_page(),
                    };
                    batch.push((lba, next));
                }
                let reqs: Vec<WriteRequest<'_>> =
                    batch.iter().map(|(lba, data)| WriteRequest { lba: *lba, data }).collect();
                for t in engine.write_batch(&reqs)? {
                    device_time += t;
                }
                write_batches += 1;
                ops += batch.len() as u64;
                for (lba, data) in batch.drain(..) {
                    versions.insert(lba, data);
                }
            }
        }
    }
    Ok(EngineReplayReport {
        ops,
        write_batches,
        device_time,
        read_mismatches,
        hit_ratio: engine.stats().hit_ratio(),
        waf: engine.ssd().endurance().waf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_policy, PolicyKind};
    use kdd_cache::policies::RaidModel;
    use kdd_cache::setassoc::CacheGeometry;
    use kdd_trace::record::{Op, TraceRecord};
    use kdd_trace::synth::PaperTrace;

    fn replay(kind: PolicyKind, trace: &Trace, cache_pages: u64) -> OpenLoopReport {
        let g = CacheGeometry {
            total_pages: cache_pages,
            ways: 64.min(cache_pages as u32),
            page_size: 4096,
        };
        let raid = RaidModel::paper_default(trace.address_space_pages().max(1024));
        let mut p = build_policy(kind, g, raid, 3);
        let model = ServiceModel::paper_default();
        replay_open_loop(p.as_mut(), trace, &model, 5, 1)
    }

    #[test]
    fn sparse_trace_has_no_queueing() {
        // One request per second: response == service.
        let mut t = Trace::new(4096);
        for i in 0..10u64 {
            t.records.push(TraceRecord {
                time: SimTime::from_secs(i),
                op: Op::Write,
                lba: i * 64,
                len: 1,
            });
        }
        let r = replay(PolicyKind::Nossd, &t, 16);
        let model = ServiceModel::paper_default();
        assert_eq!(r.requests, 10);
        assert_eq!(r.mean_response, model.hdd_op * 2, "small write = 2 rounds");
    }

    #[test]
    fn burst_queues_on_the_array() {
        // 50 simultaneous writes on a 5-disk array must queue.
        let mut t = Trace::new(4096);
        for i in 0..50u64 {
            t.records.push(TraceRecord { time: SimTime::ZERO, op: Op::Write, lba: i * 64, len: 1 });
        }
        let r = replay(PolicyKind::Nossd, &t, 16);
        let model = ServiceModel::paper_default();
        assert!(r.p99 > model.hdd_op * 10, "p99 {} shows no queueing", r.p99);
        assert!(r.mean_response > r.p50 / 2);
    }

    #[test]
    fn engine_batched_replay_matches_serial_replay() {
        use kdd_blockdev::ssd::SsdDevice;
        use kdd_core::KddConfig;
        use kdd_raid::array::RaidArray;
        use kdd_raid::layout::{Layout, RaidLevel};

        let build = || {
            let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 64);
            let raid = RaidArray::new(layout, 4096);
            let ssd = SsdDevice::with_logical_capacity((256 + 64) * 4096, 4096, 0.1);
            let g = CacheGeometry { total_pages: 256, ways: 8, page_size: 4096 };
            KddEngine::new(KddConfig::new(g), ssd, raid).unwrap()
        };
        let trace = PaperTrace::Fin1.generate_scaled(300, 9);

        let mut batched = build();
        let report = replay_open_loop_engine(&mut batched, &trace, 9).unwrap();
        assert_eq!(report.read_mismatches, 0);
        assert!(report.write_batches > 0);
        assert!(report.ops > 0);

        // Serial reference: identical trace and content sequence, one
        // engine.write per page — the pre-batching replay shape.
        let mut serial = build();
        let capacity = serial.raid().capacity_pages();
        let mut mutator = kdd_delta::content::PageMutator::new(4096, 0.15, 64, 9 ^ 0x9e37);
        let mut versions: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for rec in &trace.records {
            for page in rec.pages() {
                let lba = page % capacity;
                match rec.op {
                    Op::Read => {
                        serial.read(lba).unwrap();
                    }
                    Op::Write => {
                        let next = match versions.get(&lba) {
                            Some(prev) => mutator.mutate(prev),
                            None => mutator.initial_page(),
                        };
                        serial.write(lba, &next).unwrap();
                        versions.insert(lba, next);
                    }
                }
            }
        }
        assert!(!versions.is_empty());
        for (lba, expect) in &versions {
            let (a, _) = batched.read(*lba).unwrap();
            let (b, _) = serial.read(*lba).unwrap();
            assert_eq!(&a, expect, "batched replay diverged at lba {lba}");
            assert_eq!(&b, expect, "serial replay diverged at lba {lba}");
        }
        assert!(
            batched.stats().ssd_meta_writes <= serial.stats().ssd_meta_writes,
            "group commit must never write more meta pages: {} vs {}",
            batched.stats().ssd_meta_writes,
            serial.stats().ssd_meta_writes
        );
    }

    #[test]
    fn kdd_beats_nossd_and_wt_on_write_heavy_trace() {
        let trace = PaperTrace::Fin1.generate_scaled(2000, 11);
        let cache = 4096;
        let nossd = replay(PolicyKind::Nossd, &trace, cache);
        let wt = replay(PolicyKind::Wt, &trace, cache);
        let kdd = replay(PolicyKind::Kdd(0.25), &trace, cache);
        assert!(
            kdd.mean_response < nossd.mean_response,
            "KDD {} !< Nossd {}",
            kdd.mean_response,
            nossd.mean_response
        );
        assert!(
            kdd.mean_response < wt.mean_response,
            "KDD {} !< WT {}",
            kdd.mean_response,
            wt.mean_response
        );
    }

    #[test]
    fn observed_replay_conserves_stage_time() {
        use kdd_obs::{Json, RecorderConfig};

        let trace = PaperTrace::Fin1.generate_scaled(800, 11);
        let g = CacheGeometry { total_pages: 256, ways: 16, page_size: 4096 };
        let raid = RaidModel::paper_default(trace.address_space_pages().max(1024));
        let mut p = build_policy(PolicyKind::Kdd(0.25), g, raid, 11);
        let model = ServiceModel::paper_default();
        let rec = Recorder::new(RecorderConfig {
            sample_interval: SimTime::from_secs(1),
            ring_capacity: 256,
        });
        replay_open_loop_observed(p.as_mut(), &trace, &model, 5, 1, &rec);
        let doc = obs_snapshot_policy(p.as_ref(), &rec).expect("recorder enabled");

        let events = doc
            .get("spans")
            .and_then(|s| s.get("events"))
            .and_then(Json::as_arr)
            .expect("spans.events");
        assert!(!events.is_empty(), "observed replay recorded no spans");
        let mut attributed = 0u64;
        for e in events {
            let ns = |key: &str| {
                #[allow(clippy::cast_sign_loss)]
                let v = e.get(key).and_then(Json::as_f64).expect(key).max(0.0) as u64;
                v
            };
            let dur = ns("exit_ns").saturating_sub(ns("enter_ns"));
            let sum: u64 = e.get("stages").map_or(0, |stages| {
                Stage::ALL
                    .iter()
                    .filter_map(|s| stages.get(s.as_str()))
                    .filter_map(Json::as_f64)
                    .map(|v| {
                        #[allow(clippy::cast_sign_loss)]
                        let v = v.max(0.0) as u64;
                        v
                    })
                    .sum()
            });
            assert!(sum <= dur, "span attributes {sum} ns but served in {dur} ns");
            attributed += sum;
        }
        assert!(attributed > 0, "counting-model attribution is inert");
    }

    #[test]
    fn read_heavy_trace_rewards_caching() {
        let trace = PaperTrace::Fin2.generate_scaled(2000, 13);
        let nossd = replay(PolicyKind::Nossd, &trace, 8192);
        let wt = replay(PolicyKind::Wt, &trace, 8192);
        assert!(
            wt.mean_response < nossd.mean_response,
            "WT {} should beat Nossd {} on a read-heavy trace",
            wt.mean_response,
            nossd.mean_response
        );
        assert!(wt.hit_ratio > 0.2);
    }
}
