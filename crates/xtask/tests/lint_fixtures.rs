//! Fixture-corpus tests for the kdd-lint engine: every rule is pinned to
//! exact rule IDs and `file:line` spans on known-bad samples, and to *zero*
//! findings on known-good samples, including waiver-comment handling.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use xtask::{lint_source, Options, Rule};

fn fixture(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Run a fixture as `crate_name` and return `(rule, line)` pairs, sorted.
fn findings(crate_name: &str, name: &str, opts: Options) -> Vec<(Rule, usize)> {
    let src = fixture(name);
    let report = lint_source(crate_name, name, &src, opts);
    let mut v: Vec<(Rule, usize)> = report.violations.iter().map(|f| (f.rule, f.line)).collect();
    v.sort_by_key(|(r, l)| (*l, *r));
    v
}

#[test]
fn no_panic_bad_pins_every_site() {
    let got = findings("core", "no_panic_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::NoPanic, 5),  // unwrap
            (Rule::NoPanic, 6),  // expect
            (Rule::NoPanic, 14), // unreachable!
            (Rule::NoPanic, 19), // todo!
            (Rule::NoPanic, 23), // panic!
        ]
    );
}

#[test]
fn no_panic_bad_reports_rule_id_and_span() {
    let src = fixture("no_panic_bad.rs");
    let report = lint_source("core", "no_panic_bad.rs", &src, Options::default());
    let first = report.violations.first().expect("has violations");
    assert_eq!(first.rule.code(), "KDD001");
    assert_eq!(first.rule.name(), "no-panic");
    assert_eq!(format!("{first}").split(' ').next(), Some("no_panic_bad.rs:5:"));
}

#[test]
fn no_panic_good_is_clean_and_honours_waiver() {
    let src = fixture("no_panic_good.rs");
    let report = lint_source("core", "no_panic_good.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "good fixture must be clean");
    assert_eq!(report.waivers.len(), 1, "one waiver honoured");
    let w = &report.waivers[0];
    assert_eq!(w.rule, Rule::NoPanic);
    assert_eq!(w.line, 36);
    assert!(w.reason.contains("caller checked"));
}

#[test]
fn no_panic_only_guards_protected_crates() {
    let src = fixture("no_panic_bad.rs");
    let report = lint_source("bench", "no_panic_bad.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "bench may panic");
}

#[test]
fn layering_bad_pins_every_raw_write() {
    let got = findings("sim", "layering_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::Layering, 5), // write_page
            (Rule::Layering, 6), // trim_page
            (Rule::Layering, 7), // write_no_parity_update
            (Rule::Layering, 8), // resync
        ]
    );
}

#[test]
fn layering_allows_core_internals() {
    let src = fixture("layering_bad.rs");
    let report = lint_source("core", "layering_bad.rs", &src, Options::default());
    assert!(
        report.violations.iter().all(|v| v.rule != Rule::Layering),
        "core may touch the substrate"
    );
}

#[test]
fn determinism_bad_pins_every_site() {
    let got = findings("sim", "determinism_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::Determinism, 3),  // use std::collections::HashMap
            (Rule::Determinism, 4),  // use std::time::Instant
            (Rule::Determinism, 7),  // Instant::now
            (Rule::Determinism, 12), // thread_rng
            (Rule::Determinism, 17), // HashMap::new
            (Rule::Determinism, 21), // HashSet::new
        ]
    );
}

#[test]
fn determinism_good_is_clean_with_one_waiver() {
    let src = fixture("determinism_good.rs");
    let report = lint_source("sim", "determinism_good.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "seeded/ordered alternatives are clean");
    assert_eq!(report.waivers.len(), 1);
    assert_eq!(report.waivers[0].rule, Rule::Determinism);
}

#[test]
fn determinism_not_checked_in_bench_or_cli() {
    let src = fixture("determinism_bad.rs");
    for c in ["bench", "cli"] {
        let report = lint_source(c, "determinism_bad.rs", &src, Options::default());
        assert_eq!(report.violations, vec![], "{c} may read ambient state");
    }
}

#[test]
fn stale_parity_unpaired_call_site_flagged() {
    let got = findings("cache", "stale_parity_bad.rs", Options::default());
    assert_eq!(got, vec![(Rule::StaleParity, 6)]);
}

#[test]
fn stale_parity_paired_module_is_clean() {
    let got = findings("cache", "stale_parity_good.rs", Options::default());
    assert_eq!(got, vec![]);
}

#[test]
fn waiver_bad_reports_malformed_and_uncovered() {
    let got = findings("core", "waiver_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::Waiver, 4),   // allow(no-panic) with no reason
            (Rule::NoPanic, 5),  // ...so the unwrap still fires
            (Rule::Waiver, 9),   // allow(no-such-rule)
            (Rule::NoPanic, 10), // ...so the unwrap still fires
            (Rule::NoPanic, 15), // determinism waiver does not cover panic!
        ]
    );
}

#[test]
fn indexing_pedantic_only() {
    let quiet = findings("raid", "indexing_bad.rs", Options::default());
    assert_eq!(quiet, vec![], "KDD005 is pedantic-only");
    let got = findings("raid", "indexing_bad.rs", Options { pedantic: true });
    assert_eq!(got, vec![(Rule::IndexingSlicing, 5), (Rule::IndexingSlicing, 6)]);
}

#[test]
fn indexing_good_is_clean_under_pedantic() {
    let got = findings("raid", "indexing_good.rs", Options { pedantic: true });
    assert_eq!(got, vec![]);
}

#[test]
fn hot_alloc_bad_pins_every_site() {
    // The hot-path filter keys on the rel_path, not the crate, so lint the
    // fixture as if it were one of the six hot files.
    let src = fixture("hot_alloc_bad.rs");
    let report = lint_source("core", "crates/core/src/engine.rs", &src, Options::default());
    let mut got: Vec<(Rule, usize)> = report.violations.iter().map(|f| (f.rule, f.line)).collect();
    got.sort_by_key(|(r, l)| (*l, *r));
    assert_eq!(
        got,
        vec![
            (Rule::HotAlloc, 5),  // vec![0u8; ...]
            (Rule::HotAlloc, 7),  // .to_vec()
            (Rule::HotAlloc, 8),  // .clone()
            (Rule::HotAlloc, 16), // vec![0u64; ...] (match-finder head table)
            (Rule::HotAlloc, 17), // vec![u32::MAX; ...] (chain table)
            (Rule::HotAlloc, 18), // vec![0u16; ...]
            (Rule::HotAlloc, 19), // vec![0u32; ...]
        ]
    );
    let first = report.violations.first().expect("has violations");
    assert_eq!(first.rule.code(), "KDD006");
    assert_eq!(first.rule.name(), "hot-alloc");
}

#[test]
fn hot_alloc_only_guards_hot_files() {
    let src = fixture("hot_alloc_bad.rs");
    for rel in ["crates/core/src/metalog.rs", "hot_alloc_bad.rs"] {
        let report = lint_source("core", rel, &src, Options::default());
        assert_eq!(report.violations, vec![], "{rel} is not a hot-path file");
    }
}

#[test]
fn hot_alloc_good_is_clean_and_honours_shorthand_waiver() {
    let src = fixture("hot_alloc_good.rs");
    let report = lint_source("core", "crates/raid/src/array.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "pooled + waived fixture must be clean");
    assert_eq!(report.waivers.len(), 2, "both shorthand waivers honoured");
    let w = &report.waivers[0];
    assert_eq!(w.rule, Rule::HotAlloc);
    assert_eq!(w.line, 13);
    assert!(w.reason.contains("returned to the caller"));
    let w = &report.waivers[1];
    assert_eq!(w.rule, Rule::HotAlloc);
    assert_eq!(w.line, 26);
    assert!(w.reason.contains("one-time scratch construction"));
}

#[test]
fn obs_determinism_bad_pins_every_site() {
    // The obs filter keys on the rel_path, so lint the fixture as if it
    // lived inside crates/obs/.
    let src = fixture("obs_determinism_bad.rs");
    let report = lint_source("obs", "crates/obs/src/registry.rs", &src, Options::default());
    let mut got: Vec<(Rule, usize)> = report.violations.iter().map(|f| (f.rule, f.line)).collect();
    got.sort_by_key(|(r, l)| (*l, *r));
    assert_eq!(
        got,
        vec![
            (Rule::Determinism, 5),     // std::time:: (obs is also KDD003-checked)
            (Rule::ObsDeterminism, 5),  // std::time::Instant::now
            (Rule::ObsDeterminism, 11), // .sum::<f64>()
            (Rule::ObsDeterminism, 16), // .fold(0.0
        ]
    );
    let kdd007 = report.violations.iter().find(|v| v.rule == Rule::ObsDeterminism).expect("hit");
    assert_eq!(kdd007.rule.code(), "KDD007");
    assert_eq!(kdd007.rule.name(), "obs-determinism");
}

#[test]
fn obs_determinism_guards_files_that_register_metrics_anywhere() {
    // A bench file (KDD003-exempt) still falls under KDD007 the moment it
    // registers a metric.
    let src = "pub fn setup(r: &mut Registry) -> CounterId {\n\
               \x20   let id = r.register_counter(\"x\");\n\
               \x20   let _t = std::time::Instant::now();\n\
               \x20   id\n\
               }\n";
    let report = lint_source("bench", "crates/bench/src/obs_setup.rs", src, Options::default());
    let got: Vec<(Rule, usize)> = report.violations.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, vec![(Rule::ObsDeterminism, 3)]);

    // Without the registration call, bench keeps its ambient-state licence.
    let free = "pub fn setup() {\n    let _t = std::time::Instant::now();\n}\n";
    let report = lint_source("bench", "crates/bench/src/obs_setup.rs", free, Options::default());
    assert_eq!(report.violations, vec![], "bench without metrics is exempt");
}

#[test]
fn obs_determinism_good_is_clean() {
    let src = fixture("obs_determinism_good.rs");
    let report = lint_source("obs", "crates/obs/src/registry.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "integer-accumulating fixture must be clean");
}

#[test]
fn concurrency_bad_pins_every_site() {
    let got = findings("core", "concurrency_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::ConcurrencyReadiness, 2),  // use Cell/RefCell
            (Rule::ConcurrencyReadiness, 3),  // use Rc
            (Rule::ConcurrencyReadiness, 5),  // static mut
            (Rule::ConcurrencyReadiness, 7),  // thread_local!
            (Rule::ConcurrencyReadiness, 8),  // RefCell inside the macro
            (Rule::ConcurrencyReadiness, 12), // Rc field
            (Rule::ConcurrencyReadiness, 13), // Cell field
            (Rule::ConcurrencyReadiness, 14), // raw *mut field
        ]
    );
    let src = fixture("concurrency_bad.rs");
    let report = lint_source("core", "concurrency_bad.rs", &src, Options::default());
    let first = report.violations.first().expect("has violations");
    assert_eq!(first.rule.code(), "KDD008");
    assert_eq!(first.rule.name(), "concurrency-readiness");
    assert_eq!(format!("{first}").split(' ').next(), Some("concurrency_bad.rs:2:"));
}

#[test]
fn concurrency_only_guards_shard_ready_crates() {
    let src = fixture("concurrency_bad.rs");
    for c in ["sim", "bench", "cli", "trace"] {
        let report = lint_source(c, "concurrency_bad.rs", &src, Options::default());
        assert_eq!(report.violations, vec![], "{c} is not shard-ready-gated");
    }
}

#[test]
fn concurrency_good_is_clean_and_honours_waiver() {
    let src = fixture("concurrency_good.rs");
    let report = lint_source("cache", "concurrency_good.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "Arc/atomics + test-only RefCell are clean");
    assert_eq!(report.waivers.len(), 1, "one waiver honoured");
    let w = &report.waivers[0];
    assert_eq!(w.rule, Rule::ConcurrencyReadiness);
    assert_eq!(w.line, 13);
    assert!(w.reason.contains("single-shard bring-up"));
}

#[test]
fn error_discard_bad_pins_every_site() {
    let got = findings("core", "error_discard_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::ErrorDiscard, 16), // let _ = engine.flush()
            (Rule::ErrorDiscard, 17), // engine.sync().ok()
            (Rule::ErrorDiscard, 18), // std::fs::remove_dir_all(..).ok()
        ]
    );
    let src = fixture("error_discard_bad.rs");
    let report = lint_source("core", "error_discard_bad.rs", &src, Options::default());
    let first = report.violations.first().expect("has violations");
    assert_eq!(first.rule.code(), "KDD009");
    assert_eq!(first.rule.name(), "error-discard");
    assert!(
        first.message.contains("Engine::flush"),
        "message names the resolved API: {}",
        first.message
    );
}

#[test]
fn error_discard_good_is_clean_and_honours_waiver() {
    let src = fixture("error_discard_good.rs");
    let report = lint_source("core", "error_discard_good.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "handled/logged/waived discards are clean");
    assert_eq!(report.waivers.len(), 1, "one waiver honoured");
    assert_eq!(report.waivers[0].rule, Rule::ErrorDiscard);
    assert!(report.waivers[0].reason.contains("best-effort cleanup"));
}

#[test]
fn counter_arith_bad_pins_every_site() {
    let got = findings("blockdev", "counter_arith_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::CounterArithmetic, 11), // erase_count += 1
            (Rule::CounterArithmetic, 14), // waf_milli = waf_milli + amplified
            (Rule::CounterArithmetic, 17), // erase_count as u32
            (Rule::CounterArithmetic, 20), // waf_milli as f32
            (Rule::CounterArithmetic, 23), // stale_rows += ...
        ]
    );
    let src = fixture("counter_arith_bad.rs");
    let report = lint_source("blockdev", "counter_arith_bad.rs", &src, Options::default());
    let first = report.violations.first().expect("has violations");
    assert_eq!(first.rule.code(), "KDD010");
    assert_eq!(first.rule.name(), "counter-arithmetic");
}

#[test]
fn counter_arith_good_is_clean_and_honours_waiver() {
    let src = fixture("counter_arith_good.rs");
    let report = lint_source("blockdev", "counter_arith_good.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "checked/saturating/widening forms are clean");
    assert_eq!(report.waivers.len(), 1, "one waiver honoured");
    assert_eq!(report.waivers[0].rule, Rule::CounterArithmetic);
    assert!(report.waivers[0].reason.contains("rated_pe_cycles"));
}

#[test]
fn counter_arith_only_guards_counter_crates() {
    let src = fixture("counter_arith_bad.rs");
    let report = lint_source("sim", "counter_arith_bad.rs", &src, Options::default());
    assert_eq!(report.violations, vec![], "sim counters are simulation outputs");
}

#[test]
fn layering_indirect_bad_pins_reachability_chain() {
    let got = findings("sim", "layering_indirect_bad.rs", Options::default());
    assert_eq!(
        got,
        vec![
            (Rule::Layering, 4),  // scrub_disk -> wipe_rows (indirect)
            (Rule::Layering, 8),  // wipe_rows -> wipe_one (indirect)
            (Rule::Layering, 12), // a.write_page (direct)
        ]
    );
    let src = fixture("layering_indirect_bad.rs");
    let report = lint_source("sim", "layering_indirect_bad.rs", &src, Options::default());
    let indirect = report.violations.iter().find(|v| v.line == 4).expect("indirect hit");
    assert!(
        indirect.message.contains("wipe_rows") && indirect.message.contains("write_page"),
        "witness chain names the path: {}",
        indirect.message
    );
}

#[test]
fn layering_indirect_good_engine_chain_is_clean() {
    let got = findings("sim", "layering_indirect_good.rs", Options::default());
    assert_eq!(got, vec![], "engine-API chains are sanctioned");
}

#[test]
fn obs_schema_drift_is_flagged_both_directions() {
    use xtask::{check_obs_schema, ObsNames, RegisteredName};
    let doc_text = r#"{
        "schema": "kdd-obs/v2",
        "totals": {
            "counters": {"cache.read_hits": 1},
            "gauges": {},
            "hists": {},
            "derived": {}
        },
        "stages": {
            "delta_encode": {"count": 1, "sum": 30000, "max": 30000, "buckets": [[16384, 1]]}
        },
        "timeseries": [{"t": 0}],
        "wear": {},
        "spans": {"pushed": 1, "dropped": 0, "events": [{"class": "hit_clean"}]}
    }"#;
    let doc = kdd_obs::json::parse(doc_text).expect("doc parses");
    let reg = |name: &str, line: usize| RegisteredName {
        name: name.to_string(),
        file: "crates/obs/src/recorder.rs".to_string(),
        line,
    };
    let base_names = || {
        let mut names = ObsNames::default();
        names.counters.push(reg("cache.read_hits", 80));
        names.span_classes.push("hit_clean".to_string());
        names.span_classes.push("delta_encode".to_string());
        names.stages.push("delta_encode".to_string());
        names
    };

    // Case 1: registered in code but absent from the committed snapshot —
    // pinned to the registration's file:line.
    let mut names = base_names();
    names.counters.push(reg("cache.phantom_hits", 81));
    let found = check_obs_schema(&names, &doc, "OBS_engine.json");
    assert_eq!(found.len(), 1, "exactly the drifted metric: {found:?}");
    assert_eq!(found[0].rule.code(), "KDD011");
    assert_eq!(found[0].rule.name(), "obs-schema");
    assert_eq!(found[0].file, "crates/obs/src/recorder.rs");
    assert_eq!(found[0].line, 81);
    assert!(found[0].message.contains("cache.phantom_hits"));

    // Case 2: exported in the snapshot but no longer registered anywhere.
    let mut names = base_names();
    names.counters.clear();
    let found = check_obs_schema(&names, &doc, "OBS_engine.json");
    assert_eq!(found.len(), 1, "stale export flagged: {found:?}");
    assert_eq!(found[0].rule, Rule::ObsSchema);
    assert_eq!(found[0].file, "OBS_engine.json");
    assert!(found[0].message.contains("cache.read_hits"));

    // Case 3: an exported span class no `as_str` declares.
    let mut names = base_names();
    names.span_classes.retain(|c| c != "hit_clean");
    let found = check_obs_schema(&names, &doc, "OBS_engine.json");
    assert_eq!(found.len(), 1, "undeclared span class flagged: {found:?}");
    assert!(found[0].message.contains("hit_clean"));

    // Case 4: stage taxonomy drift, both directions at once — a declared
    // stage missing from the table AND a table key no Stage declares.
    let mut names = base_names();
    names.stages = vec!["parity_rmw".to_string()];
    names.span_classes.push("parity_rmw".to_string());
    let found = check_obs_schema(&names, &doc, "OBS_engine.json");
    assert_eq!(found.len(), 2, "both stage directions flagged: {found:?}");
    assert!(found.iter().any(|v| v.message.contains("`parity_rmw` is declared")));
    assert!(found.iter().any(|v| v.message.contains("`delta_encode` appears")));

    // Case 5: a committed baseline still on the previous schema version
    // must be called out (and the v2-only checks are skipped, not failed).
    let v1 = kdd_obs::json::parse(&doc_text.replace("kdd-obs/v2", "kdd-obs/v1")).expect("v1 doc");
    let found = check_obs_schema(&base_names(), &v1, "OBS_engine.json");
    assert_eq!(found.len(), 1, "stale schema flagged once: {found:?}");
    assert!(found[0].message.contains("regenerate"), "{}", found[0].message);

    // Agreement in both directions is clean.
    assert_eq!(check_obs_schema(&base_names(), &doc, "OBS_engine.json"), vec![]);
}

#[test]
fn json_report_is_stable_and_machine_readable() {
    let src = fixture("error_discard_bad.rs");
    let report = lint_source("core", "error_discard_bad.rs", &src, Options::default());
    let rendered = report.render_json();
    let doc = kdd_obs::json::parse(&rendered).expect("report JSON parses");
    assert_eq!(doc.get("schema").and_then(kdd_obs::Json::as_str), Some("kdd-lint/v1"));
    let violations = doc.get("violations").and_then(kdd_obs::Json::as_arr).expect("array");
    assert_eq!(violations.len(), 3);
    let first = &violations[0];
    assert_eq!(first.get("rule").and_then(kdd_obs::Json::as_str), Some("KDD009"));
    assert_eq!(first.get("file").and_then(kdd_obs::Json::as_str), Some("error_discard_bad.rs"));
    assert_eq!(first.get("line").and_then(kdd_obs::Json::as_f64), Some(16.0));
}

#[test]
fn rule_codes_are_stable() {
    for (rule, code, name) in [
        (Rule::Waiver, "KDD000", "waiver"),
        (Rule::NoPanic, "KDD001", "no-panic"),
        (Rule::Layering, "KDD002", "layering"),
        (Rule::Determinism, "KDD003", "determinism"),
        (Rule::StaleParity, "KDD004", "stale-parity"),
        (Rule::IndexingSlicing, "KDD005", "indexing-slicing"),
        (Rule::HotAlloc, "KDD006", "hot-alloc"),
        (Rule::ObsDeterminism, "KDD007", "obs-determinism"),
        (Rule::ConcurrencyReadiness, "KDD008", "concurrency-readiness"),
        (Rule::ErrorDiscard, "KDD009", "error-discard"),
        (Rule::CounterArithmetic, "KDD010", "counter-arithmetic"),
        (Rule::ObsSchema, "KDD011", "obs-schema"),
    ] {
        assert_eq!(rule.code(), code);
        assert_eq!(rule.name(), name);
        assert_eq!(Rule::parse(code), Some(rule), "parse by code");
        assert_eq!(Rule::parse(name), Some(rule), "parse by name");
    }
    assert_eq!(Rule::parse("no-such-rule"), None);
}

#[test]
fn whole_workspace_is_clean() {
    // The acceptance gate: the shipped tree lints clean under the full
    // pedantic rule set, KDD008–KDD011 included (every honoured waiver
    // carries a written reason by construction of the waiver parser).
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let report = xtask::lint_workspace(std::path::Path::new(root), Options { pedantic: true })
        .expect("workspace walk");
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert_eq!(rendered, Vec::<String>::new(), "workspace must lint clean");
}
