// Per-op page-buffer allocations: every line below is a KDD006 finding
// when linted under a hot-path rel_path such as crates/core/src/engine.rs.

pub fn write_path(data: &[u8]) -> Vec<u8> {
    let mut page = vec![0u8; 4096];
    page[..data.len()].copy_from_slice(data);
    let staged = data.to_vec();
    let replay = staged.clone();
    drop(replay);
    page
}

// A hash-chain match finder that rebuilds its scratch tables on every
// call: the table fills dominate the compress cost, so each is a finding.
pub fn compress_once(data: &[u8]) -> usize {
    let head = vec![0u64; 1 << 13];
    let chain = vec![u32::MAX; data.len()];
    let window = vec![0u16; 256];
    let offsets = vec![0u32; 64];
    head.len() + chain.len() + window.len() + offsets.len()
}
