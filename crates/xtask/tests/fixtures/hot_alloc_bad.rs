// Per-op page-buffer allocations: every line below is a KDD006 finding
// when linted under a hot-path rel_path such as crates/core/src/engine.rs.

pub fn write_path(data: &[u8]) -> Vec<u8> {
    let mut page = vec![0u8; 4096];
    page[..data.len()].copy_from_slice(data);
    let staged = data.to_vec();
    let replay = staged.clone();
    drop(replay);
    page
}
