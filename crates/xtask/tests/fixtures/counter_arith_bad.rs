//! KDD010 fail fixture: unchecked accumulation and narrowing casts on
//! endurance counters, pinned by line.
pub struct Wear {
    erase_count: u64,
    waf_milli: u64,
    stale_rows: u64,
}

impl Wear {
    pub fn on_erase(&mut self) {
        self.erase_count += 1;
    }
    pub fn on_write(&mut self, amplified: u64) {
        self.waf_milli = self.waf_milli + amplified;
    }
    pub fn export_erases(&self) -> u32 {
        self.erase_count as u32
    }
    pub fn export_waf(&self) -> f32 {
        self.waf_milli as f32
    }
    pub fn note_stale(&mut self, stale_row_count: u32) {
        self.stale_rows += u64::from(stale_row_count);
    }
}
