//! KDD008 pass fixture: shard-ready state, a reasoned waiver, and
//! test-only single-thread constructs (exempt).
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;

pub struct ShardState {
    peers: Arc<Vec<u32>>,
    dirty: AtomicBool,
    epoch: AtomicU64,
}

// kdd-lint: allow(concurrency-readiness) -- single-shard bring-up path, replaced in PR 9
pub struct Legacy(std::rc::Rc<u32>);

#[cfg(test)]
mod tests {
    use std::cell::RefCell;

    #[test]
    fn scratch_is_test_only() {
        let cell = RefCell::new(0u8);
        *cell.borrow_mut() += 1;
    }
}
