//! Known-bad fixture for KDD000 (waiver hygiene). Linted as crate `core`.

pub fn reasonless(b: &[u8]) -> u64 {
    // kdd-lint: allow(no-panic)
    u64::from_le_bytes(b[..8].try_into().unwrap()) // line 5: waiver had no reason
}

pub fn unknown_rule(b: &[u8]) -> u64 {
    // kdd-lint: allow(no-such-rule) -- the rule name is wrong
    u64::from_le_bytes(b[..8].try_into().unwrap()) // line 10: unwaived unwrap
}

pub fn wrong_rule() {
    // kdd-lint: allow(determinism) -- waives a rule this line does not hit
    panic!("still a violation"); // line 15: KDD001 not covered by that waiver
}
