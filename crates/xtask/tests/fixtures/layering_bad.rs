//! Known-bad fixture for KDD002 (layering). Linted as crate `sim`.

pub fn meddle(ssd: &mut kdd_blockdev::SsdDevice, raid: &mut kdd_raid::RaidArray) {
    let page = vec![0u8; 4096];
    let _ = ssd.write_page(0, &page); // line 5: raw device write
    let _ = ssd.trim_page(0); // line 6: raw trim
    let _ = raid.write_no_parity_update(0, &page); // line 7: raw array write
    let _ = raid.resync(None); // line 8: raw repair
}
