//! KDD010 pass fixture: checked/saturating accumulation, widening casts,
//! read-only sums, a reasoned waiver, and non-counter arithmetic.
pub struct Wear {
    erase_count: u64,
    waf_milli: u64,
}

impl Wear {
    pub fn on_erase(&mut self) {
        self.erase_count = self.erase_count.saturating_add(1);
    }
    pub fn on_write(&mut self, amplified: u64) {
        self.waf_milli = self.waf_milli.checked_add(amplified).unwrap_or(u64::MAX);
    }
    pub fn export(&self) -> u64 {
        self.erase_count as u64
    }
    pub fn total(&self, base: u64) -> u64 {
        base + self.erase_count
    }
    pub fn phase_bump(&self, phase: u32) -> u32 {
        phase + 1
    }
    pub fn compact(&self) -> u16 {
        // kdd-lint: allow(counter-arithmetic) -- bounded by rated_pe_cycles (u16 max 65535)
        self.erase_count as u16
    }
}
