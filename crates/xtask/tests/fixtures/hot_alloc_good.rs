// Pool-recycled buffers plus one shorthand-waived copy: clean under KDD006.

pub fn write_path(pool: &mut kdd_util::PagePool, data: &[u8]) -> u64 {
    let mut page = pool.acquire();
    page[..data.len()].copy_from_slice(data);
    let sum = page.iter().map(|&b| u64::from(b)).sum();
    pool.release(page);
    sum
}

pub fn snapshot(data: &[u8]) -> Vec<u8> {
    // kdd-waiver(KDD006): the snapshot is returned to the caller by value.
    data.to_vec()
}

/// Scratch tables built once and reused across calls — the sanctioned
/// shape for match-finder state (cf. `delta::codec::Compressor`).
pub struct Finder {
    head: Vec<u64>,
    chain: Vec<u32>,
}

impl Finder {
    pub fn new() -> Finder {
        // kdd-waiver(KDD006): one-time scratch construction, reused per call.
        let head = vec![0u64; 1 << 13];
        Finder { head, chain: Vec::new() }
    }

    pub fn find(&mut self, data: &[u8]) -> usize {
        self.chain.resize(data.len(), u32::MAX); // grows once, then reused
        self.head.len() + self.chain.len()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_buffers_may_allocate() {
        let buf = vec![0u8; 16];
        assert_eq!(buf.to_vec().len(), buf.clone().len());
    }
}
