// Pool-recycled buffers plus one shorthand-waived copy: clean under KDD006.

pub fn write_path(pool: &mut kdd_util::PagePool, data: &[u8]) -> u64 {
    let mut page = pool.acquire();
    page[..data.len()].copy_from_slice(data);
    let sum = page.iter().map(|&b| u64::from(b)).sum();
    pool.release(page);
    sum
}

pub fn snapshot(data: &[u8]) -> Vec<u8> {
    // kdd-waiver(KDD006): the snapshot is returned to the caller by value.
    data.to_vec()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_buffers_may_allocate() {
        let buf = vec![0u8; 16];
        assert_eq!(buf.to_vec().len(), buf.clone().len());
    }
}
