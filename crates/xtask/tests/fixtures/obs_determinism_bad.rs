//! BAD: observability code stamping events with wall-clock time and
//! accumulating floats. Linted as `crates/obs/src/registry.rs`.

pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    drop(t);
    0
}

pub fn mean_latency(samples: &[f64]) -> f64 {
    let total = samples.iter().sum::<f64>();
    total / samples.len() as f64
}

pub fn folded(samples: &[f64]) -> f64 {
    samples.iter().fold(0.0, |a, b| a + b)
}
