//! KDD002 (indirect) pass fixture: the same call shape, but the chain ends
//! in engine-level APIs rather than a raw substrate write.
pub fn scrub_disk(e: &mut KddEngine) {
    wipe_rows(e);
}

fn wipe_rows(e: &mut KddEngine) {
    wipe_one(e);
}

fn wipe_one(e: &mut KddEngine) {
    e.write(0, &[0u8; 8]);
}
