//! Known-bad fixture for KDD001 (no-panic). Linted as crate `core`.
//! Expected violations, by line, are asserted in tests/lint_fixtures.rs.

pub fn decode_header(b: &[u8]) -> (u64, u32) {
    let lba = u64::from_le_bytes(b[..8].try_into().unwrap()); // line 5: unwrap
    let slot = u32::from_le_bytes(b[8..12].try_into().expect("12-byte header")); // line 6: expect
    (lba, slot)
}

pub fn route(state: u8) -> u8 {
    match state {
        0 => 1,
        1 => 0,
        _ => unreachable!("states are binary"), // line 14: unreachable!
    }
}

pub fn not_done() {
    todo!() // line 19: todo!
}

pub fn bail() {
    panic!("boom"); // line 23: panic!
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u8, ()> = Ok(2);
        r.expect("tests may panic");
        if false {
            panic!("tests may panic");
        }
    }
}
