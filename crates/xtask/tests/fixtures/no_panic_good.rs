//! Known-good fixture for KDD001: the same shapes, panic-free. Linted as
//! crate `core`; must produce zero violations.

/// A typed error instead of a panic.
#[derive(Debug)]
pub struct ShortHeader;

pub fn decode_header(b: &[u8]) -> Result<(u64, u32), ShortHeader> {
    let lba = b
        .get(..8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(u64::from_le_bytes)
        .ok_or(ShortHeader)?;
    let slot = b
        .get(8..12)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
        .ok_or(ShortHeader)?;
    Ok((lba, slot))
}

// Mentions of unwrap() in comments must not fire, nor "panic!" in strings.
pub fn describe() -> &'static str {
    "this string says panic! and .unwrap() but is data, not code"
}

/// Doc example — doc tests run as tests, so `unwrap()` here is fine:
/// ```
/// let v: Option<u8> = Some(1);
/// assert_eq!(v.unwrap(), 1);
/// ```
pub fn documented() {}

pub fn waived(b: &[u8]) -> u64 {
    // kdd-lint: allow(no-panic) -- caller checked b.len() >= 8 one frame up
    u64::from_le_bytes(b[..8].try_into().unwrap())
}
