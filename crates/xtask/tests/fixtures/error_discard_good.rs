//! KDD009 pass fixture: handled, logged, waived, infallible, and
//! test-region discards are all clean.
pub struct Engine;

impl Engine {
    pub fn flush(&mut self) -> Result<u64, String> {
        Ok(0)
    }
    pub fn queue_depth(&self) -> usize {
        0
    }
}

pub fn drive() -> Result<(), String> {
    let mut engine = Engine::default();
    let flushed = engine.flush().map_err(|e| format!("flush: {e}"))?;
    let _ = engine.queue_depth();
    // kdd-lint: allow(error-discard) -- best-effort cleanup on the abort path
    std::fs::remove_dir_all("scratch").ok();
    if let Err(e) = std::fs::remove_file("scratch.lock") {
        eprintln!("cleanup failed: {e}");
    }
    let _ = flushed;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Engine;

    #[test]
    fn tests_may_discard() {
        let mut e = Engine;
        let _ = e.flush();
    }
}
