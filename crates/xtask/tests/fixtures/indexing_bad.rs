//! Known-bad fixture for KDD005 (indexing-slicing, pedantic). Linted as
//! crate `raid` with `--pedantic`.

pub fn first_word(page: &[u8], table: &[u64]) -> u64 {
    let hi = table[page.len() % 7]; // line 5: unchecked index
    let lo = page[0] as u64; // line 6: unchecked index
    (hi << 8) | lo
}
