//! Known-good fixture for KDD003: seeded and ordered alternatives. Linted
//! as crate `sim`; must produce zero violations.

use kdd_util::hash::{FastMap, FastSet};
use std::collections::BTreeMap;

pub fn census(lbas: &[u64]) -> usize {
    // Deterministic iteration: seeded hasher or ordered map.
    let mut seen: FastMap<u64, u64> = FastMap::default();
    for l in lbas {
        *seen.entry(*l).or_default() += 1;
    }
    let ordered: BTreeMap<u64, u64> = seen.iter().map(|(k, v)| (*k, *v)).collect();
    let distinct: FastSet<u64> = lbas.iter().copied().collect();
    ordered.len() + distinct.len()
}

/// An explicit hasher parameter is the sanctioned escape hatch.
pub type SeededMap<K, V> = std::collections::HashMap<K, V, kdd_util::hash::FastHasherBuilder>;

pub fn seeded_walk(seed: u64) -> u64 {
    let mut rng = kdd_util::rng::seeded_rng(seed);
    rng.next_u64()
}

pub fn waived_clock() -> u64 {
    // kdd-lint: allow(determinism) -- operator-facing progress line only
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}
