//! KDD002 (indirect) fail fixture: the public entry point never names a
//! raw write, but reaches one through two resolved call edges.
pub fn scrub_disk(a: &mut RaidArray) {
    wipe_rows(a);
}

fn wipe_rows(a: &mut RaidArray) {
    wipe_one(a);
}

fn wipe_one(a: &mut RaidArray) {
    a.write_page(0, &[0u8; 8]);
}
