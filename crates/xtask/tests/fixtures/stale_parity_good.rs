//! Known-good fixture for KDD004: the module pairs the delayed write with
//! repair logic. Linted as crate `cache`; zero violations expected.

pub fn fast_write_then_repair(raid: &mut kdd_raid::RaidArray, lba: u64, data: &[u8]) {
    let _ = raid.write_no_parity_update(lba, data);
}

pub fn cleaner_pass(raid: &mut kdd_raid::RaidArray) {
    let rows: Vec<u64> = raid.stale_rows().collect();
    let _ = raid.resync(Some(&rows));
}
