//! Known-bad fixture for KDD003 (determinism). Linted as crate `sim`.

use std::collections::HashMap; // line 3: default hasher import
use std::time::Instant; // line 4: wall clock

pub fn measure() -> u128 {
    let t0 = Instant::now(); // line 7: wall clock read
    t0.elapsed().as_nanos()
}

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng(); // line 12: ambient randomness
    rng.next_u64()
}

pub fn census(lbas: &[u64]) -> usize {
    let mut seen: HashMap<u64, u64> = HashMap::new(); // line 17: default hasher
    for l in lbas {
        *seen.entry(*l).or_default() += 1;
    }
    let extra = std::collections::HashSet::<u64>::new(); // line 21: default hasher
    seen.len() + extra.len()
}
