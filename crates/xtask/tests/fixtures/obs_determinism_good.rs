//! GOOD: observability code on simulated time with integer accumulation.
//! Linted as `crates/obs/src/registry.rs`.

pub fn observe(now_ns: u64, total_ns: &mut u64) {
    *total_ns = total_ns.saturating_add(now_ns);
}

pub fn mean_latency_ns(total_ns: u64, count: u64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    // Integer accumulation; the single conversion happens at export.
    total_ns as f64 / count as f64
}
