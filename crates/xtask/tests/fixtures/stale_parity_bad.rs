//! Known-bad fixture for KDD004 (stale-parity pairing). Linted as crate
//! `cache`: calls `write_no_parity_update` but never repairs or registers
//! the stale stripe.

pub fn fast_write(raid: &mut kdd_raid::RaidArray, lba: u64, data: &[u8]) {
    let _ = raid.write_no_parity_update(lba, data); // line 6: unpaired
}
