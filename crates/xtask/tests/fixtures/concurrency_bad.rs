//! KDD008 fail fixture: every `Send`-hostile construct, pinned by line.
use std::cell::{Cell, RefCell};
use std::rc::Rc;

pub static mut GLOBAL_EPOCH: u64 = 0;

thread_local! {
    static SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::new());
}

pub struct ShardState {
    peers: Rc<Vec<u32>>,
    dirty: Cell<bool>,
    scratch: *mut u8,
}

pub fn touch(s: &ShardState) -> bool {
    s.dirty.get() && !s.peers.is_empty() && !s.scratch.is_null()
}
