//! Known-good fixture for KDD005: bounds-proved access. Linted as crate
//! `raid` with `--pedantic`; zero violations expected.

pub fn first_word(page: &[u8], table: &[u64]) -> u64 {
    let hi = table.get(page.len() % 7).copied().unwrap_or(0);
    let lo = page.first().copied().unwrap_or(0) as u64;
    let arr = [1u8, 2, 3]; // an array literal is not an index expression
    let _ = arr;
    let v: Vec<u8> = vec![0; 4]; // vec! macro brackets are not indexing
    (hi << 8) | lo | v.len() as u64
}
