//! KDD009 fail fixture: discarded `Result`s from fallible I/O-path APIs,
//! resolved through the call graph (typed receiver) and the std list.
pub struct Engine;

impl Engine {
    pub fn flush(&mut self) -> Result<u64, String> {
        Ok(0)
    }
    pub fn sync(&mut self) -> Result<(), String> {
        Ok(())
    }
}

pub fn drive() {
    let mut engine = Engine::default();
    let _ = engine.flush();
    engine.sync().ok();
    std::fs::remove_dir_all("scratch").ok();
}
