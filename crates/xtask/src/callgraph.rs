//! Workspace call graph: `crate::module::fn` nodes and resolved call
//! edges, built from the per-file item extraction.
//!
//! Resolution is deliberately conservative — a call site resolves to a
//! node only when the evidence is unambiguous (a typed receiver, a
//! `Type::fn` path matched against an impl block, a unique name) — so the
//! rules built on top (indirect-layering KDD002, error-discard KDD009)
//! favour precision over recall. Anything unresolvable is simply not an
//! edge.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{CallSite, FileItems};

/// One function node in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Crate directory name (`core`, `blockdev`, …).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Function name.
    pub name: String,
    /// Impl-block type, if any.
    pub owner: Option<String>,
    /// Does the signature return a `Result`?
    pub returns_result: bool,
    /// Declared inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Local variable → type bindings visible in the body.
    pub locals: Vec<(String, String)>,
    /// Raw-write substrate token called directly in the body, if any.
    pub raw_direct: Option<String>,
}

/// Fully-qualified display path for diagnostics (`core::KddEngine::flush`).
impl FnNode {
    /// Render `crate::[Type::]name`.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(t) => format!("{}::{}::{}", self.krate, t, self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// One analysed file, ready for graph building.
pub struct AnalyzedFile {
    /// Crate directory name.
    pub krate: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// Extracted items.
    pub items: FileItems,
    /// Per-line test-region flags (0-based index = line - 1).
    pub in_test: Vec<bool>,
}

/// The assembled workspace (or single-file) call graph.
pub struct CallGraph {
    /// All function nodes.
    pub nodes: Vec<FnNode>,
    /// name → node indices.
    by_name: BTreeMap<String, Vec<usize>>,
    /// (owner, name) → node indices.
    by_owner: BTreeMap<(String, String), Vec<usize>>,
}

/// Raw mutation entry points of the device/array substrate (method names).
pub const RAW_WRITE_METHODS: &[&str] = &[
    "write_page",
    "trim_page",
    "write_no_parity_update",
    "parity_update_with_data",
    "parity_update_rmw",
    "resync",
    "rebuild",
];

/// Crates forming the sanctioned accounting boundary: raw writes reached
/// *through* these crates are engine-mediated and therefore legal.
pub const SANCTIONED_CRATES: &[&str] = &["core", "cache"];

/// `std::fs` / `std::io` calls that return `Result` and must not be
/// silently discarded on I/O paths (KDD009), even though they are not
/// workspace symbols.
pub const STD_FALLIBLE_FNS: &[&str] = &[
    "remove_dir_all",
    "remove_file",
    "create_dir",
    "create_dir_all",
    "rename",
    "copy",
    "read_to_string",
    "write_all",
    "sync_all",
    "sync_data",
    "set_len",
];

impl CallGraph {
    /// Build the graph from analysed files.
    pub fn build(files: &[AnalyzedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for f in files {
            for item in &f.items.fns {
                let in_test = item
                    .line
                    .checked_sub(1)
                    .and_then(|i| f.in_test.get(i))
                    .copied()
                    .unwrap_or(false);
                let raw_direct = item
                    .calls
                    .iter()
                    .find(|c| c.is_method && RAW_WRITE_METHODS.contains(&c.name.as_str()))
                    .map(|c| c.name.clone());
                nodes.push(FnNode {
                    krate: f.krate.clone(),
                    file: f.rel_path.clone(),
                    line: item.line,
                    end_line: item.end_line,
                    name: item.name.clone(),
                    owner: item.owner.clone(),
                    returns_result: item.returns_result,
                    in_test,
                    calls: item.calls.clone(),
                    locals: item.locals.clone(),
                    raw_direct,
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.clone()).or_default().push(i);
            if let Some(o) = &n.owner {
                by_owner.entry((o.clone(), n.name.clone())).or_default().push(i);
            }
        }
        CallGraph { nodes, by_name, by_owner }
    }

    /// Resolve a call site made from `from` to candidate node indices.
    ///
    /// Resolution order: typed receiver (`engine.flush()` with `engine`
    /// bound to `KddEngine`), `self` receiver (the enclosing impl type),
    /// `Type::fn` paths, then unique-name fallback. Returns an empty vec
    /// when the target is ambiguous or external.
    pub fn resolve(&self, from: usize, site: &CallSite) -> Vec<usize> {
        let node = match self.nodes.get(from) {
            Some(n) => n,
            None => return Vec::new(),
        };
        if site.is_method {
            // Receiver type, from locals or the enclosing impl.
            let recv_ty = site.receiver.as_deref().and_then(|r| {
                if r == "self" {
                    node.owner.clone()
                } else {
                    node.locals.iter().rev().find(|(v, _)| v == r).map(|(_, t)| t.clone())
                }
            });
            if let Some(ty) = recv_ty {
                if let Some(hits) = self.by_owner.get(&(ty, site.name.clone())) {
                    return hits.clone();
                }
                // A typed receiver whose type has no such method in the
                // workspace is external — do not fall through to the
                // name-based guess.
                return Vec::new();
            }
            // Untyped receiver: accept only a workspace-unique method name.
            return self.unique_by_name(&site.name);
        }
        // Path call `A::b::f(…)`: match the last path segment against impl
        // owners (types) first.
        if let Some(last) = site.path.last() {
            if let Some(hits) = self.by_owner.get(&(last.clone(), site.name.clone())) {
                return hits.clone();
            }
            // Module-qualified free fn (`helper::run(…)`): unique name only.
            return self.unique_by_name(&site.name);
        }
        // Bare call: same-crate free function by name, else unique.
        if let Some(hits) = self.by_name.get(&site.name) {
            let same_crate: Vec<usize> = hits
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].krate == node.krate && self.nodes[i].owner.is_none())
                .collect();
            if same_crate.len() == 1 {
                return same_crate;
            }
        }
        self.unique_by_name(&site.name)
    }

    /// Node indices iff exactly one workspace fn bears this name.
    fn unique_by_name(&self, name: &str) -> Vec<usize> {
        match self.by_name.get(name) {
            Some(hits) if hits.len() == 1 => hits.clone(),
            _ => Vec::new(),
        }
    }

    /// For every node: if it can reach a raw substrate write *without*
    /// passing through a sanctioned crate, the witness chain as
    /// `a::f -> b::g -> .write_page(…)`; else `None`.
    ///
    /// Propagation stops at [`SANCTIONED_CRATES`]: the engine and cache
    /// legitimately mutate the substrate, and calling *them* is the
    /// sanctioned path.
    pub fn raw_reachability(&self) -> Vec<Option<String>> {
        let mut reach: Vec<Option<String>> = self
            .nodes
            .iter()
            .map(|n| n.raw_direct.as_ref().map(|m| format!("{} -> .{m}(…)", n.qual_name())))
            .collect();
        // Fixed-point over call edges (graphs are small; O(V·E) is fine).
        loop {
            let mut changed = false;
            for i in 0..self.nodes.len() {
                if reach[i].is_some() || self.nodes[i].in_test {
                    continue;
                }
                for site in &self.nodes[i].calls {
                    for &j in &self.resolve(i, site) {
                        if SANCTIONED_CRATES.contains(&self.nodes[j].krate.as_str()) {
                            continue;
                        }
                        if let Some(chain) = &reach[j] {
                            reach[i] = Some(format!("{} -> {chain}", self.nodes[i].qual_name()));
                            changed = true;
                            break;
                        }
                    }
                    if reach[i].is_some() {
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        reach
    }

    /// Names of `Result`-returning fns defined in the given crates, minus
    /// names that *also* have a non-`Result` definition anywhere in the
    /// workspace (those are ambiguous without a typed receiver).
    pub fn fallible_names(&self, crates: &[&str]) -> BTreeSet<String> {
        let mut fallible = BTreeSet::new();
        let mut infallible = BTreeSet::new();
        for n in &self.nodes {
            if n.in_test {
                continue;
            }
            if n.returns_result && crates.contains(&n.krate.as_str()) {
                fallible.insert(n.name.clone());
            } else if !n.returns_result {
                infallible.insert(n.name.clone());
            }
        }
        fallible.retain(|n| !infallible.contains(n));
        fallible
    }

    /// Does the call site resolve to a `Result`-returning workspace fn in
    /// one of `crates`? Returns the resolved qualified name if so.
    pub fn resolves_fallible(
        &self,
        from: usize,
        site: &CallSite,
        crates: &[&str],
    ) -> Option<String> {
        let hits = self.resolve(from, site);
        if hits.is_empty() {
            return None;
        }
        // Every candidate must be fallible — mixed overload sets don't count.
        if hits.iter().all(|&i| {
            self.nodes[i].returns_result && crates.contains(&self.nodes[i].krate.as_str())
        }) {
            hits.first().map(|&i| self.nodes[i].qual_name())
        } else {
            None
        }
    }

    /// Index lookup for a node by (file, fn name, line).
    pub fn node_at(&self, file: &str, line: usize) -> Option<usize> {
        self.nodes.iter().position(|n| n.file == file && n.line == line)
    }

    /// All node indices for a file.
    pub fn nodes_in_file<'a>(&'a self, file: &'a str) -> impl Iterator<Item = usize> + 'a {
        (0..self.nodes.len()).filter(move |&i| self.nodes[i].file == file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lex::lex;

    fn analyse(krate: &str, path: &str, src: &str) -> AnalyzedFile {
        let lx = lex(src);
        let items = extract(&lx);
        AnalyzedFile {
            krate: krate.into(),
            rel_path: path.into(),
            items,
            in_test: vec![false; lx.n_lines()],
        }
    }

    #[test]
    fn typed_receiver_resolves_method() {
        let core = analyse(
            "core",
            "crates/core/src/engine.rs",
            "pub struct KddEngine;\n\
             impl KddEngine {\n\
                 pub fn flush(&mut self) -> Result<u64, String> { Ok(0) }\n\
             }\n",
        );
        let cli = analyse(
            "cli",
            "crates/cli/src/cmd.rs",
            "pub fn run() {\n\
                 let mut engine = KddEngine::new(1);\n\
                 let _ = engine.flush();\n\
             }\n",
        );
        let g = CallGraph::build(&[core, cli]);
        let run = g.node_at("crates/cli/src/cmd.rs", 1).unwrap();
        let site = g.nodes[run].calls.iter().find(|c| c.name == "flush").unwrap().clone();
        let q = g.resolves_fallible(run, &site, &["core"]);
        assert_eq!(q.as_deref(), Some("core::KddEngine::flush"));
    }

    #[test]
    fn mixed_overloads_do_not_resolve_fallible() {
        let a = analyse(
            "core",
            "a.rs",
            "pub struct A; impl A { pub fn flush(&self) -> Result<(), ()> { Ok(()) } }",
        );
        let b =
            analyse("cache", "b.rs", "pub struct B; impl B { pub fn flush(&self) -> u32 { 0 } }");
        let c = analyse("cli", "c.rs", "pub fn go(x: &B) { x.flush(); }");
        let g = CallGraph::build(&[a, b, c]);
        let go = g.node_at("c.rs", 1).unwrap();
        let site = g.nodes[go].calls[0].clone();
        // Typed receiver B → resolves to the infallible B::flush.
        assert_eq!(g.resolves_fallible(go, &site, &["core", "cache"]), None);
    }

    #[test]
    fn raw_reachability_propagates_and_stops_at_engine() {
        let util =
            analyse("util", "u.rs", "pub fn wipe(a: &mut RaidArray) { a.write_page(0, &[]); }");
        let core = analyse(
            "core",
            "e.rs",
            "pub struct KddEngine; impl KddEngine {\n\
               pub fn write(&mut self) { self.array.write_page(0, &[]); }\n\
             }",
        );
        let sim = analyse(
            "sim",
            "s.rs",
            "pub fn bad(a: &mut RaidArray) { wipe(a); }\n\
             pub fn good(e: &mut KddEngine) { e.write(); }\n",
        );
        let g = CallGraph::build(&[util, core, sim]);
        let reach = g.raw_reachability();
        let bad = g.node_at("s.rs", 1).unwrap();
        let good = g.node_at("s.rs", 2).unwrap();
        assert!(reach[bad].is_some(), "sim::bad reaches write_page via util::wipe");
        assert!(reach[bad].as_deref().unwrap().contains("util::wipe"));
        // `good` calls the engine — sanctioned, not raw-reachable.
        assert!(reach[good].is_none(), "engine-mediated path is sanctioned");
    }
}
