//! Workspace automation entry point: `cargo run -p xtask -- lint`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{lint_workspace, Options};

const USAGE: &str = "\
xtask — KDD workspace automation

USAGE:
    cargo run -p xtask -- lint [--root <path>] [--pedantic] [--quiet]
                               [--json | --github]

COMMANDS:
    lint    Run kdd-lint over every crate's src/ tree. Exits 1 on any
            violation; honoured waivers (with written reasons) are listed
            but do not fail the run.

OPTIONS:
    --root <path>   Workspace root (default: nearest ancestor with Cargo.toml)
    --pedantic      Also run KDD005 (unchecked slice indexing)
    --quiet         Suppress the honoured-waiver listing
    --json          Emit the kdd-lint/v1 machine-readable report on stdout
    --github        Emit findings in the problem-matcher format CI turns
                    into GitHub annotations (kdd-lint[RULE] file:line: msg)
";

/// Output mode for the findings listing.
#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn find_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut opts = Options::default();
    let mut root = None;
    let mut quiet = false;
    let mut format = Format::Text;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pedantic" => opts.pedantic = true,
            "--quiet" => quiet = true,
            "--json" => format = Format::Json,
            "--github" => format = Format::Github,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = find_root(root) else {
        eprintln!("could not locate the workspace root (run from inside the repo)");
        return ExitCode::from(2);
    };

    let report = match lint_workspace(&root, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kdd-lint: I/O error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if format == Format::Json {
        // Machine-readable mode: the report alone on stdout, same exit code.
        println!("{}", report.render_json());
        return if report.violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if !quiet && !report.waivers.is_empty() {
        eprintln!("kdd-lint: {} waiver(s) in effect:", report.waivers.len());
        for w in &report.waivers {
            eprintln!("  {}:{}: {} waived -- {}", w.file, w.line, w.rule.code(), w.reason);
        }
    }

    if report.violations.is_empty() {
        eprintln!("kdd-lint: clean ({} waivers honoured)", report.waivers.len());
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            match format {
                // One line per finding in the shape the committed
                // problem matcher (.github/kdd-lint-problem-matcher.json)
                // parses into file-anchored GitHub annotations.
                Format::Github => {
                    println!("kdd-lint[{}] {}:{}: {}", v.rule.code(), v.file, v.line, v.message)
                }
                _ => println!("{v}"),
            }
        }
        eprintln!("kdd-lint: {} violation(s)", report.violations.len());
        ExitCode::FAILURE
    }
}
