//! `kdd-lint`: a dependency-free static-analysis pass over the KDD workspace.
//!
//! The compiler cannot see the invariants KDD's correctness story rests on:
//! stale parity left by `write_no_parity_update` must be registered for the
//! cleaner, seeded fault replay is only sound if every code path is
//! deterministic, and the I/O path must degrade through typed errors rather
//! than panicking mid-stripe. This crate enforces those rules mechanically
//! on every PR (`cargo run -p xtask -- lint`).
//!
//! ## Rules
//!
//! | ID | Name | What it forbids |
//! |---|---|---|
//! | `KDD000` | `waiver` | malformed waiver comments (missing `-- <reason>`) |
//! | `KDD001` | `no-panic` | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code of the I/O-path crates |
//! | `KDD002` | `layering` | raw device/array writes (`write_page`, `parity_update_*`, …) from `sim`, `bench`, `cli`, or `trace` |
//! | `KDD003` | `determinism` | wall-clock time, `thread_rng`, and default-hasher `HashMap`/`HashSet` outside `bench`/`cli` |
//! | `KDD004` | `stale-parity` | `write_no_parity_update` call sites in modules that never repair or register stale parity |
//! | `KDD005` | `indexing-slicing` | unchecked slice indexing in the I/O-path crates (pedantic, `--pedantic` only) |
//! | `KDD006` | `hot-alloc` | per-op allocations (`vec![0u8; …]`, `.to_vec()`, `.clone()`) in the hot-path files — use the `PagePool` |
//! | `KDD007` | `obs-determinism` | wall-clock time and float accumulation in `crates/obs` or any file that registers metrics — snapshots must be byte-identical across seeded replays |
//!
//! ## Waivers
//!
//! A violation is silenced by an inline waiver **carrying a written reason**:
//!
//! ```text
//! // kdd-lint: allow(no-panic) -- length checked two lines above
//! ```
//!
//! An equivalent shorthand names the rule by ID with the reason after a
//! colon (the conventional spelling for `KDD006`):
//!
//! ```text
//! // kdd-waiver(KDD006): page is returned to the caller by value
//! ```
//!
//! The waiver applies to code on the same line, or — when the comment stands
//! alone — to the next line with code on it. A waiver without ` -- <reason>`
//! (or, for the shorthand, without text after the colon) is itself a
//! violation (`KDD000`).
//!
//! The engine is line/token-aware, not AST-aware: comments and string
//! literals are scrubbed before matching, `#[cfg(test)]` / `#[test]` regions
//! are excluded by brace tracking, and doc-test examples never trigger rules.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must never panic (rule `KDD001`, `KDD005`).
pub const PANIC_FREE_CRATES: &[&str] = &["blockdev", "raid", "core", "cache", "delta", "obs"];

/// Crates that must not issue raw device/array writes (rule `KDD002`).
pub const LAYERING_RESTRICTED_CRATES: &[&str] = &["sim", "bench", "cli", "trace"];

/// Crates allowed to read wall-clock time and use default hashers (`KDD003`).
pub const NONDETERMINISM_ALLOWED_CRATES: &[&str] = &["bench", "cli", "xtask"];

/// Raw mutation entry points of the device/array substrate. Only the cache,
/// core engine, and RAID internals may call these; everything above goes
/// through `KddEngine`/`KddPolicy` so effects are accounted and crash-ordered.
const RAW_WRITE_TOKENS: &[&str] = &[
    ".write_page(",
    ".trim_page(",
    ".write_no_parity_update(",
    ".parity_update_with_data(",
    ".parity_update_rmw(",
    ".resync(",
    ".rebuild(",
];

/// Tokens that panic at runtime (rule `KDD001`).
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Wall-clock / ambient-randomness tokens (rule `KDD003`).
const NONDETERMINISM_TOKENS: &[&str] =
    &["Instant::now", "SystemTime", "std::time::", "thread_rng", "rand::random"];

/// Files whose per-op code paths are hot enough that page-sized allocations
/// are a measured throughput cost (rule `KDD006`): these must recycle
/// buffers through `kdd_util::PagePool` or carry a written waiver.
pub const HOT_ALLOC_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/raid/src/array.rs",
    "crates/cache/src/setassoc.rs",
    "crates/delta/src/xor.rs",
    "crates/delta/src/codec.rs",
    "crates/blockdev/src/store.rs",
];

/// Allocation tokens rule `KDD006` flags in hot-path files.
const HOT_ALLOC_TOKENS: &[&str] = &["vec![0u8;", ".to_vec()", ".clone()"];

/// Metric-registration calls: a file containing one of these feeds the
/// observability registry and falls under rule `KDD007` wherever it lives.
const OBS_REGISTER_TOKENS: &[&str] = &[".register_counter(", ".register_gauge(", ".register_hist"];

/// Wall-clock tokens rule `KDD007` forbids in observability code. Snapshots
/// are keyed on `SimTime`; an ambient timestamp would differ across replays.
const OBS_WALLCLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime", "std::time::"];

/// Float-accumulation tokens rule `KDD007` flags in observability code:
/// summation order and rounding drift make accumulated floats unstable
/// across refactors, so metrics accumulate in integers (`u64` counters,
/// milli-units) and convert to `f64` only at export.
const OBS_FLOAT_HAZARD_TOKENS: &[&str] =
    &[".sum::<f32>()", ".sum::<f64>()", ".fold(0.0", ".fold(0f32", ".fold(0f64"];

/// Tokens that prove a module repairs or registers stale parity (`KDD004`).
const STALE_REPAIR_TOKENS: &[&str] = &[
    ".parity_update_with_data(",
    ".parity_update_rmw(",
    ".resync(",
    ".stale_rows(",
    ".is_stale(",
    "mark_stale",
];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `KDD000` — malformed waiver comment.
    Waiver,
    /// `KDD001` — panicking construct on an I/O path.
    NoPanic,
    /// `KDD002` — raw device write from a restricted layer.
    Layering,
    /// `KDD003` — nondeterministic construct outside `bench`/`cli`.
    Determinism,
    /// `KDD004` — unpaired `write_no_parity_update` call site.
    StaleParity,
    /// `KDD005` — unchecked slice indexing (pedantic).
    IndexingSlicing,
    /// `KDD006` — per-op allocation on a hot-path file.
    HotAlloc,
    /// `KDD007` — nondeterministic construct in observability code.
    ObsDeterminism,
}

impl Rule {
    /// Stable rule ID, e.g. `KDD001`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Waiver => "KDD000",
            Rule::NoPanic => "KDD001",
            Rule::Layering => "KDD002",
            Rule::Determinism => "KDD003",
            Rule::StaleParity => "KDD004",
            Rule::IndexingSlicing => "KDD005",
            Rule::HotAlloc => "KDD006",
            Rule::ObsDeterminism => "KDD007",
        }
    }

    /// Human name, as accepted inside `kdd-lint: allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Waiver => "waiver",
            Rule::NoPanic => "no-panic",
            Rule::Layering => "layering",
            Rule::Determinism => "determinism",
            Rule::StaleParity => "stale-parity",
            Rule::IndexingSlicing => "indexing-slicing",
            Rule::HotAlloc => "hot-alloc",
            Rule::ObsDeterminism => "obs-determinism",
        }
    }

    /// Parse a rule from its name or its `KDDnnn` code.
    pub fn parse(s: &str) -> Option<Rule> {
        let all = [
            Rule::Waiver,
            Rule::NoPanic,
            Rule::Layering,
            Rule::Determinism,
            Rule::StaleParity,
            Rule::IndexingSlicing,
            Rule::HotAlloc,
            Rule::ObsDeterminism,
        ];
        all.into_iter().find(|r| r.name() == s || r.code() == s || r.code().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code(), self.name())
    }
}

/// One finding: a rule violated at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found and why it is forbidden.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// A waiver that was honoured (reported for transparency, not a failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverUse {
    /// The waived rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the waiver silenced.
    pub line: usize,
    /// The written reason after `--`.
    pub reason: String,
}

/// Linter options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Also run the pedantic `KDD005` indexing rule (the workspace relies on
    /// `clippy::indexing_slicing` with per-file allows for enforcement; the
    /// xtask rule exists for fixtures and ad-hoc audits).
    pub pedantic: bool,
}

/// Result of linting: violations plus the waivers that were honoured.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule violations (non-empty report fails CI).
    pub violations: Vec<Violation>,
    /// Waivers with written reasons that silenced a would-be violation.
    pub waivers: Vec<WaiverUse>,
}

// ---------------------------------------------------------------------------
// Source scrubbing
// ---------------------------------------------------------------------------

/// A source line after scrubbing, with the metadata rules need.
#[derive(Debug)]
struct Line {
    /// Code with comments and string/char literals blanked to spaces.
    code: String,
    /// Comment text only (code and literals blanked): waivers live here, so
    /// a string literal mentioning the waiver syntax can never enact one.
    comment: String,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    in_test: bool,
}

/// Scrub `src` into two parallel streams of identical line structure:
/// `.0` = code with comments and string/char literals blanked to spaces,
/// `.1` = comments only, with everything else blanked.
fn scrub(src: &str) -> (String, String) {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut com = String::with_capacity(src.len());
    // Emit one position to both streams: `c` goes to whichever stream
    // `to_code`/`to_com` select; the other gets a space (newlines go to both).
    let mut put = |c: char, to_code: bool, to_com: bool| {
        if c == '\n' {
            code.push('\n');
            com.push('\n');
        } else {
            code.push(if to_code { c } else { ' ' });
            com.push(if to_com { c } else { ' ' });
        }
    };
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    put(c, false, true);
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    put(c, false, true);
                    put('*', false, true);
                    i += 1; // consume the `*` so `/*/` does not self-close
                }
                '"' => {
                    st = St::Str;
                    put(c, false, false);
                }
                'r' if matches!(next, Some('"') | Some('#'))
                    && !prev_is_ident(&b, i)
                    && raw_str_hashes(&b, i + 1).is_some() =>
                {
                    let h = raw_str_hashes(&b, i + 1).unwrap_or(0);
                    st = St::RawStr(h);
                    for _ in 0..(h + 2) {
                        put(' ', false, false);
                    }
                    i += h + 1; // consume r##...#"
                }
                '\'' if is_char_literal(&b, i) => {
                    st = St::Char;
                    put(c, false, false);
                }
                _ => put(c, true, false),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                }
                put(c, false, true);
            }
            St::BlockComment(depth) => {
                put(c, false, true);
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    put('*', false, true);
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    put('/', false, true);
                    i += 1;
                    st = if depth == 1 { St::Code } else { St::BlockComment(depth - 1) };
                }
            }
            St::Str => {
                put(c, false, false);
                if c == '\\' {
                    put(next.unwrap_or(' '), false, false);
                    i += 1;
                } else if c == '"' {
                    st = St::Code;
                }
            }
            St::RawStr(h) => {
                put(c, false, false);
                if c == '"' && raw_str_closes(&b, i, h) {
                    for _ in 0..h {
                        put(' ', false, false);
                    }
                    i += h;
                    st = St::Code;
                }
            }
            St::Char => {
                put(c, false, false);
                if c == '\\' {
                    put(' ', false, false);
                    i += 1;
                } else if c == '\'' {
                    st = St::Code;
                }
            }
        }
        i += 1;
    }
    (code, com)
}

/// Is `b[i]` preceded by an identifier char (so `r` is part of a name)?
fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && b.get(i - 1).is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// If `b[i..]` opens a raw string (`"` or `#...#"`), how many `#`s?
fn raw_str_hashes(b: &[char], i: usize) -> Option<usize> {
    let mut h = 0;
    let mut j = i;
    while b.get(j) == Some(&'#') {
        h += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some(h)
}

/// Does the `"` at `b[i]` close a raw string with `h` trailing `#`s?
fn raw_str_closes(b: &[char], i: usize, h: usize) -> bool {
    (1..=h).all(|k| b.get(i + k) == Some(&'#'))
}

/// Distinguish a char literal from a lifetime at `b[i] == '\''`.
fn is_char_literal(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(_) => b.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Mark lines inside `#[cfg(test)]` / `#[test]` / `#[bench]` regions.
///
/// Brace-tracked on scrubbed text: the region runs from the attribute to the
/// close of the first brace block (or the first `;` for brace-less items).
fn mark_test_regions(scrubbed_lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; scrubbed_lines.len()];
    let mut i = 0;
    while i < scrubbed_lines.len() {
        let t = scrubbed_lines[i].trim();
        let is_test_attr = t.contains("#[cfg(test)]")
            || t.contains("#[test]")
            || t.contains("#[bench]")
            || t.contains("#[should_panic");
        if !is_test_attr {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < scrubbed_lines.len() {
            in_test[j] = true;
            let mut done = false;
            for c in scrubbed_lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            done = true;
                        }
                    }
                    ';' if !opened && depth == 0 && j > i => done = true,
                    _ => {}
                }
            }
            if done || (opened && depth <= 0) {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// A parsed `kdd-lint: allow(rule) -- reason` comment.
#[derive(Debug)]
struct Waiver {
    rule: Option<Rule>,
    reason: Option<String>,
    /// The raw text inside `allow(...)` (for diagnostics).
    rule_text: String,
}

/// Extract every waiver comment on a raw line.
fn parse_waivers(raw: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("kdd-lint:") {
        let after = &rest[pos + "kdd-lint:".len()..];
        let after = after.trim_start();
        if let Some(args) = after.strip_prefix("allow(") {
            if let Some(close) = args.find(')') {
                let rule_text = args[..close].trim().to_string();
                let tail = &args[close + 1..];
                let reason = tail.find("--").map(|p| tail[p + 2..].trim().to_string());
                out.push(Waiver {
                    rule: Rule::parse(&rule_text),
                    reason: reason.filter(|r| !r.is_empty()),
                    rule_text,
                });
                rest = &args[close + 1..];
                continue;
            }
        }
        out.push(Waiver { rule: None, reason: None, rule_text: String::new() });
        rest = after;
    }
    // Shorthand form: `kdd-waiver(KDD006): reason`.
    let mut rest = raw;
    while let Some(pos) = rest.find("kdd-waiver(") {
        let args = &rest[pos + "kdd-waiver(".len()..];
        let Some(close) = args.find(')') else {
            out.push(Waiver { rule: None, reason: None, rule_text: String::new() });
            break;
        };
        let rule_text = args[..close].trim().to_string();
        let tail = &args[close + 1..];
        let reason = tail.strip_prefix(':').map(|r| r.trim().to_string()).filter(|r| !r.is_empty());
        out.push(Waiver { rule: Rule::parse(&rule_text), reason, rule_text });
        rest = tail;
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// First match of `pat` in `code` at an identifier boundary (the char before
/// the match must not be part of an identifier when `pat` starts with one).
fn find_ident_token(code: &str, pat: &str) -> Option<usize> {
    let starts_ident = pat.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(rel) = code.get(from..).and_then(|s| s.find(pat)) {
        let pos = from + rel;
        if !starts_ident {
            return Some(pos);
        }
        let boundary_ok = pos == 0
            || code[..pos].chars().next_back().is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if boundary_ok {
            return Some(pos);
        }
        from = pos + pat.len();
    }
    None
}

/// Does the line use `HashMap`/`HashSet` with the *default* hasher? Lines
/// naming an explicit `BuildHasher`/`FastHasherBuilder` third parameter are
/// the sanctioned way to use them.
fn default_hasher_use(code: &str) -> Option<&'static str> {
    ["HashMap", "HashSet"].into_iter().find(|ident| {
        find_ident_token(code, ident).is_some()
            && !code.contains("HasherBuilder")
            && !code.contains("BuildHasher")
            && !code.contains("FastMap")
            && !code.contains("FastSet")
    })
}

/// Pedantic: a `[` directly after an identifier, `)`, or `]` is an index
/// expression that can panic. Attribute lines are skipped.
fn has_index_expr(code: &str) -> bool {
    if code.trim_start().starts_with('#') {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    chars.windows(2).any(|w| {
        // kdd-lint: allow(indexing-slicing) -- windows(2) guarantees len 2
        let (a, b) = (w[0], w[1]);
        b == '[' && (a.is_alphanumeric() || a == '_' || a == ')' || a == ']')
    })
}

// ---------------------------------------------------------------------------
// Per-file linting
// ---------------------------------------------------------------------------

/// Lint one source file given its crate name and workspace-relative path.
///
/// This is the whole engine; [`lint_workspace`] just walks directories and
/// feeds files through here. Exposed so fixture tests can drive it directly.
pub fn lint_source(crate_name: &str, rel_path: &str, src: &str, opts: Options) -> Report {
    let (code_text, comment_text) = scrub(src);
    let scrubbed_lines: Vec<&str> = code_text.lines().collect();
    let comment_lines: Vec<&str> = comment_text.lines().collect();
    let in_test = mark_test_regions(&scrubbed_lines);
    let lines: Vec<Line> = (0..src.lines().count())
        .map(|i| Line {
            code: scrubbed_lines.get(i).copied().unwrap_or("").to_string(),
            comment: comment_lines.get(i).copied().unwrap_or("").to_string(),
            in_test: in_test.get(i).copied().unwrap_or(false),
        })
        .collect();

    let mut report = Report::default();

    // Waiver table: line index -> waived rules (with reasons). A waiver on a
    // comment-only line forwards to the next line that has code.
    let mut waived: Vec<Vec<(Rule, String)>> = vec![Vec::new(); lines.len()];
    for (i, line) in lines.iter().enumerate() {
        for w in parse_waivers(&line.comment) {
            let Some(rule) = w.rule else {
                report.violations.push(Violation {
                    rule: Rule::Waiver,
                    file: rel_path.to_string(),
                    line: i + 1,
                    message: format!(
                        "malformed waiver: `allow({})` names no known rule \
                         (use a rule name like `no-panic` or an ID like `KDD001`)",
                        w.rule_text
                    ),
                });
                continue;
            };
            let Some(reason) = w.reason else {
                report.violations.push(Violation {
                    rule: Rule::Waiver,
                    file: rel_path.to_string(),
                    line: i + 1,
                    message: format!(
                        "waiver for {} carries no reason: write \
                         `kdd-lint: allow({}) -- <why this is sound>`",
                        rule.code(),
                        rule.name()
                    ),
                });
                continue;
            };
            // Same line if it has code, else the next code-bearing line.
            let mut target = i;
            if line.code.trim().is_empty() {
                for (j, l) in lines.iter().enumerate().skip(i + 1) {
                    if !l.code.trim().is_empty() {
                        target = j;
                        break;
                    }
                }
            }
            if let Some(slot) = waived.get_mut(target) {
                slot.push((rule, reason));
            }
        }
    }

    let emit = |report: &mut Report, rule: Rule, line_idx: usize, message: String| {
        if let Some((_, reason)) =
            waived.get(line_idx).and_then(|ws| ws.iter().find(|(r, _)| *r == rule))
        {
            report.waivers.push(WaiverUse {
                rule,
                file: rel_path.to_string(),
                line: line_idx + 1,
                reason: reason.clone(),
            });
        } else {
            report.violations.push(Violation {
                rule,
                file: rel_path.to_string(),
                line: line_idx + 1,
                message,
            });
        }
    };

    let panic_free = PANIC_FREE_CRATES.contains(&crate_name);
    let layering_restricted = LAYERING_RESTRICTED_CRATES.contains(&crate_name);
    let determinism_checked = !NONDETERMINISM_ALLOWED_CRATES.contains(&crate_name);
    let hot_alloc_checked = HOT_ALLOC_FILES.iter().any(|f| rel_path.ends_with(f));
    // KDD007 governs the obs crate itself plus any file that registers
    // metrics, wherever it lives — even in crates otherwise allowed to
    // read ambient state (`bench`, `cli`).
    let obs_checked = rel_path.contains("crates/obs/")
        || lines
            .iter()
            .any(|l| !l.in_test && OBS_REGISTER_TOKENS.iter().any(|t| l.code.contains(t)));

    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        if panic_free {
            for tok in PANIC_TOKENS {
                if find_ident_token(&line.code, tok).is_some() {
                    emit(
                        &mut report,
                        Rule::NoPanic,
                        i,
                        format!(
                            "`{}` in non-test code of panic-free crate `{}`: \
                             plumb a typed error instead",
                            tok.trim_matches(|c| c == '.' || c == '('),
                            crate_name
                        ),
                    );
                }
            }
            if opts.pedantic && has_index_expr(&line.code) {
                emit(
                    &mut report,
                    Rule::IndexingSlicing,
                    i,
                    format!(
                        "unchecked slice index in panic-free crate `{crate_name}`: \
                         use `.get()`/`.get_mut()` or prove bounds with a slice pattern"
                    ),
                );
            }
        }
        if layering_restricted {
            for tok in RAW_WRITE_TOKENS {
                if line.code.contains(tok) {
                    emit(
                        &mut report,
                        Rule::Layering,
                        i,
                        format!(
                            "raw device/array write `{}` from layer `{}`: \
                             only cache/core/raid internals may mutate the substrate \
                             (go through `KddEngine`/`KddPolicy`)",
                            tok.trim_matches(|c| c == '.' || c == '('),
                            crate_name
                        ),
                    );
                }
            }
        }
        if hot_alloc_checked {
            for tok in HOT_ALLOC_TOKENS {
                if line.code.contains(tok) {
                    emit(
                        &mut report,
                        Rule::HotAlloc,
                        i,
                        format!(
                            "`{tok}` allocates per operation on a hot-path file: \
                             recycle a buffer through `kdd_util::PagePool` or waive \
                             with `// kdd-waiver(KDD006): <why this alloc is sound>`"
                        ),
                    );
                }
            }
        }
        if determinism_checked {
            for tok in NONDETERMINISM_TOKENS {
                if find_ident_token(&line.code, tok).is_some() {
                    emit(
                        &mut report,
                        Rule::Determinism,
                        i,
                        format!(
                            "`{tok}` breaks seeded replay: use `util::rng::seeded_rng` \
                             / `SimTime` instead (only `bench`/`cli` may read ambient state)"
                        ),
                    );
                    break; // one wall-clock finding per line is enough
                }
            }
            if let Some(ident) = default_hasher_use(&line.code) {
                emit(
                    &mut report,
                    Rule::Determinism,
                    i,
                    format!(
                        "`{ident}` with the default `RandomState` hasher iterates in a \
                         different order every run: use `BTreeMap`/`BTreeSet` or \
                         `util::hash::FastMap`/`FastSet`"
                    ),
                );
            }
        }
        if obs_checked {
            for tok in OBS_WALLCLOCK_TOKENS {
                if find_ident_token(&line.code, tok).is_some() {
                    emit(
                        &mut report,
                        Rule::ObsDeterminism,
                        i,
                        format!(
                            "`{tok}` in observability code: snapshots are keyed on \
                             `SimTime` and must be byte-identical across seeded \
                             replays — never stamp events with wall-clock time"
                        ),
                    );
                    break; // one wall-clock finding per line is enough
                }
            }
            for tok in OBS_FLOAT_HAZARD_TOKENS {
                if line.code.contains(tok) {
                    emit(
                        &mut report,
                        Rule::ObsDeterminism,
                        i,
                        format!(
                            "`{tok}` accumulates floats in observability code: \
                             rounding drift makes metrics unstable — accumulate in \
                             integer units and convert to `f64` only at export"
                        ),
                    );
                }
            }
        }
    }

    // KDD004: every module calling `write_no_parity_update` must also repair
    // or register stale parity (the defining crate `raid` is exempt).
    if crate_name != "raid" {
        let repairs = lines
            .iter()
            .any(|l| !l.in_test && STALE_REPAIR_TOKENS.iter().any(|t| l.code.contains(t)));
        if !repairs {
            for (i, line) in lines.iter().enumerate() {
                if !line.in_test && line.code.contains(".write_no_parity_update(") {
                    emit(
                        &mut report,
                        Rule::StaleParity,
                        i,
                        "`write_no_parity_update` leaves stale parity, but this module \
                         never calls `parity_update_*`/`resync` or registers the stale \
                         stripe: pair it with repair logic or waive with a reason"
                            .to_string(),
                    );
                }
            }
        }
    }

    report
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Recursively collect `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every crate's `src/` tree under `<root>/crates/`.
///
/// `tests/`, `benches/`, `examples/`, and `vendor/` are out of scope: rules
/// govern the shipped I/O paths, and test code is free to `unwrap`.
pub fn lint_workspace(root: &Path, opts: Options) -> std::io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if crate_name == "xtask" {
            // The linter's own source is full of rule tokens and waiver
            // syntax *as data*; its behaviour is pinned by the fixture
            // corpus under crates/xtask/tests/ instead of self-linting.
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let content = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            let sub = lint_source(&crate_name, &rel, &content, opts);
            report.violations.extend(sub.violations);
            report.waivers.extend(sub.waivers);
        }
    }
    report
        .violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}
