//! `kdd-lint`: a dependency-free static-analysis engine over the KDD
//! workspace.
//!
//! The compiler cannot see the invariants KDD's correctness story rests on:
//! stale parity left by `write_no_parity_update` must be registered for the
//! cleaner, seeded fault replay is only sound if every code path is
//! deterministic, endurance counters must survive years of compressed wear
//! without overflowing, and the I/O path must degrade through typed errors
//! rather than panicking mid-stripe. This crate enforces those rules
//! mechanically on every PR (`cargo run -p xtask -- lint`).
//!
//! ## Architecture
//!
//! The engine is a symbol-aware, multi-pass pipeline (still free of
//! third-party dependencies):
//!
//! 1. **Lexer** ([`lex`]) — one real token stream per file; comments,
//!    strings, raw strings, char literals, and lifetimes are disambiguated
//!    exactly once and shared by every rule.
//! 2. **Item extraction** ([`items`]) — functions (with impl owner and
//!    `Result`-ness), structs, impl blocks, `use` aliases, call sites, and
//!    local `let`-binding types per file.
//! 3. **Call graph** ([`callgraph`]) — workspace-wide `crate::Type::fn`
//!    nodes with conservatively-resolved call edges, raw-write
//!    reachability, and the fallible-API set.
//! 4. **Rules** — line rules run over the rendered code/comment views;
//!    symbol rules (`KDD002` indirect, `KDD009`) run over the graph;
//!    `KDD011` cross-checks the token stream against the committed
//!    `kdd-obs/v2` snapshot.
//!
//! ## Rules
//!
//! | ID | Name | What it forbids |
//! |---|---|---|
//! | `KDD000` | `waiver` | malformed waiver comments (missing `-- <reason>`) |
//! | `KDD001` | `no-panic` | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code of the I/O-path crates |
//! | `KDD002` | `layering` | raw device/array writes from `sim`, `bench`, `cli`, or `trace` — direct tokens *and* indirect call chains that reach the substrate without passing through the engine |
//! | `KDD003` | `determinism` | wall-clock time, `thread_rng`, and default-hasher `HashMap`/`HashSet` outside `bench`/`cli` |
//! | `KDD004` | `stale-parity` | `write_no_parity_update` call sites in modules that never repair or register stale parity |
//! | `KDD005` | `indexing-slicing` | unchecked slice indexing in the I/O-path crates without an audited `#![allow(clippy::indexing_slicing)]` header (pedantic, `--pedantic` only) |
//! | `KDD006` | `hot-alloc` | per-op allocations (`vec![0u8; …]`, `.to_vec()`, `.clone()`) in the hot-path files — use the `PagePool` |
//! | `KDD007` | `obs-determinism` | wall-clock time and float accumulation in `crates/obs` or any file that registers metrics |
//! | `KDD008` | `concurrency-readiness` | `Rc<…>`, `RefCell`, `Cell<…>`, `static mut`, `thread_local!`, and raw `*mut` state in the crates the sharded engine will run N-way |
//! | `KDD009` | `error-discard` | `let _ = …;` and `….ok();` applied to `Result`-returning I/O-path calls (resolved through the call graph) |
//! | `KDD010` | `counter-arithmetic` | narrowing `as` casts and unchecked `+`/`+=` on endurance counters (erase counts, WAF accumulators, stale-row counters) |
//! | `KDD011` | `obs-schema` | drift between metric/span names registered in code and the committed `OBS_engine.json` snapshot |
//!
//! ## Waivers
//!
//! A violation is silenced by an inline waiver **carrying a written reason**:
//!
//! ```text
//! // kdd-lint: allow(no-panic) -- length checked two lines above
//! ```
//!
//! An equivalent shorthand names the rule by ID with the reason after a
//! colon (the conventional spelling for `KDD006`):
//!
//! ```text
//! // kdd-waiver(KDD006): page is returned to the caller by value
//! ```
//!
//! A file-scope waiver covers every violation of one rule in the file:
//!
//! ```text
//! // kdd-lint: allow-file(counter-arithmetic) -- counters here are test doubles
//! ```
//!
//! For `KDD005` only, an audited `#![allow(clippy::indexing_slicing)]`
//! header — the workspace's established spelling, with the audit note in
//! the comment directly above it — acts as a file-scope waiver.
//!
//! The inline waiver applies to code on the same line, or — when the
//! comment stands alone — to the next line with code on it. A waiver
//! without ` -- <reason>` (or, for the shorthand, without text after the
//! colon) is itself a violation (`KDD000`).
//!
//! Comments and string literals are scrubbed before matching, `#[cfg(test)]`
//! / `#[test]` regions are excluded by brace tracking, and doc-test
//! examples never trigger rules.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

pub mod callgraph;
pub mod items;
pub mod lex;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use callgraph::{AnalyzedFile, CallGraph, SANCTIONED_CRATES, STD_FALLIBLE_FNS};
use kdd_obs::{json, Json};
use lex::{Lexed, TokKind};

/// Crates whose non-test code must never panic (rule `KDD001`, `KDD005`).
pub const PANIC_FREE_CRATES: &[&str] = &["blockdev", "raid", "core", "cache", "delta", "obs"];

/// Crates that must not issue raw device/array writes (rule `KDD002`).
pub const LAYERING_RESTRICTED_CRATES: &[&str] = &["sim", "bench", "cli", "trace"];

/// Crates allowed to read wall-clock time and use default hashers (`KDD003`).
pub const NONDETERMINISM_ALLOWED_CRATES: &[&str] = &["bench", "cli", "xtask"];

/// Crates the sharded multi-tenant engine will run N-way: their state must
/// be `Send`-ready, so single-thread-only ownership/interior-mutability
/// constructs are forbidden (rule `KDD008`).
pub const CONCURRENCY_READY_CRATES: &[&str] =
    &["core", "cache", "raid", "blockdev", "delta", "obs"];

/// Crates whose `Result`-returning APIs must never be silently discarded
/// (rule `KDD009` resolves discards against fns defined here).
pub const FALLIBLE_API_CRATES: &[&str] = &["blockdev", "raid", "core", "cache", "obs"];

/// Crates carrying endurance counters whose arithmetic must be checked
/// (rule `KDD010`).
pub const COUNTER_CRATES: &[&str] = &["blockdev", "raid", "core", "cache", "delta", "obs"];

/// Raw mutation entry points of the device/array substrate. Only the cache,
/// core engine, and RAID internals may call these; everything above goes
/// through `KddEngine`/`KddPolicy` so effects are accounted and crash-ordered.
const RAW_WRITE_TOKENS: &[&str] = &[
    ".write_page(",
    ".trim_page(",
    ".write_no_parity_update(",
    ".parity_update_with_data(",
    ".parity_update_rmw(",
    ".resync(",
    ".rebuild(",
];

/// Tokens that panic at runtime (rule `KDD001`).
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Wall-clock / ambient-randomness tokens (rule `KDD003`).
const NONDETERMINISM_TOKENS: &[&str] =
    &["Instant::now", "SystemTime", "std::time::", "thread_rng", "rand::random"];

/// Files whose per-op code paths are hot enough that page-sized allocations
/// are a measured throughput cost (rule `KDD006`): these must recycle
/// buffers through `kdd_util::PagePool` or carry a written waiver.
pub const HOT_ALLOC_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/raid/src/array.rs",
    "crates/cache/src/setassoc.rs",
    "crates/delta/src/xor.rs",
    "crates/delta/src/codec.rs",
    "crates/blockdev/src/store.rs",
];

/// Allocation tokens rule `KDD006` flags in hot-path files. Besides the
/// classic page-buffer shapes, the codec's scratch tables (`u16`/`u32`/
/// `u64` word vectors, sentinel-filled index tables) count: a hash-chain
/// match finder that rebuilt its tables per call would dominate the
/// compress cost, so scratch must live in a reused `Compressor`.
const HOT_ALLOC_TOKENS: &[&str] = &[
    "vec![0u8;",
    "vec![0u16;",
    "vec![0u32;",
    "vec![0u64;",
    "vec![u32::MAX;",
    "vec![usize::MAX;",
    ".to_vec()",
    ".clone()",
];

/// Metric-registration calls: a file containing one of these feeds the
/// observability registry and falls under rule `KDD007` wherever it lives.
const OBS_REGISTER_TOKENS: &[&str] = &[".register_counter(", ".register_gauge(", ".register_hist"];

/// Registration method names rule `KDD011` extracts metric names from.
const OBS_REGISTER_METHODS: &[(&str, &str)] =
    &[("register_counter", "counters"), ("register_gauge", "gauges"), ("register_hist", "hists")];

/// Wall-clock tokens rule `KDD007` forbids in observability code. Snapshots
/// are keyed on `SimTime`; an ambient timestamp would differ across replays.
const OBS_WALLCLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime", "std::time::"];

/// Float-accumulation tokens rule `KDD007` flags in observability code:
/// summation order and rounding drift make accumulated floats unstable
/// across refactors, so metrics accumulate in integers (`u64` counters,
/// milli-units) and convert to `f64` only at export.
const OBS_FLOAT_HAZARD_TOKENS: &[&str] =
    &[".sum::<f32>()", ".sum::<f64>()", ".fold(0.0", ".fold(0f32", ".fold(0f64"];

/// Tokens that prove a module repairs or registers stale parity (`KDD004`).
const STALE_REPAIR_TOKENS: &[&str] = &[
    ".parity_update_with_data(",
    ".parity_update_rmw(",
    ".resync(",
    ".stale_rows(",
    ".is_stale(",
    "mark_stale",
];

/// Single-thread-only constructs rule `KDD008` forbids by identifier.
const SEND_HOSTILE_IDENTS: &[&str] = &["Rc", "RefCell", "Cell"];

/// Identifier substrings that mark an endurance counter (rule `KDD010`):
/// erase counts, WAF accumulators, stale-row counters, wear statistics.
const COUNTER_NAME_HINTS: &[&str] =
    &["erase", "waf", "stale_row", "wear", "pages_written", "written_bytes"];

/// Cast targets that narrow an endurance counter (`u64` is the canonical
/// counter width; `usize` narrows on 32-bit targets, `f32` loses precision).
const NARROWING_CAST_TARGETS: &[&str] =
    &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize", "f32"];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `KDD000` — malformed waiver comment.
    Waiver,
    /// `KDD001` — panicking construct on an I/O path.
    NoPanic,
    /// `KDD002` — raw device write (direct or reachable) from a restricted layer.
    Layering,
    /// `KDD003` — nondeterministic construct outside `bench`/`cli`.
    Determinism,
    /// `KDD004` — unpaired `write_no_parity_update` call site.
    StaleParity,
    /// `KDD005` — unchecked slice indexing (pedantic).
    IndexingSlicing,
    /// `KDD006` — per-op allocation on a hot-path file.
    HotAlloc,
    /// `KDD007` — nondeterministic construct in observability code.
    ObsDeterminism,
    /// `KDD008` — `Send`-hostile state in a shard-ready crate.
    ConcurrencyReadiness,
    /// `KDD009` — silently discarded `Result` from an I/O-path API.
    ErrorDiscard,
    /// `KDD010` — unchecked arithmetic or narrowing cast on an endurance counter.
    CounterArithmetic,
    /// `KDD011` — drift between registered obs names and the committed snapshot.
    ObsSchema,
}

/// Every rule, in ID order.
const ALL_RULES: &[Rule] = &[
    Rule::Waiver,
    Rule::NoPanic,
    Rule::Layering,
    Rule::Determinism,
    Rule::StaleParity,
    Rule::IndexingSlicing,
    Rule::HotAlloc,
    Rule::ObsDeterminism,
    Rule::ConcurrencyReadiness,
    Rule::ErrorDiscard,
    Rule::CounterArithmetic,
    Rule::ObsSchema,
];

impl Rule {
    /// Stable rule ID, e.g. `KDD001`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Waiver => "KDD000",
            Rule::NoPanic => "KDD001",
            Rule::Layering => "KDD002",
            Rule::Determinism => "KDD003",
            Rule::StaleParity => "KDD004",
            Rule::IndexingSlicing => "KDD005",
            Rule::HotAlloc => "KDD006",
            Rule::ObsDeterminism => "KDD007",
            Rule::ConcurrencyReadiness => "KDD008",
            Rule::ErrorDiscard => "KDD009",
            Rule::CounterArithmetic => "KDD010",
            Rule::ObsSchema => "KDD011",
        }
    }

    /// Human name, as accepted inside `kdd-lint: allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Waiver => "waiver",
            Rule::NoPanic => "no-panic",
            Rule::Layering => "layering",
            Rule::Determinism => "determinism",
            Rule::StaleParity => "stale-parity",
            Rule::IndexingSlicing => "indexing-slicing",
            Rule::HotAlloc => "hot-alloc",
            Rule::ObsDeterminism => "obs-determinism",
            Rule::ConcurrencyReadiness => "concurrency-readiness",
            Rule::ErrorDiscard => "error-discard",
            Rule::CounterArithmetic => "counter-arithmetic",
            Rule::ObsSchema => "obs-schema",
        }
    }

    /// Parse a rule from its name or its `KDDnnn` code.
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.name() == s || r.code() == s || r.code().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code(), self.name())
    }
}

/// One finding: a rule violated at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found and why it is forbidden.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// A waiver that was honoured (reported for transparency, not a failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverUse {
    /// The waived rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the waiver silenced.
    pub line: usize,
    /// The written reason after `--`.
    pub reason: String,
}

/// Linter options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Also run the pedantic `KDD005` indexing rule. Files carrying the
    /// audited `#![allow(clippy::indexing_slicing)]` header are
    /// file-waived; everything else must justify each site.
    pub pedantic: bool,
}

/// Result of linting: violations plus the waivers that were honoured.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule violations (non-empty report fails CI).
    pub violations: Vec<Violation>,
    /// Waivers with written reasons that silenced a would-be violation.
    pub waivers: Vec<WaiverUse>,
}

impl Report {
    /// Render the report as stable machine-readable JSON
    /// (`kdd-lint/v1`): findings and honoured waivers, sorted by
    /// file/line/rule.
    pub fn render_json(&self) -> String {
        let finding = |v: &Violation| {
            json::obj(vec![
                ("rule", Json::Str(v.rule.code().to_string())),
                ("name", Json::Str(v.rule.name().to_string())),
                ("file", Json::Str(v.file.clone())),
                ("line", Json::Num(v.line as f64)),
                ("message", Json::Str(v.message.clone())),
            ])
        };
        let waiver = |w: &WaiverUse| {
            json::obj(vec![
                ("rule", Json::Str(w.rule.code().to_string())),
                ("file", Json::Str(w.file.clone())),
                ("line", Json::Num(w.line as f64)),
                ("reason", Json::Str(w.reason.clone())),
            ])
        };
        json::obj(vec![
            ("schema", Json::Str("kdd-lint/v1".to_string())),
            ("violations", Json::Arr(self.violations.iter().map(finding).collect())),
            ("waivers", Json::Arr(self.waivers.iter().map(waiver).collect())),
        ])
        .render()
    }
}

// ---------------------------------------------------------------------------
// File analysis
// ---------------------------------------------------------------------------

/// One fully-analysed file: token stream, rendered line views, test-region
/// flags. The companion [`AnalyzedFile`] carries the extracted items into
/// the call graph.
struct FileAnalysis {
    krate: String,
    rel: String,
    lexed: Lexed,
    code: Vec<String>,
    comment: Vec<String>,
    in_test: Vec<bool>,
}

/// Lex, render, and extract one file.
fn analyse(krate: &str, rel: &str, src: &str) -> (FileAnalysis, AnalyzedFile) {
    let lexed = lex::lex(src);
    let code = lexed.code_lines();
    let comment = lexed.comment_lines();
    let code_refs: Vec<&str> = code.iter().map(String::as_str).collect();
    let in_test = mark_test_regions(&code_refs);
    let items = items::extract(&lexed);
    let af = AnalyzedFile {
        krate: krate.to_string(),
        rel_path: rel.to_string(),
        items,
        in_test: in_test.clone(),
    };
    let fa = FileAnalysis {
        krate: krate.to_string(),
        rel: rel.to_string(),
        lexed,
        code,
        comment,
        in_test,
    };
    (fa, af)
}

/// Mark lines inside `#[cfg(test)]` / `#[test]` / `#[bench]` regions.
///
/// Brace-tracked on scrubbed text: the region runs from the attribute to the
/// close of the first brace block (or the first `;` for brace-less items).
fn mark_test_regions(scrubbed_lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; scrubbed_lines.len()];
    let mut i = 0;
    while i < scrubbed_lines.len() {
        let t = scrubbed_lines[i].trim();
        let is_test_attr = t.contains("#[cfg(test)]")
            || t.contains("#[test]")
            || t.contains("#[bench]")
            || t.contains("#[should_panic");
        if !is_test_attr {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < scrubbed_lines.len() {
            in_test[j] = true;
            let mut done = false;
            for c in scrubbed_lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            done = true;
                        }
                    }
                    ';' if !opened && depth == 0 && j > i => done = true,
                    _ => {}
                }
            }
            if done || (opened && depth <= 0) {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// A parsed `kdd-lint: allow(rule) -- reason` comment.
#[derive(Debug)]
struct Waiver {
    rule: Option<Rule>,
    reason: Option<String>,
    /// File-scope (`allow-file`) rather than line-scope.
    file_scope: bool,
    /// The raw text inside `allow(...)` (for diagnostics).
    rule_text: String,
}

/// Extract every waiver comment on a raw line.
fn parse_waivers(raw: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("kdd-lint:") {
        let after = &rest[pos + "kdd-lint:".len()..];
        let after = after.trim_start();
        let (args_opt, file_scope) = match after.strip_prefix("allow-file(") {
            Some(a) => (Some(a), true),
            None => (after.strip_prefix("allow("), false),
        };
        if let Some(args) = args_opt {
            if let Some(close) = args.find(')') {
                let rule_text = args[..close].trim().to_string();
                let tail = &args[close + 1..];
                let reason = tail.find("--").map(|p| tail[p + 2..].trim().to_string());
                out.push(Waiver {
                    rule: Rule::parse(&rule_text),
                    reason: reason.filter(|r| !r.is_empty()),
                    file_scope,
                    rule_text,
                });
                rest = &args[close + 1..];
                continue;
            }
        }
        out.push(Waiver { rule: None, reason: None, file_scope: false, rule_text: String::new() });
        rest = after;
    }
    // Shorthand form: `kdd-waiver(KDD006): reason`.
    let mut rest = raw;
    while let Some(pos) = rest.find("kdd-waiver(") {
        let args = &rest[pos + "kdd-waiver(".len()..];
        let Some(close) = args.find(')') else {
            out.push(Waiver {
                rule: None,
                reason: None,
                file_scope: false,
                rule_text: String::new(),
            });
            break;
        };
        let rule_text = args[..close].trim().to_string();
        let tail = &args[close + 1..];
        let reason = tail.strip_prefix(':').map(|r| r.trim().to_string()).filter(|r| !r.is_empty());
        out.push(Waiver { rule: Rule::parse(&rule_text), reason, file_scope: false, rule_text });
        rest = tail;
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// First match of `pat` in `code` at an identifier boundary (the char before
/// the match must not be part of an identifier when `pat` starts with one).
fn find_ident_token(code: &str, pat: &str) -> Option<usize> {
    let starts_ident = pat.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(rel) = code.get(from..).and_then(|s| s.find(pat)) {
        let pos = from + rel;
        if !starts_ident {
            return Some(pos);
        }
        let boundary_ok = pos == 0
            || code[..pos].chars().next_back().is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if boundary_ok {
            return Some(pos);
        }
        from = pos + pat.len();
    }
    None
}

/// Does the line use `HashMap`/`HashSet` with the *default* hasher? Lines
/// naming an explicit `BuildHasher`/`FastHasherBuilder` third parameter are
/// the sanctioned way to use them.
fn default_hasher_use(code: &str) -> Option<&'static str> {
    ["HashMap", "HashSet"].into_iter().find(|ident| {
        find_ident_token(code, ident).is_some()
            && !code.contains("HasherBuilder")
            && !code.contains("BuildHasher")
            && !code.contains("FastMap")
            && !code.contains("FastSet")
    })
}

/// Pedantic: a `[` directly after an identifier, `)`, or `]` is an index
/// expression that can panic. Attribute lines are skipped.
fn has_index_expr(code: &str) -> bool {
    if code.trim_start().starts_with('#') {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    chars.windows(2).any(|w| {
        // kdd-lint: allow(indexing-slicing) -- windows(2) guarantees len 2
        let (a, b) = (w[0], w[1]);
        b == '[' && (a.is_alphanumeric() || a == '_' || a == ')' || a == ']')
    })
}

/// Index of the `;` ending the statement starting at token `from`.
fn statement_end(toks: &[lex::Tok], from: usize) -> usize {
    let mut depth: i64 = 0;
    let mut j = from;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

// ---------------------------------------------------------------------------
// Per-file lint state
// ---------------------------------------------------------------------------

/// Waiver tables and analysis for one file; every emission routes through
/// [`FileLint::emit`] so line- and file-scope waivers apply uniformly.
struct FileLint<'a> {
    fa: &'a FileAnalysis,
    /// Line index → waived rules with reasons.
    waived: Vec<Vec<(Rule, String)>>,
    /// File-scope waivers.
    file_waived: Vec<(Rule, String)>,
}

impl<'a> FileLint<'a> {
    /// Build the waiver tables, reporting malformed waivers into `report`.
    fn new(fa: &'a FileAnalysis, report: &mut Report) -> FileLint<'a> {
        let n = fa.code.len();
        let mut waived: Vec<Vec<(Rule, String)>> = vec![Vec::new(); n];
        let mut file_waived: Vec<(Rule, String)> = Vec::new();
        for i in 0..n {
            for w in parse_waivers(&fa.comment[i]) {
                let Some(rule) = w.rule else {
                    report.violations.push(Violation {
                        rule: Rule::Waiver,
                        file: fa.rel.clone(),
                        line: i + 1,
                        message: format!(
                            "malformed waiver: `allow({})` names no known rule \
                             (use a rule name like `no-panic` or an ID like `KDD001`)",
                            w.rule_text
                        ),
                    });
                    continue;
                };
                let Some(reason) = w.reason else {
                    report.violations.push(Violation {
                        rule: Rule::Waiver,
                        file: fa.rel.clone(),
                        line: i + 1,
                        message: format!(
                            "waiver for {} carries no reason: write \
                             `kdd-lint: allow({}) -- <why this is sound>`",
                            rule.code(),
                            rule.name()
                        ),
                    });
                    continue;
                };
                if w.file_scope {
                    file_waived.push((rule, reason));
                    continue;
                }
                // Same line if it has code, else the next code-bearing line.
                let mut target = i;
                if fa.code[i].trim().is_empty() {
                    for (j, l) in fa.code.iter().enumerate().skip(i + 1) {
                        if !l.trim().is_empty() {
                            target = j;
                            break;
                        }
                    }
                }
                if let Some(slot) = waived.get_mut(target) {
                    slot.push((rule, reason));
                }
            }
        }
        // The workspace's audited clippy allow header doubles as a KDD005
        // file waiver: the audit note is the comment directly above it.
        for (i, code) in fa.code.iter().enumerate() {
            if code.contains("#![allow(") && code.contains("indexing_slicing") {
                let mut note = Vec::new();
                for j in (i.saturating_sub(4)..i).rev() {
                    let c = fa.comment[j].trim();
                    let stripped = c.trim_start_matches('/').trim_start_matches('!').trim();
                    if stripped.is_empty() {
                        break;
                    }
                    note.push(stripped.to_string());
                }
                if !note.is_empty() {
                    note.reverse();
                    file_waived.push((Rule::IndexingSlicing, note.join(" ")));
                }
            }
        }
        FileLint { fa, waived, file_waived }
    }

    /// Record a violation at 0-based `line_idx`, honouring waivers.
    fn emit(&self, report: &mut Report, rule: Rule, line_idx: usize, message: String) {
        if let Some((_, reason)) =
            self.waived.get(line_idx).and_then(|ws| ws.iter().find(|(r, _)| *r == rule))
        {
            report.waivers.push(WaiverUse {
                rule,
                file: self.fa.rel.clone(),
                line: line_idx + 1,
                reason: reason.clone(),
            });
            return;
        }
        if let Some((_, reason)) = self.file_waived.iter().find(|(r, _)| *r == rule) {
            // One waiver-use entry per (file, rule) keeps the listing short.
            let already = report.waivers.iter().any(|w| w.rule == rule && w.file == self.fa.rel);
            if !already {
                report.waivers.push(WaiverUse {
                    rule,
                    file: self.fa.rel.clone(),
                    line: line_idx + 1,
                    reason: reason.clone(),
                });
            }
            return;
        }
        report.violations.push(Violation {
            rule,
            file: self.fa.rel.clone(),
            line: line_idx + 1,
            message,
        });
    }
}

// ---------------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------------

/// Line rules: the KDD001–KDD007 family over the rendered code view.
fn run_line_rules(fl: &FileLint<'_>, opts: Options, report: &mut Report) {
    let fa = fl.fa;
    let crate_name = fa.krate.as_str();
    let panic_free = PANIC_FREE_CRATES.contains(&crate_name);
    let layering_restricted = LAYERING_RESTRICTED_CRATES.contains(&crate_name);
    let determinism_checked = !NONDETERMINISM_ALLOWED_CRATES.contains(&crate_name);
    let hot_alloc_checked = HOT_ALLOC_FILES.iter().any(|f| fa.rel.ends_with(f));
    // KDD007 governs the obs crate itself plus any file that registers
    // metrics, wherever it lives — even in crates otherwise allowed to
    // read ambient state (`bench`, `cli`).
    let obs_checked = fa.rel.contains("crates/obs/")
        || fa.code.iter().enumerate().any(|(i, code)| {
            !fa.in_test[i] && OBS_REGISTER_TOKENS.iter().any(|t| code.contains(t))
        });

    for (i, code) in fa.code.iter().enumerate() {
        if fa.in_test[i] || code.trim().is_empty() {
            continue;
        }
        if panic_free {
            for tok in PANIC_TOKENS {
                if find_ident_token(code, tok).is_some() {
                    fl.emit(
                        report,
                        Rule::NoPanic,
                        i,
                        format!(
                            "`{}` in non-test code of panic-free crate `{}`: \
                             plumb a typed error instead",
                            tok.trim_matches(|c| c == '.' || c == '('),
                            crate_name
                        ),
                    );
                }
            }
            if opts.pedantic && has_index_expr(code) {
                fl.emit(
                    report,
                    Rule::IndexingSlicing,
                    i,
                    format!(
                        "unchecked slice index in panic-free crate `{crate_name}`: \
                         use `.get()`/`.get_mut()`, prove bounds with a slice pattern, \
                         or carry the audited `#![allow(clippy::indexing_slicing)]` header"
                    ),
                );
            }
        }
        if layering_restricted {
            for tok in RAW_WRITE_TOKENS {
                if code.contains(tok) {
                    fl.emit(
                        report,
                        Rule::Layering,
                        i,
                        format!(
                            "raw device/array write `{}` from layer `{}`: \
                             only cache/core/raid internals may mutate the substrate \
                             (go through `KddEngine`/`KddPolicy`)",
                            tok.trim_matches(|c| c == '.' || c == '('),
                            crate_name
                        ),
                    );
                }
            }
        }
        if hot_alloc_checked {
            for tok in HOT_ALLOC_TOKENS {
                if code.contains(tok) {
                    fl.emit(
                        report,
                        Rule::HotAlloc,
                        i,
                        format!(
                            "`{tok}` allocates per operation on a hot-path file: \
                             recycle a buffer through `kdd_util::PagePool` or waive \
                             with `// kdd-waiver(KDD006): <why this alloc is sound>`"
                        ),
                    );
                }
            }
        }
        if determinism_checked {
            for tok in NONDETERMINISM_TOKENS {
                if find_ident_token(code, tok).is_some() {
                    fl.emit(
                        report,
                        Rule::Determinism,
                        i,
                        format!(
                            "`{tok}` breaks seeded replay: use `util::rng::seeded_rng` \
                             / `SimTime` instead (only `bench`/`cli` may read ambient state)"
                        ),
                    );
                    break; // one wall-clock finding per line is enough
                }
            }
            if let Some(ident) = default_hasher_use(code) {
                fl.emit(
                    report,
                    Rule::Determinism,
                    i,
                    format!(
                        "`{ident}` with the default `RandomState` hasher iterates in a \
                         different order every run: use `BTreeMap`/`BTreeSet` or \
                         `util::hash::FastMap`/`FastSet`"
                    ),
                );
            }
        }
        if obs_checked {
            for tok in OBS_WALLCLOCK_TOKENS {
                if find_ident_token(code, tok).is_some() {
                    fl.emit(
                        report,
                        Rule::ObsDeterminism,
                        i,
                        format!(
                            "`{tok}` in observability code: snapshots are keyed on \
                             `SimTime` and must be byte-identical across seeded \
                             replays — never stamp events with wall-clock time"
                        ),
                    );
                    break; // one wall-clock finding per line is enough
                }
            }
            for tok in OBS_FLOAT_HAZARD_TOKENS {
                if code.contains(tok) {
                    fl.emit(
                        report,
                        Rule::ObsDeterminism,
                        i,
                        format!(
                            "`{tok}` accumulates floats in observability code: \
                             rounding drift makes metrics unstable — accumulate in \
                             integer units and convert to `f64` only at export"
                        ),
                    );
                }
            }
        }
    }

    // KDD004: every module calling `write_no_parity_update` must also repair
    // or register stale parity (the defining crate `raid` is exempt).
    if crate_name != "raid" {
        let repairs = fa.code.iter().enumerate().any(|(i, code)| {
            !fa.in_test[i] && STALE_REPAIR_TOKENS.iter().any(|t| code.contains(t))
        });
        if !repairs {
            for (i, code) in fa.code.iter().enumerate() {
                if !fa.in_test[i] && code.contains(".write_no_parity_update(") {
                    fl.emit(
                        report,
                        Rule::StaleParity,
                        i,
                        "`write_no_parity_update` leaves stale parity, but this module \
                         never calls `parity_update_*`/`resync` or registers the stale \
                         stripe: pair it with repair logic or waive with a reason"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Token rules: `KDD008` (concurrency readiness) and `KDD010` (counter
/// arithmetic) over the real token stream.
fn run_token_rules(fl: &FileLint<'_>, report: &mut Report) {
    let fa = fl.fa;
    let toks = &fa.lexed.toks;
    let concurrency = CONCURRENCY_READY_CRATES.contains(&fa.krate.as_str());
    let counters = COUNTER_CRATES.contains(&fa.krate.as_str());
    if !concurrency && !counters {
        return;
    }
    // Per-line "has checked/saturating arithmetic" marker for KDD010.
    let mut line_checked: BTreeSet<usize> = BTreeSet::new();
    for t in toks {
        if t.kind == TokKind::Ident
            && (t.text.starts_with("checked_") || t.text.starts_with("saturating_"))
        {
            line_checked.insert(t.line);
        }
    }
    for (k, t) in toks.iter().enumerate() {
        let line_idx = t.line.saturating_sub(1);
        if fa.in_test.get(line_idx).copied().unwrap_or(false) {
            continue;
        }
        if concurrency && t.kind == TokKind::Ident {
            let is_punct = |i: usize, p: &str| {
                toks.get(i).is_some_and(|x| x.kind == TokKind::Punct && x.text == p)
            };
            let is_ident = |i: usize, p: &str| {
                toks.get(i).is_some_and(|x| x.kind == TokKind::Ident && x.text == p)
            };
            if SEND_HOSTILE_IDENTS.contains(&t.text.as_str()) {
                fl.emit(
                    report,
                    Rule::ConcurrencyReadiness,
                    line_idx,
                    format!(
                        "`{}` is single-thread-only state in shard-ready crate `{}`: \
                         the sharded engine runs this crate N-way — use owned state, \
                         `Arc`, or atomics",
                        t.text, fa.krate
                    ),
                );
            } else if t.text == "static" && is_ident(k + 1, "mut") {
                fl.emit(
                    report,
                    Rule::ConcurrencyReadiness,
                    line_idx,
                    format!(
                        "`static mut` in shard-ready crate `{}`: global mutable state \
                         cannot be sharded — thread it through the engine instead",
                        fa.krate
                    ),
                );
            } else if t.text == "thread_local" && is_punct(k + 1, "!") {
                fl.emit(
                    report,
                    Rule::ConcurrencyReadiness,
                    line_idx,
                    format!(
                        "`thread_local!` in shard-ready crate `{}`: per-thread state \
                         breaks shard migration and deterministic replay",
                        fa.krate
                    ),
                );
            }
        }
        if concurrency
            && t.kind == TokKind::Punct
            && t.text == "*"
            && toks.get(k + 1).is_some_and(|x| x.kind == TokKind::Ident && x.text == "mut")
        {
            fl.emit(
                report,
                Rule::ConcurrencyReadiness,
                line_idx,
                format!(
                    "raw `*mut` state in shard-ready crate `{}`: raw pointers carry \
                     no ownership story across shards — use owned buffers or indices",
                    fa.krate
                ),
            );
        }
        if counters && t.kind == TokKind::Ident {
            let lower = t.text.to_ascii_lowercase();
            if !COUNTER_NAME_HINTS.iter().any(|h| lower.contains(h)) {
                continue;
            }
            // Narrowing cast: `counter [()…] as <narrow>`.
            let mut j = k + 1;
            while toks
                .get(j)
                .is_some_and(|x| x.kind == TokKind::Punct && (x.text == ")" || x.text == "("))
            {
                j += 1;
            }
            if toks.get(j).is_some_and(|x| x.kind == TokKind::Ident && x.text == "as") {
                if let Some(ty) =
                    toks.get(j + 1).filter(|x| NARROWING_CAST_TARGETS.contains(&x.text.as_str()))
                {
                    fl.emit(
                        report,
                        Rule::CounterArithmetic,
                        line_idx,
                        format!(
                            "narrowing cast `as {}` on endurance counter `{}`: \
                             compressed-wear campaigns overflow narrow types — keep \
                             counters in `u64` (or waive with a measured bound)",
                            ty.text, t.text
                        ),
                    );
                }
            }
            if line_checked.contains(&t.line) {
                continue;
            }
            // Unchecked accumulation *into* the counter: `counter += …` or
            // `counter = counter + …`. A counter merely read inside a sum
            // (`total + c`, `rate * c`) cannot overflow the counter itself.
            let compound =
                toks.get(k + 1).is_some_and(|x| x.kind == TokKind::Punct && x.text == "+=");
            let self_assign =
                toks.get(k + 1).is_some_and(|x| x.kind == TokKind::Punct && x.text == "+") && {
                    // Walk back over `recv.` qualifiers to the `=`, then
                    // require the assignment target to be the same counter.
                    let mut p = k;
                    while p >= 2
                        && toks[p - 1].kind == TokKind::Punct
                        && toks[p - 1].text == "."
                        && toks[p - 2].kind == TokKind::Ident
                    {
                        p -= 2;
                    }
                    p >= 2
                        && toks[p - 1].kind == TokKind::Punct
                        && toks[p - 1].text == "="
                        && toks[p - 2].kind == TokKind::Ident
                        && toks[p - 2].text == t.text
                };
            if compound || self_assign {
                fl.emit(
                    report,
                    Rule::CounterArithmetic,
                    line_idx,
                    format!(
                        "unchecked `+` accumulation on endurance counter `{}`: years \
                         of compressed wear overflow silently in release builds — use \
                         `checked_add`/`saturating_add` or waive with a reason",
                        t.text
                    ),
                );
            }
        }
    }
}

/// Symbol rules over the call graph: `KDD009` (error discard) and the
/// indirect half of `KDD002` (layering by reachability).
fn run_graph_rules(
    fl: &FileLint<'_>,
    graph: &CallGraph,
    reach: &[Option<String>],
    report: &mut Report,
) {
    let fa = fl.fa;
    let toks = &fa.lexed.toks;
    let in_test = |line: usize| fa.in_test.get(line.saturating_sub(1)).copied().unwrap_or(false);

    // Enclosing graph node for a source line, by fn span.
    let node_for_line = |line: usize| {
        graph
            .nodes_in_file(&fa.rel)
            .find(|&i| graph.nodes[i].line <= line && line <= graph.nodes[i].end_line)
    };

    // A call name inside a discard statement: is it a fallible I/O API?
    let fallible_api = |name: &str, line: usize| -> Option<String> {
        if STD_FALLIBLE_FNS.contains(&name) {
            return Some(format!("std::fs::{name}"));
        }
        let node = node_for_line(line)?;
        let site = graph.nodes[node].calls.iter().find(|c| c.line == line && c.name == name)?;
        graph.resolves_fallible(node, site, FALLIBLE_API_CRATES)
    };

    // `let _ = …;` statements.
    for k in 0..toks.len() {
        let is_ident = |i: usize, s: &str| {
            toks.get(i).is_some_and(|x| x.kind == TokKind::Ident && x.text == s)
        };
        let is_punct = |i: usize, s: &str| {
            toks.get(i).is_some_and(|x| x.kind == TokKind::Punct && x.text == s)
        };
        if is_ident(k, "let") && is_ident(k + 1, "_") && is_punct(k + 2, "=") {
            let stmt_line = toks[k].line;
            if in_test(stmt_line) {
                continue;
            }
            let end = statement_end(toks, k + 3);
            let mut j = k + 3;
            while j < end {
                let t = &toks[j];
                if t.kind == TokKind::Ident
                    && is_punct(j + 1, "(")
                    && !is_ident(j.wrapping_sub(1), "fn")
                {
                    if let Some(api) = fallible_api(&t.text, t.line) {
                        fl.emit(
                            report,
                            Rule::ErrorDiscard,
                            stmt_line - 1,
                            format!(
                                "`let _ =` discards the `Result` of `{api}` on an I/O \
                                 path: propagate with `?`, handle it, or log the error \
                                 before dropping it"
                            ),
                        );
                        break;
                    }
                }
                j += 1;
            }
        }
        // `….ok();` — the Result is thrown away wholesale.
        if is_punct(k, ".")
            && is_ident(k + 1, "ok")
            && is_punct(k + 2, "(")
            && is_punct(k + 3, ")")
            && is_punct(k + 4, ";")
        {
            let line = toks[k + 1].line;
            if in_test(line) {
                continue;
            }
            // Walk back over the receiver call's `(...)`.
            if k == 0 || !is_punct(k - 1, ")") {
                continue;
            }
            let mut depth: i64 = 0;
            let mut p = k - 1;
            loop {
                if toks[p].kind == TokKind::Punct {
                    match toks[p].text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if p == 0 {
                    break;
                }
                p -= 1;
            }
            if p == 0 {
                continue;
            }
            let name_tok = &toks[p - 1];
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            if let Some(api) = fallible_api(&name_tok.text, name_tok.line) {
                fl.emit(
                    report,
                    Rule::ErrorDiscard,
                    line - 1,
                    format!(
                        "`.ok()` silently swallows the `Result` of `{api}` on an I/O \
                         path: handle the error or log it on the failure path"
                    ),
                );
            }
        }
    }

    // KDD002 (indirect): restricted layers must not *reach* a raw substrate
    // write through any resolved call chain that bypasses the engine.
    if LAYERING_RESTRICTED_CRATES.contains(&fa.krate.as_str()) {
        for i in graph.nodes_in_file(&fa.rel) {
            if graph.nodes[i].in_test {
                continue;
            }
            for site in &graph.nodes[i].calls {
                if in_test(site.line) {
                    continue;
                }
                for j in graph.resolve(i, site) {
                    if SANCTIONED_CRATES.contains(&graph.nodes[j].krate.as_str()) {
                        continue;
                    }
                    if let Some(chain) = &reach[j] {
                        fl.emit(
                            report,
                            Rule::Layering,
                            site.line - 1,
                            format!(
                                "call into `{}` from layer `{}` reaches a raw \
                                 device/array write without passing through the \
                                 engine: {chain}",
                                graph.nodes[j].qual_name(),
                                fa.krate
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// KDD011: obs schema drift
// ---------------------------------------------------------------------------

/// A metric name registered in code, with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisteredName {
    /// Metric key, e.g. `ssd.erases`.
    pub name: String,
    /// Registering file.
    pub file: String,
    /// 1-based line of the registration call.
    pub line: usize,
}

/// Everything the token stream says the observability layer exports.
#[derive(Debug, Default)]
pub struct ObsNames {
    /// `register_counter` names.
    pub counters: Vec<RegisteredName>,
    /// `register_gauge` names.
    pub gauges: Vec<RegisteredName>,
    /// `register_hist` names.
    pub hists: Vec<RegisteredName>,
    /// Span classes declared by `as_str` in `crates/obs`.
    pub span_classes: Vec<String>,
    /// Stage names declared by `Stage::as_str` (the `kdd-obs/v2` latency
    /// attribution taxonomy).
    pub stages: Vec<String>,
}

impl ObsNames {
    /// The registration list for a totals table name.
    fn table(&self, table: &str) -> &[RegisteredName] {
        match table {
            "counters" => &self.counters,
            "gauges" => &self.gauges,
            _ => &self.hists,
        }
    }
}

/// Extract registered metric names and declared span classes from one
/// analysed file, appending into `names`.
fn collect_obs_names(fa: &FileAnalysis, af: &AnalyzedFile, names: &mut ObsNames) {
    let toks = &fa.lexed.toks;
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some((_, table)) = OBS_REGISTER_METHODS.iter().find(|(m, _)| *m == t.text) else {
            continue;
        };
        if fa.in_test.get(t.line.saturating_sub(1)).copied().unwrap_or(false) {
            continue;
        }
        let is_open = toks.get(k + 1).is_some_and(|x| x.kind == TokKind::Punct && x.text == "(");
        let Some(arg) = toks.get(k + 2).filter(|x| x.kind == TokKind::Str && is_open) else {
            continue;
        };
        let rec = RegisteredName { name: arg.text.clone(), file: fa.rel.clone(), line: t.line };
        match *table {
            "counters" => names.counters.push(rec),
            "gauges" => names.gauges.push(rec),
            _ => names.hists.push(rec),
        }
    }
    // Span classes: string literals inside `fn as_str` bodies in crates/obs.
    // `Stage::as_str` additionally feeds the stage taxonomy, cross-checked
    // against the v2 snapshot's `stages` table.
    if fa.rel.contains("crates/obs/") {
        for f in &af.items.fns {
            if f.name != "as_str" {
                continue;
            }
            let is_stage = f.owner.as_deref() == Some("Stage");
            let (start, end) = f.body;
            for t in toks.get(start..end.min(toks.len())).unwrap_or(&[]) {
                if t.kind == TokKind::Str && !t.text.is_empty() {
                    names.span_classes.push(t.text.clone());
                    if is_stage {
                        names.stages.push(t.text.clone());
                    }
                }
            }
        }
    }
}

/// Cross-check registered names against the committed `kdd-obs`
/// snapshot document (`OBS_engine.json`). Exposed for fixture tests.
pub fn check_obs_schema(names: &ObsNames, doc: &Json, doc_path: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for problem in kdd_obs::validate_snapshot(doc) {
        out.push(Violation {
            rule: Rule::ObsSchema,
            file: doc_path.to_string(),
            line: 1,
            message: format!("committed snapshot fails kdd-obs validation: {problem}"),
        });
    }
    // The committed baseline must carry the schema the workspace exports:
    // a stale v1 baseline would silently skip every v2-only cross-check.
    let doc_schema = doc.get("schema").and_then(Json::as_str);
    let is_current = doc_schema == Some(kdd_obs::SCHEMA);
    if let Some(s) = doc_schema {
        if !is_current {
            out.push(Violation {
                rule: Rule::ObsSchema,
                file: doc_path.to_string(),
                line: 1,
                message: format!(
                    "committed snapshot is `{s}` but the workspace exports `{}`: \
                     regenerate {doc_path} (`perfbench`)",
                    kdd_obs::SCHEMA
                ),
            });
        }
    }
    for table in ["counters", "gauges", "hists"] {
        let doc_keys: BTreeSet<&str> = doc
            .get("totals")
            .and_then(|t| t.get(table))
            .and_then(|j| match j {
                Json::Obj(m) => Some(m.keys().map(String::as_str).collect()),
                _ => None,
            })
            .unwrap_or_default();
        let registered = names.table(table);
        for r in registered {
            if !doc_keys.contains(r.name.as_str()) {
                out.push(Violation {
                    rule: Rule::ObsSchema,
                    file: r.file.clone(),
                    line: r.line,
                    message: format!(
                        "metric `{}` is registered here but missing from {doc_path} \
                         totals.{table}: regenerate the committed snapshot \
                         (`perfbench`) or remove the registration",
                        r.name
                    ),
                });
            }
        }
        let reg_set: BTreeSet<&str> = registered.iter().map(|r| r.name.as_str()).collect();
        for key in doc_keys {
            if !reg_set.contains(key) {
                out.push(Violation {
                    rule: Rule::ObsSchema,
                    file: doc_path.to_string(),
                    line: 1,
                    message: format!(
                        "metric `{key}` appears in {doc_path} totals.{table} but no \
                         non-test code registers it: stale export — regenerate the \
                         snapshot or restore the metric"
                    ),
                });
            }
        }
    }
    // v2: the snapshot's `stages` table and the Stage taxonomy must match
    // in BOTH directions — the table always exports every stage, so a
    // missing key means a renamed/removed stage with a stale baseline,
    // and an extra key means a stale export of a dropped stage.
    if is_current && !names.stages.is_empty() {
        let declared: BTreeSet<&str> = names.stages.iter().map(String::as_str).collect();
        let doc_stages: BTreeSet<&str> = doc
            .get("stages")
            .and_then(|j| match j {
                Json::Obj(m) => Some(m.keys().map(String::as_str).collect()),
                _ => None,
            })
            .unwrap_or_default();
        for s in &declared {
            if !doc_stages.contains(s) {
                out.push(Violation {
                    rule: Rule::ObsSchema,
                    file: doc_path.to_string(),
                    line: 1,
                    message: format!(
                        "stage `{s}` is declared by Stage::as_str but missing from \
                         {doc_path} stages: regenerate the committed snapshot \
                         (`perfbench`) or remove the stage"
                    ),
                });
            }
        }
        for s in doc_stages {
            if !declared.contains(s) {
                out.push(Violation {
                    rule: Rule::ObsSchema,
                    file: doc_path.to_string(),
                    line: 1,
                    message: format!(
                        "stage `{s}` appears in {doc_path} stages but is not declared \
                         by Stage::as_str: stale export — regenerate the snapshot or \
                         restore the stage"
                    ),
                });
            }
        }
    }
    // Exported span classes must be declared (the reverse is fine: not
    // every class occurs in every run).
    if !names.span_classes.is_empty() {
        let declared: BTreeSet<&str> = names.span_classes.iter().map(String::as_str).collect();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        if let Some(events) = doc.get("spans").and_then(|s| s.get("events")).and_then(Json::as_arr)
        {
            for ev in events {
                if let Some(class) = ev.get("class").and_then(Json::as_str) {
                    if !declared.contains(class) && seen.insert(class.to_string()) {
                        out.push(Violation {
                            rule: Rule::ObsSchema,
                            file: doc_path.to_string(),
                            line: 1,
                            message: format!(
                                "span class `{class}` is exported in {doc_path} but \
                                 not declared by any `as_str` in crates/obs"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Lint one source file given its crate name and workspace-relative path.
///
/// Runs the full pipeline — lexer, item extraction, a single-file call
/// graph — so fixtures exercise exactly the code the workspace walk runs.
/// Cross-file resolution (e.g. `KddEngine::flush` from `cli`) and the
/// `KDD011` snapshot cross-check only happen under [`lint_workspace`].
pub fn lint_source(crate_name: &str, rel_path: &str, src: &str, opts: Options) -> Report {
    let (fa, af) = analyse(crate_name, rel_path, src);
    let graph = CallGraph::build(std::slice::from_ref(&af));
    let reach = graph.raw_reachability();
    let mut report = Report::default();
    let fl = FileLint::new(&fa, &mut report);
    run_line_rules(&fl, opts, &mut report);
    run_token_rules(&fl, &mut report);
    run_graph_rules(&fl, &graph, &reach, &mut report);
    sort_dedup(&mut report);
    report
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Recursively collect `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every crate's `src/` tree under `<root>/crates/`.
///
/// `tests/`, `benches/`, `examples/`, and `vendor/` are out of scope: rules
/// govern the shipped I/O paths, and test code is free to `unwrap`.
pub fn lint_workspace(root: &Path, opts: Options) -> std::io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut fas: Vec<FileAnalysis> = Vec::new();
    let mut afs: Vec<AnalyzedFile> = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if crate_name == "xtask" {
            // The linter's own source is full of rule tokens and waiver
            // syntax *as data*; its behaviour is pinned by the fixture
            // corpus under crates/xtask/tests/ instead of self-linting.
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let content = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            let (fa, af) = analyse(&crate_name, &rel, &content);
            fas.push(fa);
            afs.push(af);
        }
    }
    // Workspace graph over every analysed file.
    let graph = CallGraph::build(&afs);
    let reach = graph.raw_reachability();
    let mut obs_names = ObsNames::default();
    for (fa, af) in fas.iter().zip(&afs) {
        let fl = FileLint::new(fa, &mut report);
        run_line_rules(&fl, opts, &mut report);
        run_token_rules(&fl, &mut report);
        run_graph_rules(&fl, &graph, &reach, &mut report);
        collect_obs_names(fa, af, &mut obs_names);
    }
    // KDD011: the committed snapshot must agree with the code.
    let obs_doc_path = "OBS_engine.json";
    match std::fs::read_to_string(root.join(obs_doc_path)) {
        Ok(text) => match json::parse(&text) {
            Ok(doc) => report.violations.extend(check_obs_schema(&obs_names, &doc, obs_doc_path)),
            Err(e) => report.violations.push(Violation {
                rule: Rule::ObsSchema,
                file: obs_doc_path.to_string(),
                line: 1,
                message: format!("committed snapshot does not parse: {e}"),
            }),
        },
        Err(e) => report.violations.push(Violation {
            rule: Rule::ObsSchema,
            file: obs_doc_path.to_string(),
            line: 1,
            message: format!("committed snapshot missing ({e}): run perfbench to regenerate it"),
        }),
    }
    sort_dedup(&mut report);
    Ok(report)
}

/// Sort violations by file/line/rule and drop duplicate findings (the
/// direct and reachability halves of `KDD002` can land on one line).
fn sort_dedup(report: &mut Report) {
    report
        .violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report.violations.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
}
