//! Item extraction: functions, impl blocks, structs, and `use` aliases from
//! a lexed token stream.
//!
//! This is not a full Rust parser — it is the minimal symbol layer the lint
//! rules need: *which* functions exist (with their impl-block owner and
//! whether they return `Result`), *what* each function body calls, which
//! local variables are bound to which workspace types, and how `use`
//! declarations alias paths. Constructs outside that scope (nested items in
//! function bodies, macro-generated items, trait objects) are deliberately
//! ignored; rules built on this layer are conservative by design.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use crate::lex::{Lexed, Tok, TokKind};

/// A `use` alias: the short name code refers to, and its full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The name visible in this file (`FaultPlan`, or the `as` rename).
    pub alias: String,
    /// Full path segments, e.g. `["kdd_blockdev", "fault", "FaultPlan"]`.
    pub segments: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: usize,
}

/// A struct or enum declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeItem {
    /// Declared name.
    pub name: String,
    /// 1-based line of the declaration keyword.
    pub line: usize,
}

/// An `impl` block and its token extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplBlock {
    /// The implementing type's last path segment (`KddEngine`). For
    /// `impl Trait for Type`, this is `Type`.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Token-index range of the block body (inside the braces).
    pub body: (usize, usize),
}

/// One function call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called name (`flush`, `write_page`, `parse`).
    pub name: String,
    /// For `a::b::name(…)` calls: the path segments before the name. For
    /// method calls: empty.
    pub path: Vec<String>,
    /// For method calls: the receiver identifier, when it is a simple
    /// variable (`engine` in `engine.flush()`); `None` for chained or
    /// complex receivers.
    pub receiver: Option<String>,
    /// `true` for `.name(…)` method calls.
    pub is_method: bool,
    /// 1-based source line of the called name.
    pub line: usize,
}

/// A function item with its signature summary and body extent.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing impl type, if any.
    pub owner: Option<String>,
    /// Enclosing inline `mod` names, outermost first.
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (== `line` for `fn …;`).
    pub end_line: usize,
    /// Does the return type mention `Result`?
    pub returns_result: bool,
    /// Token-index range of the body (inside the braces); empty for
    /// body-less trait methods.
    pub body: (usize, usize),
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Local variable name → bound type name, from `let x = Type::new(…)`,
    /// `let x: Type = …`, and typed parameters `x: &mut Type`.
    pub locals: Vec<(String, String)>,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// `use` aliases.
    pub uses: Vec<UseAlias>,
    /// Functions (free and impl-associated).
    pub fns: Vec<FnItem>,
    /// Struct/enum declarations.
    pub types: Vec<TypeItem>,
    /// Impl blocks.
    pub impls: Vec<ImplBlock>,
}

/// Rust keywords that look like call names but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "move", "fn", "unsafe", "else", "in", "as",
    "let", "mut", "ref", "break", "continue", "where", "impl", "dyn",
];

/// Extract items from a lexed file.
pub fn extract(lx: &Lexed) -> FileItems {
    let t = &lx.toks;
    let mut out = FileItems::default();
    // Context stack: enclosing impl/mod blocks as (kind, name, close_depth).
    enum Ctx {
        Impl(String),
        Mod(String),
    }
    let mut ctx: Vec<(Ctx, i64)> = Vec::new();
    let mut depth: i64 = 0;
    let mut i = 0;
    while i < t.len() {
        let tok = &t[i];
        if tok.kind == TokKind::Punct {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    while matches!(ctx.last(), Some((_, d)) if *d == depth) {
                        ctx.pop();
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match tok.text.as_str() {
            "use" => {
                let (aliases, next) = parse_use(t, i);
                out.uses.extend(aliases);
                i = next;
            }
            "struct" | "enum" if is_ident_at(t, i + 1) => {
                out.types.push(TypeItem { name: t[i + 1].text.clone(), line: t[i + 1].line });
                i += 2;
            }
            "impl" => {
                if let Some((type_name, open)) = parse_impl_header(t, i) {
                    let close = matching_brace(t, open);
                    out.impls.push(ImplBlock {
                        type_name: type_name.clone(),
                        line: tok.line,
                        body: (open + 1, close),
                    });
                    ctx.push((Ctx::Impl(type_name), depth));
                    depth += 1;
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "mod" if is_ident_at(t, i + 1) && is_punct_at(t, i + 2, "{") => {
                ctx.push((Ctx::Mod(t[i + 1].text.clone()), depth));
                depth += 1;
                i += 3;
            }
            "fn" if is_ident_at(t, i + 1) => {
                let name = t[i + 1].text.clone();
                let line = tok.line;
                // Signature: everything until the body `{` or a `;`, with
                // parens/brackets balanced (closures cannot appear here).
                let mut j = i + 2;
                let mut pd: i64 = 0;
                let (mut body_open, mut returns_result) = (None, false);
                let mut seen_arrow = false;
                while j < t.len() {
                    let tj = &t[j];
                    if tj.kind == TokKind::Punct {
                        match tj.text.as_str() {
                            "(" | "[" => pd += 1,
                            ")" | "]" => pd -= 1,
                            "->" if pd == 0 => seen_arrow = true,
                            "{" if pd == 0 => {
                                body_open = Some(j);
                                break;
                            }
                            ";" if pd == 0 => break,
                            _ => {}
                        }
                    } else if tj.kind == TokKind::Ident && seen_arrow && tj.text == "Result" {
                        returns_result = true;
                    }
                    j += 1;
                }
                let owner = ctx.iter().rev().find_map(|(c, _)| match c {
                    Ctx::Impl(n) => Some(n.clone()),
                    _ => None,
                });
                let modules = ctx
                    .iter()
                    .filter_map(|(c, _)| match c {
                        Ctx::Mod(n) => Some(n.clone()),
                        _ => None,
                    })
                    .collect();
                let (body, end_line) = match body_open {
                    Some(open) => {
                        let close = matching_brace(t, open);
                        ((open + 1, close), t.get(close).map_or(line, |c| c.line))
                    }
                    None => ((j, j), line),
                };
                let mut item = FnItem {
                    name,
                    owner,
                    modules,
                    line,
                    end_line,
                    returns_result,
                    body,
                    calls: Vec::new(),
                    locals: Vec::new(),
                };
                collect_params(t, i + 2, body_open.unwrap_or(j), &mut item.locals);
                collect_body(t, &mut item);
                out.fns.push(item);
                // Skip the whole body (braces included) for item scanning:
                // nested items in bodies are out of scope, and call
                // extraction already ran. Both braces are skipped, so the
                // outer depth counter stays balanced.
                i = if body_open.is_some() { body.1 + 1 } else { body.0 };
            }
            _ => i += 1,
        }
    }
    out
}

/// Is `t[i]` an identifier?
fn is_ident_at(t: &[Tok], i: usize) -> bool {
    t.get(i).is_some_and(|x| x.kind == TokKind::Ident)
}

/// Is `t[i]` the punct `p`?
fn is_punct_at(t: &[Tok], i: usize, p: &str) -> bool {
    t.get(i).is_some_and(|x| x.kind == TokKind::Punct && x.text == p)
}

/// Index of the `}` matching the `{` at `open` (or `t.len()` if unclosed).
fn matching_brace(t: &[Tok], open: usize) -> usize {
    let mut depth: i64 = 0;
    let mut j = open;
    while j < t.len() {
        if t[j].kind == TokKind::Punct {
            match t[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    t.len()
}

/// Parse `impl … {`: returns the implementing type name and the index of
/// the opening brace.
fn parse_impl_header(t: &[Tok], impl_idx: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    let mut angle: i64 = 0;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < t.len() {
        let tj = &t[j];
        match tj.kind {
            TokKind::Punct => match tj.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    let name = if saw_for { after_for } else { last_ident };
                    return name.map(|n| (n, j));
                }
                ";" => return None, // `impl Trait for Type;` — not a block
                _ => {}
            },
            TokKind::Ident if angle <= 0 => {
                if tj.text == "for" {
                    saw_for = true;
                } else if tj.text != "where" && tj.text != "dyn" {
                    if saw_for {
                        after_for = Some(tj.text.clone());
                    } else {
                        last_ident = Some(tj.text.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parse a `use …;` declaration starting at `use_idx`; returns the aliases
/// and the index just past the terminating `;`.
fn parse_use(t: &[Tok], use_idx: usize) -> (Vec<UseAlias>, usize) {
    // Collect the token span to the `;`.
    let mut end = use_idx + 1;
    while end < t.len() && !is_punct_at(t, end, ";") {
        end += 1;
    }
    let mut out = Vec::new();
    let line = t[use_idx].line;
    expand_use_tree(t, use_idx + 1, end, &mut Vec::new(), &mut out, line);
    (out, end + 1)
}

/// Recursively expand a use tree (`a::b::{c, d as e}`) into flat aliases.
fn expand_use_tree(
    t: &[Tok],
    start: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseAlias>,
    line: usize,
) {
    let base_len = prefix.len();
    let mut j = start;
    while j < end {
        let tok = &t[j];
        match tok.kind {
            TokKind::Ident if tok.text == "as" && is_ident_at(t, j + 1) => {
                // Rename: alias the path collected so far under the new name.
                out.push(UseAlias { alias: t[j + 1].text.clone(), segments: prefix.clone(), line });
                prefix.truncate(base_len);
                j += 2;
                // Skip to the next `,` at this level.
                j = skip_to_comma(t, j, end);
            }
            TokKind::Ident => {
                prefix.push(tok.text.clone());
                j += 1;
            }
            TokKind::Punct => match tok.text.as_str() {
                "::" => {
                    if is_punct_at(t, j + 1, "{") {
                        let close = matching_brace(t, j + 1);
                        // Each comma-separated subtree extends the prefix.
                        let mut k = j + 2;
                        while k < close {
                            let item_end = find_comma(t, k, close);
                            expand_use_tree(t, k, item_end, prefix, out, line);
                            k = item_end + 1;
                        }
                        prefix.truncate(base_len);
                        j = close + 1;
                        j = skip_to_comma(t, j, end);
                    } else {
                        j += 1;
                    }
                }
                "," => {
                    flush_alias(prefix, base_len, out, line);
                    prefix.truncate(base_len);
                    j += 1;
                }
                "*" => {
                    // Glob imports carry no alias information.
                    prefix.truncate(base_len);
                    j = skip_to_comma(t, j + 1, end);
                }
                _ => j += 1,
            },
            _ => j += 1,
        }
    }
    flush_alias(prefix, base_len, out, line);
    prefix.truncate(base_len);
}

/// Emit the alias for a completed simple path (last segment names it).
fn flush_alias(prefix: &mut [String], base_len: usize, out: &mut Vec<UseAlias>, line: usize) {
    if prefix.len() > base_len {
        if let Some(last) = prefix.last() {
            if last != "self" {
                out.push(UseAlias { alias: last.clone(), segments: prefix.to_vec(), line });
            } else {
                // `use a::b::{self}` — alias `b` itself.
                let segs: Vec<String> = prefix[..prefix.len() - 1].to_vec();
                if let Some(name) = segs.last() {
                    out.push(UseAlias { alias: name.clone(), segments: segs.clone(), line });
                }
            }
        }
    }
}

/// Find the `,` at brace/paren depth 0 in `[from, end)`, or `end`.
fn find_comma(t: &[Tok], from: usize, end: usize) -> usize {
    let mut depth: i64 = 0;
    let mut j = from;
    while j < end {
        if t[j].kind == TokKind::Punct {
            match t[j].text.as_str() {
                "{" | "(" => depth += 1,
                "}" | ")" => depth -= 1,
                "," if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    end
}

/// Skip forward to just past the next top-level `,` (or to `end`).
fn skip_to_comma(t: &[Tok], from: usize, end: usize) -> usize {
    let c = find_comma(t, from, end);
    if c < end {
        c + 1
    } else {
        end
    }
}

/// Record typed parameters `name: [&] [mut] Type` from the signature.
fn collect_params(t: &[Tok], sig_start: usize, sig_end: usize, locals: &mut Vec<(String, String)>) {
    let mut j = sig_start;
    while j + 2 < sig_end.min(t.len()) {
        if is_ident_at(t, j) && is_punct_at(t, j + 1, ":") {
            // Walk the type: skip `&`, lifetimes, `mut`, `dyn`; take the
            // first type-looking identifier path's last segment before a
            // `,`/`)`/`<`.
            let mut k = j + 2;
            let mut ty: Option<String> = None;
            while k < sig_end.min(t.len()) {
                let tk = &t[k];
                match tk.kind {
                    TokKind::Punct => match tk.text.as_str() {
                        "&" | "::" => {}
                        "," | ")" | "<" | "(" => break,
                        _ => break,
                    },
                    TokKind::Lifetime => {}
                    TokKind::Ident if tk.text == "mut" || tk.text == "dyn" || tk.text == "impl" => {
                    }
                    TokKind::Ident => ty = Some(tk.text.clone()),
                    _ => break,
                }
                k += 1;
            }
            if let Some(ty) = ty {
                locals.push((t[j].text.clone(), ty));
            }
            j = k;
        } else {
            j += 1;
        }
    }
}

/// Walk a function body: collect call sites and `let` type bindings.
fn collect_body(t: &[Tok], item: &mut FnItem) {
    let (start, end) = item.body;
    let mut j = start;
    while j < end.min(t.len()) {
        let tok = &t[j];
        if tok.kind != TokKind::Ident {
            j += 1;
            continue;
        }
        // `let [mut] name = Type::ctor(…)` / `let [mut] name: Type`
        if tok.text == "let" {
            let mut k = j + 1;
            if t.get(k).is_some_and(|x| x.kind == TokKind::Ident && x.text == "mut") {
                k += 1;
            }
            if is_ident_at(t, k) {
                let var = t[k].text.clone();
                if is_punct_at(t, k + 1, ":") {
                    // Explicit annotation: reuse the parameter scanner.
                    let stop = statement_end(t, k, end);
                    collect_params(t, k, stop, &mut item.locals);
                } else if is_punct_at(t, k + 1, "=") {
                    // `= path::Type::ctor(` — bind to the path's type segment.
                    if let Some(ty) = ctor_type(t, k + 2, end) {
                        item.locals.push((var, ty));
                    }
                }
            }
            j += 1;
            continue;
        }
        // Call site: `name(…)` with the name not a keyword/macro.
        if is_punct_at(t, j + 1, "(") && !NON_CALL_KEYWORDS.contains(&tok.text.as_str()) {
            let prev = j.checked_sub(1).and_then(|p| t.get(p));
            let prev_punct = prev.filter(|p| p.kind == TokKind::Punct).map(|p| p.text.as_str());
            if prev_punct == Some(".") {
                // Method call; receiver is the identifier before the dot if
                // the token before *that* is not `.`/`)`/`]` (simple var).
                let receiver = j.checked_sub(2).and_then(|r| t.get(r)).and_then(|r| {
                    if r.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&r.text.as_str()) {
                        return None;
                    }
                    let before = j.checked_sub(3).and_then(|b| t.get(b));
                    match before {
                        Some(b) if b.kind == TokKind::Punct => match b.text.as_str() {
                            "." | "::" => None, // chained or path-qualified
                            _ => Some(r.text.clone()),
                        },
                        _ => Some(r.text.clone()),
                    }
                });
                item.calls.push(CallSite {
                    name: tok.text.clone(),
                    path: Vec::new(),
                    receiver,
                    is_method: true,
                    line: tok.line,
                });
            } else if prev_punct == Some("::") {
                // Path call: walk back the `(ident ::)+` chain.
                let mut path = Vec::new();
                let mut p = j;
                while p >= 2 && is_punct_at(t, p - 1, "::") && is_ident_at(t, p - 2) {
                    path.push(t[p - 2].text.clone());
                    p -= 2;
                }
                path.reverse();
                item.calls.push(CallSite {
                    name: tok.text.clone(),
                    path,
                    receiver: None,
                    is_method: false,
                    line: tok.line,
                });
            } else {
                item.calls.push(CallSite {
                    name: tok.text.clone(),
                    path: Vec::new(),
                    receiver: None,
                    is_method: false,
                    line: tok.line,
                });
            }
        }
        j += 1;
    }
}

/// For `= Type::ctor(…)` initialisers: the type segment before the final
/// `::fn(`, skipping leading path qualifiers.
fn ctor_type(t: &[Tok], from: usize, end: usize) -> Option<String> {
    // Match `ident (:: ident)* (` and return the second-to-last segment if
    // it starts uppercase (a type, not a module).
    let mut segs: Vec<&str> = Vec::new();
    let mut j = from;
    while j < end.min(t.len()) {
        if is_ident_at(t, j) {
            segs.push(&t[j].text);
            if is_punct_at(t, j + 1, "::") {
                j += 2;
                continue;
            }
            if is_punct_at(t, j + 1, "(") && segs.len() >= 2 {
                let ty = segs[segs.len() - 2];
                if ty.chars().next().is_some_and(char::is_uppercase) {
                    return Some(ty.to_string());
                }
            }
            return None;
        }
        return None;
    }
    None
}

/// Index of the `;` ending the statement starting near `from`.
fn statement_end(t: &[Tok], from: usize, end: usize) -> usize {
    let mut depth: i64 = 0;
    let mut j = from;
    while j < end.min(t.len()) {
        if t[j].kind == TokKind::Punct {
            match t[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn items(src: &str) -> FileItems {
        extract(&lex(src))
    }

    #[test]
    fn fn_names_owners_and_result() {
        let src = "
            pub fn free() {}
            struct S;
            impl S {
                pub fn method(&self) -> Result<u32, String> { Ok(1) }
                fn plain(&self) -> u32 { 2 }
            }
            impl Display for S {
                fn fmt(&self, f: &mut Formatter) -> fmt::Result { Ok(()) }
            }
        ";
        let it = items(src);
        let names: Vec<(&str, Option<&str>, bool)> = it
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref(), f.returns_result))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, false),
                ("method", Some("S"), true),
                ("plain", Some("S"), false),
                ("fmt", Some("S"), true),
            ]
        );
        assert_eq!(it.types.len(), 1);
        assert_eq!(it.impls.len(), 2);
    }

    #[test]
    fn use_aliases_expand() {
        let it = items(
            "use kdd_blockdev::fault::{FaultInjector, FaultPlan};\n\
             use kdd_core::engine::KddEngine as Engine;\n\
             use std::io::BufReader;\n",
        );
        let mut aliases: Vec<(String, String)> =
            it.uses.iter().map(|u| (u.alias.clone(), u.segments.join("::"))).collect();
        aliases.sort();
        assert_eq!(
            aliases,
            vec![
                ("BufReader".into(), "std::io::BufReader".into()),
                ("Engine".into(), "kdd_core::engine::KddEngine".into()),
                ("FaultInjector".into(), "kdd_blockdev::fault::FaultInjector".into()),
                ("FaultPlan".into(), "kdd_blockdev::fault::FaultPlan".into()),
            ]
        );
    }

    #[test]
    fn calls_methods_paths_and_receivers() {
        let src = "
            fn drive(engine: &mut KddEngine) -> Result<(), String> {
                let plan = FaultPlan::parse(\"x\")?;
                engine.flush().map_err(|e| e.to_string())?;
                helper(plan);
                Ok(())
            }
        ";
        let it = items(src);
        let f = &it.fns[0];
        let calls: Vec<(&str, bool, Option<&str>)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.is_method, c.receiver.as_deref())).collect();
        assert!(calls.contains(&("parse", false, None)));
        assert!(calls.contains(&("flush", true, Some("engine"))));
        assert!(calls.contains(&("helper", false, None)));
        let parse = f.calls.iter().find(|c| c.name == "parse").unwrap();
        assert_eq!(parse.path, vec!["FaultPlan".to_string()]);
        assert!(f.locals.contains(&("engine".into(), "KddEngine".into())));
        assert!(f.locals.contains(&("plan".into(), "FaultPlan".into())));
    }

    #[test]
    fn let_bindings_infer_ctor_types() {
        let src = "
            fn build() {
                let mut engine = KddEngine::new(cfg).unwrap();
                let dev: SsdDevice = mk();
                let n = helper();
            }
        ";
        let it = items(src);
        let f = &it.fns[0];
        assert!(f.locals.contains(&("engine".into(), "KddEngine".into())));
        assert!(f.locals.contains(&("dev".into(), "SsdDevice".into())));
        assert!(!f.locals.iter().any(|(v, _)| v == "n"));
    }

    #[test]
    fn macros_are_not_calls() {
        let src = "fn f() { println!(\"{}\", x); write!(w, \"y\")?; g(); }";
        let it = items(src);
        let names: Vec<&str> = it.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(!names.contains(&"println"));
        assert!(!names.contains(&"write"));
        assert!(names.contains(&"g"));
    }

    #[test]
    fn nested_mod_names_recorded() {
        let src = "mod inner { fn f() {} } fn outer() {}";
        let it = items(src);
        assert_eq!(it.fns[0].modules, vec!["inner".to_string()]);
        assert!(it.fns[1].modules.is_empty());
    }
}
