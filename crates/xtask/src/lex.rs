//! A small dependency-free Rust lexer: the single place comments, string
//! literals, raw strings, char literals, and lifetimes are disambiguated.
//!
//! Every kdd-lint pass consumes this one token stream (or the per-line
//! code/comment renderings derived from it), so the tricky cases — nested
//! block comments, `r#"…"#` raw strings, `'a` lifetimes vs `'x'` char
//! literals, escaped quotes — are handled exactly once.
//!
//! The lexer is deliberately lossy where lint rules do not care: numeric
//! literal suffixes are folded into one token, and multi-character
//! operators are combined only for the handful the rules inspect
//! (`::`, `->`, `=>`, `+=`, `-=`, `==`, `!=`, `<=`, `>=`, `..`).

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

/// What a token is, at the granularity lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `engine`, `r#type`).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Numeric literal, suffix included (`4096`, `0u8`, `1e9`).
    Num,
    /// String literal (plain, raw, or byte); `text` holds the unquoted value.
    Str,
    /// Char or byte literal; `text` holds the source form without quotes.
    Char,
    /// Punctuation; one character, or one of the combined operators.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text. For `Str`/`Char` this is the literal *value region*
    /// (quotes and raw-string hashes stripped, escapes left as written).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 0-based char column of the token's first character.
    pub col: usize,
    /// Length in chars of the whole source form (quotes included).
    pub src_len: usize,
}

/// One comment (line or block; block text may span lines and contain `\n`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 0-based char column of the `//` or `/*`.
    pub col: usize,
    /// Full comment text including the delimiters.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Token stream, comments excluded.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
    /// Char length of every source line (for rendering the line grids).
    line_lens: Vec<usize>,
}

/// Is `c` part of an identifier?
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Two-character operators the lexer combines into a single `Punct`.
const TWO_CHAR_OPS: &[[char; 2]] = &[
    [':', ':'],
    ['-', '>'],
    ['=', '>'],
    ['+', '='],
    ['-', '='],
    ['=', '='],
    ['!', '='],
    ['<', '='],
    ['>', '='],
    ['.', '.'],
];

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let line_lens = src.lines().map(|l| l.chars().count()).collect::<Vec<_>>();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let (mut line, mut col) = (1usize, 0usize);
    let mut i = 0;
    // Advance the cursor over `n` chars, tracking line/col.
    macro_rules! advance {
        ($n:expr) => {
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == '\n' {
                        line += 1;
                        col = 0;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        let (tline, tcol) = (line, col);
        match c {
            c if c.is_whitespace() => {
                advance!(1);
            }
            '/' if next == Some('/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    advance!(1);
                }
                comments.push(Comment {
                    line: tline,
                    col: tcol,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if next == Some('*') => {
                let start = i;
                let mut depth = 0u32;
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        advance!(2);
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        advance!(2);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        advance!(1);
                    }
                }
                comments.push(Comment {
                    line: tline,
                    col: tcol,
                    text: b[start..i].iter().collect(),
                });
            }
            '"' => {
                let start = i;
                advance!(1);
                while i < b.len() {
                    if b[i] == '\\' {
                        advance!(2);
                    } else if b[i] == '"' {
                        advance!(1);
                        break;
                    } else {
                        advance!(1);
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[start + 1..i.saturating_sub(1).max(start + 1)].iter().collect(),
                    line: tline,
                    col: tcol,
                    src_len: i - start,
                });
            }
            'r' if matches!(next, Some('"') | Some('#'))
                && !prev_is_ident(&b, i)
                && raw_str_hashes(&b, i + 1).is_some() =>
            {
                let start = i;
                let h = raw_str_hashes(&b, i + 1).unwrap_or(0);
                advance!(h + 2); // r##…#"
                let val_start = i;
                let mut val_end = i;
                while i < b.len() {
                    if b[i] == '"' && (1..=h).all(|k| b.get(i + k) == Some(&'#')) {
                        val_end = i;
                        advance!(h + 1);
                        break;
                    }
                    advance!(1);
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[val_start..val_end].iter().collect(),
                    line: tline,
                    col: tcol,
                    src_len: i - start,
                });
            }
            '\'' => {
                if is_char_literal(&b, i) {
                    let start = i;
                    advance!(1);
                    while i < b.len() {
                        if b[i] == '\\' {
                            advance!(2);
                        } else if b[i] == '\'' {
                            advance!(1);
                            break;
                        } else {
                            advance!(1);
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: b[start + 1..i.saturating_sub(1).max(start + 1)].iter().collect(),
                        line: tline,
                        col: tcol,
                        src_len: i - start,
                    });
                } else {
                    // Lifetime: `'` plus the identifier after it.
                    let start = i;
                    advance!(1);
                    while i < b.len() && is_ident(b[i]) {
                        advance!(1);
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line: tline,
                        col: tcol,
                        src_len: i - start,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() {
                    let d = b[i];
                    if is_ident(d) {
                        // `1e-9` / `1E+9`: the sign belongs to the exponent.
                        if (d == 'e' || d == 'E')
                            && matches!(b.get(i + 1), Some('+') | Some('-'))
                            && b.get(i + 2).is_some_and(char::is_ascii_digit)
                        {
                            advance!(2);
                        }
                        advance!(1);
                    } else if d == '.'
                        && b.get(i + 1).is_some_and(char::is_ascii_digit)
                        && !matches!(toks.last(), Some(t) if t.kind == TokKind::Punct && t.text == "..")
                    {
                        advance!(1);
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                    src_len: i - start,
                });
            }
            c if is_ident(c) => {
                let start = i;
                while i < b.len() && is_ident(b[i]) {
                    advance!(1);
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                    src_len: i - start,
                });
            }
            _ => {
                let combined =
                    next.is_some_and(|n| TWO_CHAR_OPS.iter().any(|[a, z]| *a == c && *z == n));
                let len = if combined { 2 } else { 1 };
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: b[i..i + len].iter().collect(),
                    line: tline,
                    col: tcol,
                    src_len: len,
                });
                advance!(len);
            }
        }
    }
    Lexed { toks, comments, line_lens }
}

/// Is `b[i]` preceded by an identifier char (so `r` is part of a name)?
fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && b.get(i - 1).is_some_and(|c| is_ident(*c))
}

/// If `b[i..]` opens a raw string (`"` or `#…#"`), how many `#`s?
fn raw_str_hashes(b: &[char], i: usize) -> Option<usize> {
    let mut h = 0;
    let mut j = i;
    while b.get(j) == Some(&'#') {
        h += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some(h)
}

/// Distinguish a char literal from a lifetime at `b[i] == '\''`.
fn is_char_literal(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(c) if is_ident(*c) => b.get(i + 2) == Some(&'\''),
        Some(_) => true, // e.g. `'('` — punctuation can only be a char literal
        None => false,
    }
}

impl Lexed {
    /// Number of source lines.
    pub fn n_lines(&self) -> usize {
        self.line_lens.len()
    }

    /// Render the *code* view: one string per source line, with comments and
    /// string/char literal contents blanked to spaces. Identifiers, numbers,
    /// lifetimes, and punctuation appear verbatim at their original columns,
    /// so line/column-based rules see exactly what a scrubbed source view
    /// would show.
    pub fn code_lines(&self) -> Vec<String> {
        let mut grid = self.blank_grid();
        for t in &self.toks {
            match t.kind {
                TokKind::Str | TokKind::Char => {} // literals stay blank
                _ => splice(&mut grid, t.line, t.col, &t.text),
            }
        }
        grid.into_iter().map(|l| l.into_iter().collect()).collect()
    }

    /// Render the *comment* view: one string per source line, with
    /// everything except comment text blanked. Waivers are parsed from this
    /// view, so a string literal mentioning waiver syntax can never enact
    /// one.
    pub fn comment_lines(&self) -> Vec<String> {
        let mut grid = self.blank_grid();
        for c in &self.comments {
            let (mut line, mut col) = (c.line, c.col);
            for piece in c.text.split('\n') {
                splice(&mut grid, line, col, piece);
                line += 1;
                col = 0;
            }
        }
        grid.into_iter().map(|l| l.into_iter().collect()).collect()
    }

    /// A grid of space-filled lines matching the source's line lengths.
    fn blank_grid(&self) -> Vec<Vec<char>> {
        self.line_lens.iter().map(|&n| vec![' '; n]).collect()
    }
}

/// Write `text` into the grid at (1-based `line`, 0-based `col`).
fn splice(grid: &mut [Vec<char>], line: usize, col: usize, text: &str) {
    let Some(row) = grid.get_mut(line.wrapping_sub(1)) else { return };
    for (k, ch) in text.chars().enumerate() {
        if let Some(slot) = row.get_mut(col + k) {
            *slot = ch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_numbers_puncts() {
        let lx = lex("let x = a.b_c(42u8) + 1e9;");
        let texts: Vec<&str> = lx.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "b_c", "(", "42u8", ")", "+", "1e9", ";"]
        );
    }

    #[test]
    fn comments_and_strings_are_separated() {
        let lx = lex("call(\"lit // not a comment\"); // real comment\n");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("real comment"));
        let strs: Vec<&str> =
            lx.toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs, vec!["lit // not a comment"]);
    }

    #[test]
    fn raw_strings_and_char_vs_lifetime() {
        let lx = lex("let s = r#\"raw \"x\" here\"#; let c = 'a'; fn f<'a>(x: &'a u8) {}");
        let strs: Vec<&Tok> = lx.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "raw \"x\" here");
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("a /* outer /* inner */ still */ b");
        let idents: Vec<&str> =
            lx.toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["a", "b"]);
        assert_eq!(lx.comments.len(), 1);
    }

    #[test]
    fn combined_operators() {
        let lx = lex("x += 1; y -> z; a::b; p..q; m != n;");
        let ops: Vec<&str> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text.len() == 2)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ops, vec!["+=", "->", "::", "..", "!="]);
    }

    #[test]
    fn code_lines_blank_literals_and_comments() {
        let src = "let s = \"x.unwrap()\"; // c.unwrap()\nlet t = 1;\n";
        let lx = lex(src);
        let code = lx.code_lines();
        assert!(!code[0].contains("unwrap"), "literal + comment blanked: {:?}", code[0]);
        assert!(code[0].contains("let s ="));
        assert_eq!(code[1].trim_end(), "let t = 1;");
        let com = lx.comment_lines();
        assert!(com[0].contains("c.unwrap()"));
        assert!(!com[0].contains("let"));
    }

    #[test]
    fn multiline_block_comment_renders_per_line() {
        let src = "a /* one\ntwo */ b\n";
        let lx = lex(src);
        let com = lx.comment_lines();
        assert!(com[0].contains("/* one"));
        assert!(com[1].contains("two */"));
        let code = lx.code_lines();
        assert!(code[1].contains('b'));
        assert!(!code[1].contains("two"));
    }
}
