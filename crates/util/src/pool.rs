//! A free-list pool of page-sized buffers.
//!
//! The hot paths of the engine, RAID array, and cache move whole pages
//! around constantly: parity folds, delta computation, eviction write-back,
//! recovery. Allocating a fresh `vec![0u8; page_size]` for each of those is
//! the single largest per-op cost after the kernels themselves. [`PagePool`]
//! keeps returned buffers on a bounded free list so steady-state operation
//! recycles the same few pages instead of round-tripping the allocator.
//!
//! Design constraints, in priority order:
//!
//! * **Determinism** — the pool affects *where* bytes live, never *what*
//!   they are: [`PagePool::acquire`] always returns an all-zero page, and a
//!   cloned pool starts with an empty free list so clones share no state.
//! * **No `unsafe`** — recycled pages are zeroed with `fill(0)`; there is
//!   no uninitialised memory anywhere.
//! * **Bounded** — the free list is capped; beyond the cap, released pages
//!   are simply dropped.

/// Default maximum number of pages kept on the free list. One RAID row plus
/// parity scratch for the widest supported layout fits comfortably.
pub const DEFAULT_POOL_CAP: usize = 64;

/// A bounded free list of `Box<[u8]>` page buffers of one fixed size.
#[derive(Debug)]
pub struct PagePool {
    page_size: usize,
    cap: usize,
    free: Vec<Box<[u8]>>,
    acquired: u64,
    recycled: u64,
}

impl PagePool {
    /// A pool of `page_size`-byte buffers with the default free-list cap.
    pub fn new(page_size: usize) -> Self {
        Self::with_capacity(page_size, DEFAULT_POOL_CAP)
    }

    /// A pool keeping at most `cap` free buffers.
    pub fn with_capacity(page_size: usize, cap: usize) -> Self {
        assert!(page_size > 0, "page_size must be non-zero");
        PagePool { page_size, cap, free: Vec::new(), acquired: 0, recycled: 0 }
    }

    /// The fixed buffer size this pool hands out.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Take a zeroed page buffer, recycling a released one when available.
    pub fn acquire(&mut self) -> Box<[u8]> {
        self.acquired += 1;
        match self.free.pop() {
            Some(mut page) => {
                self.recycled += 1;
                page.fill(0);
                page
            }
            None => vec![0u8; self.page_size].into_boxed_slice(),
        }
    }

    /// Take a page buffer initialised to a copy of `data`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the pool's page size.
    pub fn acquire_from(&mut self, data: &[u8]) -> Box<[u8]> {
        assert_eq!(data.len(), self.page_size, "acquire_from size mismatch");
        self.acquired += 1;
        match self.free.pop() {
            Some(mut page) => {
                self.recycled += 1;
                page.copy_from_slice(data);
                page
            }
            None => data.to_vec().into_boxed_slice(),
        }
    }

    /// Return a buffer to the free list. Wrong-sized buffers and overflow
    /// beyond the cap are dropped silently — release never fails.
    pub fn release(&mut self, page: Box<[u8]>) {
        if page.len() == self.page_size && self.free.len() < self.cap {
            self.free.push(page);
        }
    }

    /// Buffers currently waiting on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// `(total acquires, acquires served from the free list)` — for
    /// diagnostics and the recycling tests.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquired, self.recycled)
    }
}

/// Clones share the page size and cap but **not** the free list or
/// counters: buffer reuse order in one clone must never depend on activity
/// in another (determinism across e.g. a cloned engine).
impl Clone for PagePool {
    fn clone(&self) -> Self {
        PagePool::with_capacity(self.page_size, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zeroed_after_dirty_release() {
        let mut pool = PagePool::new(64);
        let mut page = pool.acquire();
        page.fill(0xAB);
        pool.release(page);
        let page = pool.acquire();
        assert!(page.iter().all(|&b| b == 0), "recycled page leaked stale bytes");
        assert_eq!(pool.stats(), (2, 1));
    }

    #[test]
    fn acquire_from_copies() {
        let mut pool = PagePool::new(4);
        let mut page = pool.acquire();
        page.fill(0xEE);
        pool.release(page);
        let page = pool.acquire_from(&[1, 2, 3, 4]);
        assert_eq!(&page[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn cap_bounds_free_list_and_wrong_size_dropped() {
        let mut pool = PagePool::with_capacity(8, 2);
        for _ in 0..5 {
            let page = pool.acquire();
            pool.release(page);
        }
        pool.release(vec![0u8; 8].into_boxed_slice());
        pool.release(vec![0u8; 8].into_boxed_slice());
        pool.release(vec![0u8; 8].into_boxed_slice());
        assert_eq!(pool.free_len(), 2);
        pool.release(vec![0u8; 7].into_boxed_slice()); // wrong size: dropped
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn clone_starts_empty() {
        let mut pool = PagePool::new(16);
        let page = pool.acquire();
        pool.release(page);
        assert_eq!(pool.free_len(), 1);
        let clone = pool.clone();
        assert_eq!(clone.free_len(), 0);
        assert_eq!(clone.stats(), (0, 0));
        assert_eq!(clone.page_size(), 16);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn acquire_from_wrong_size_panics() {
        let mut pool = PagePool::new(16);
        let _ = pool.acquire_from(&[0u8; 8]);
    }
}
