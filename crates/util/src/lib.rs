//! Shared utilities for the KDD reproduction.
//!
//! This crate holds the small, dependency-light building blocks every other
//! crate in the workspace leans on:
//!
//! * [`stats`] — streaming mean/variance, latency histograms, ratio counters;
//! * [`sampler`] — Zipf and (clamped) Gaussian samplers implemented from the
//!   formulas the paper cites, so the statistical models are auditable;
//! * [`lru`] — an intrusive, slab-backed LRU list used by the set-associative
//!   cache;
//! * [`hash`] — a fast 64-bit mixing hash used to map LBAs to cache sets;
//! * [`pool`] — a bounded free list of page buffers so hot paths recycle
//!   pages instead of allocating per operation;
//! * [`rng`] — deterministic RNG construction helpers;
//! * [`units`] — simulated-time and byte-size newtypes.

#![warn(missing_docs)]

pub mod hash;
pub mod lru;
pub mod pool;
pub mod rng;
pub mod sampler;
pub mod stats;
pub mod units;

pub use hash::mix64;
pub use pool::PagePool;
pub use rng::seeded_rng;
pub use sampler::{ClampedGaussian, Gaussian, Zipf};
pub use stats::{Histogram, RatioCounter, StreamingStats};
pub use units::{ByteSize, SimTime, KIB, MIB};
