//! Deterministic random-number plumbing.
//!
//! Every experiment in the reproduction is seeded so that tables and figures
//! are exactly re-generatable. We standardise on `StdRng` seeded through
//! SplitMix64 so that nearby seeds (0, 1, 2, ...) still produce uncorrelated
//! streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator; used to expand small seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Build a deterministic `StdRng` from a small seed.
///
/// The 32-byte internal seed is expanded with SplitMix64, so consecutive
/// integer seeds yield statistically independent generators.
pub fn seeded_rng(seed: u64) -> StdRng {
    let mut state = seed;
    let mut bytes = [0u8; 32];
    for chunk in bytes.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    StdRng::from_seed(bytes)
}

/// Derive a sub-seed for a named stream from a master seed.
///
/// Used when one experiment needs several independent random streams (e.g.
/// address sampling vs. compressibility sampling) that must not interleave.
pub fn derive_seed(master: u64, stream: &str) -> u64 {
    let mut state = master;
    let mut acc = splitmix64(&mut state);
    for b in stream.bytes() {
        state ^= b as u64;
        acc ^= splitmix64(&mut state).rotate_left(7);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_distinct_per_stream() {
        let s1 = derive_seed(7, "addresses");
        let s2 = derive_seed(7, "compressibility");
        assert_ne!(s1, s2);
        // and stable:
        assert_eq!(s1, derive_seed(7, "addresses"));
    }

    #[test]
    fn splitmix_covers_bits() {
        let mut st = 0u64;
        let mut or_acc = 0u64;
        for _ in 0..64 {
            or_acc |= splitmix64(&mut st);
        }
        assert_eq!(or_acc, u64::MAX);
    }
}
