//! Simulated-time and byte-size newtypes.
//!
//! All timing in the workspace is virtual: devices report service times in
//! nanoseconds and the discrete-event engine advances a [`SimTime`] clock.
//! Using a newtype (instead of bare `u64`) keeps nanoseconds from being
//! confused with microsecond trace timestamps or byte counts.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Virtual time in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as the initial "next event" placeholder.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from a floating-point number of seconds (trace timestamps).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e9).round().max(0.0) as u64)
    }

    /// Nanoseconds since time zero.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since time zero (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since time zero (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as floating point.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful for "time until" computations.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

/// A byte count with human-readable formatting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Construct from raw bytes.
    #[inline]
    pub const fn bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Construct from kibibytes.
    #[inline]
    pub const fn kib(k: u64) -> Self {
        ByteSize(k * KIB)
    }

    /// Construct from mebibytes.
    #[inline]
    pub const fn mib(m: u64) -> Self {
        ByteSize(m * MIB)
    }

    /// Construct from gibibytes.
    #[inline]
    pub const fn gib(g: u64) -> Self {
        ByteSize(g * GIB)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Number of whole pages of `page_size` bytes this size covers.
    #[inline]
    pub const fn pages(self, page_size: u64) -> u64 {
        self.0 / page_size
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2}GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2}MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{}B", b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!((a * 3).as_micros(), 30);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn simtime_display_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn bytesize_display_and_pages() {
        assert_eq!(format!("{}", ByteSize::bytes(100)), "100B");
        assert_eq!(format!("{}", ByteSize::kib(4)), "4.00KiB");
        assert_eq!(format!("{}", ByteSize::gib(1)), "1.00GiB");
        assert_eq!(ByteSize::mib(1).pages(4096), 256);
    }

    #[test]
    fn simtime_negative_f64_clamps() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }
}
