//! Fast, non-cryptographic 64-bit hashing.
//!
//! The cache maps logical block addresses to cache sets with a cheap mixing
//! hash (the paper: "DAZ pages are located in cache sets via hash
//! functions"). SipHash would dominate the simulator profile, so we use the
//! finalizer from MurmurHash3 (`fmix64`), which has full avalanche behaviour
//! and costs a handful of ALU ops.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

/// MurmurHash3 `fmix64` finalizer: a bijective mix with full avalanche.
///
/// Because it is bijective, distinct LBAs never collide before the modulo
/// by the set count, which keeps set occupancy balanced for both sequential
/// and strided workloads.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Combine two 64-bit values into one hash (used for (disk, lba) keys).
#[inline]
pub fn mix64_pair(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b).rotate_left(32))
}

/// A `std::hash::Hasher` wrapper around [`mix64`] for integer-keyed maps.
///
/// Only suitable for keys that feed at most 16 bytes; it folds everything
/// into a single u64 with multiply-rotate steps (FxHash-style) and applies
/// the fmix64 finalizer at the end.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
#[derive(Default, Clone, Copy)]
pub struct FastHasherBuilder;

impl std::hash::BuildHasher for FastHasherBuilder {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashMap` keyed with the fast hasher; the workhorse map of the caches.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastHasherBuilder>;

/// A `HashSet` using the fast hasher.
pub type FastSet<K> = std::collections::HashSet<K, FastHasherBuilder>;

/// Fold `data` into a CRC-32 (IEEE 802.3) running state.
///
/// `state` is the raw (pre-inverted) register; start from `!0` and finish
/// with a final inversion, or use [`crc32`] for the one-shot form. The
/// incremental form lets the metadata log checksum a page header and body
/// that are not contiguous in memory.
#[inline]
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

/// One-shot CRC-32 (IEEE 802.3) of `data`.
#[inline]
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn mix64_is_bijective_on_sample() {
        // Bijectivity can't be tested exhaustively; check no collisions on a
        // dense range, which is the pattern cache-set indexing sees.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip ~half the output bits.
        let base = mix64(0xdead_beef);
        for bit in 0..64 {
            let flipped = mix64(0xdead_beef ^ (1u64 << bit));
            let dist = (base ^ flipped).count_ones();
            assert!((12..=52).contains(&dist), "poor avalanche at bit {bit}: {dist}");
        }
    }

    #[test]
    fn pair_hash_differs_by_order() {
        assert_ne!(mix64_pair(1, 2), mix64_pair(2, 1));
    }

    #[test]
    fn fast_map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE 802.3 test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental form must agree with the one-shot form over a split.
        let data = b"keeping data and deltas";
        let split = crc32_update(crc32_update(!0, &data[..7]), &data[7..]);
        assert_eq!(!split, crc32(data));
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let page = vec![0x5Au8; 512];
        let good = crc32(&page);
        for byte in [0usize, 100, 511] {
            let mut bad = page.clone();
            bad[byte] ^= 1;
            assert_ne!(crc32(&bad), good, "flip at byte {byte} undetected");
        }
    }

    #[test]
    fn hasher_distributes_sequential_keys() {
        let b = FastHasherBuilder;
        let mut buckets = [0u32; 16];
        for i in 0..16_000u64 {
            let mut h = b.build_hasher();
            h.write_u64(i);
            buckets[(h.finish() % 16) as usize] += 1;
        }
        for &c in &buckets {
            assert!((800..1200).contains(&c), "skewed bucket: {c}");
        }
    }
}
