//! Streaming statistics for simulation measurements.
//!
//! The evaluation reports averages (response time), ratios (hit ratio,
//! metadata-I/O fraction) and, for analysis, latency distributions. All
//! accumulators here are streaming/O(1)-memory except [`Histogram`], which
//! uses logarithmic buckets (HdrHistogram-style) for percentile queries.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A hit/total ratio counter (hit ratio, metadata fraction, ...).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RatioCounter {
    hits: u64,
    total: u64,
}

impl RatioCounter {
    /// Record one event, hit or miss.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        self.hits += hit as u64;
    }

    /// Add `n` hits out of `n` events.
    #[inline]
    pub fn add_hits(&mut self, n: u64) {
        self.hits += n;
        self.total += n;
    }

    /// Add `n` misses out of `n` events.
    #[inline]
    pub fn add_misses(&mut self, n: u64) {
        self.total += n;
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Events so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// hits/total, 0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merge another counter.
    pub fn merge(&mut self, other: &RatioCounter) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Log-bucketed histogram for latency percentiles.
///
/// Values are bucketed with ~4.2 % relative resolution (16 sub-buckets per
/// power of two), covering `1..2^40` ns — sub-nanosecond to ~18 minutes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: vec![0; (40 << SUB_BITS) as usize], count: 0, sum: 0, max: 0 }
    }

    #[inline]
    fn index(value: u64) -> usize {
        let v = value.max(1);
        let exp = 63 - v.leading_zeros() as u64; // floor(log2 v)
        let sub = if exp >= SUB_BITS as u64 {
            (v >> (exp - SUB_BITS as u64)) & (SUB - 1)
        } else {
            (v << (SUB_BITS as u64 - exp)) & (SUB - 1)
        };
        (((exp << SUB_BITS) | sub) as usize).min((40 << SUB_BITS) as usize - 1)
    }

    /// Representative (upper-bound) value of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        let exp = (i as u64) >> SUB_BITS;
        let sub = (i as u64) & (SUB - 1);
        if exp >= SUB_BITS as u64 {
            ((SUB + sub) << (exp - SUB_BITS as u64))
                .saturating_add((1 << (exp.saturating_sub(SUB_BITS as u64))) - 1)
        } else {
            (SUB + sub) >> (SUB_BITS as u64 - exp)
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`0.0..=1.0`), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(Self::bucket_value(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_mean_var() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn streaming_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = StreamingStats::new();
        xs.iter().for_each(|&x| all.record(x));
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        xs[..300].iter().for_each(|&x| a.record(x));
        xs[300..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let empty = StreamingStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn ratio_counter_basics() {
        let mut r = RatioCounter::default();
        assert_eq!(r.ratio(), 0.0);
        r.record(true);
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 4);
        assert!((r.ratio() - 0.75).abs() < 1e-12);
        r.add_misses(4);
        assert!((r.ratio() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_roughly_correct() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((4500..=5600).contains(&p50), "p50={p50}");
        assert!((9300..=10_000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), Some(10_000));
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        h.record(0); // clamps to bucket for 1
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(0)); // min(max)=0
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100 {
            a.record(v);
        }
        for v in 901..=1000 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let p50 = a.quantile(0.5).unwrap();
        assert!(p50 <= 110, "p50={p50}");
        assert!(a.quantile(0.9).unwrap() >= 900);
    }

    #[test]
    fn histogram_huge_values_clamped() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        // Values beyond the bucket range land in the final bucket; the
        // quantile is a lower bound but must stay within the covered range.
        let q = h.quantile(0.5).unwrap();
        assert!(q >= 1u64 << 39, "q={q}");
    }
}
