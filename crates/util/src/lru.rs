//! An intrusive, index-based LRU list.
//!
//! The set-associative cache keeps one recency list per cache set. A
//! pointer-based `LinkedList` would cost an allocation per entry and chase
//! pointers on every touch; instead [`LruList`] stores `prev`/`next` as
//! `u32` indices into a contiguous slab, so a "touch" is a few cache-line
//! reads. Slots are managed by the caller (they are the cache-page indices
//! themselves), which keeps the list fully intrusive.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    prev: u32,
    next: u32,
    linked: bool,
}

impl Default for Node {
    fn default() -> Self {
        Node { prev: NIL, next: NIL, linked: false }
    }
}

/// Intrusive LRU over externally-owned slots `0..capacity`.
///
/// Front = most recently used; back = least recently used.
#[derive(Clone, Debug, Default)]
pub struct LruList {
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    /// Create a list able to track slots `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity < NIL as usize, "capacity exceeds u32 index space");
        LruList { nodes: vec![Node::default(); capacity], head: NIL, tail: NIL, len: 0 }
    }

    /// Number of linked slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is linked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `slot` is currently linked.
    #[inline]
    pub fn contains(&self, slot: usize) -> bool {
        self.nodes.get(slot).is_some_and(|n| n.linked)
    }

    /// Grow tracking capacity (new slots start unlinked).
    pub fn grow(&mut self, capacity: usize) {
        assert!(capacity < NIL as usize);
        if capacity > self.nodes.len() {
            self.nodes.resize(capacity, Node::default());
        }
    }

    /// Link `slot` at the MRU position.
    ///
    /// # Panics
    /// Panics if the slot is already linked or out of range.
    pub fn push_front(&mut self, slot: usize) {
        let idx = slot as u32;
        let node = &mut self.nodes[slot];
        assert!(!node.linked, "slot {slot} already linked");
        node.linked = true;
        node.prev = NIL;
        node.next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
    }

    /// Unlink `slot` from the list.
    ///
    /// # Panics
    /// Panics if the slot is not linked.
    pub fn remove(&mut self, slot: usize) {
        let node = self.nodes[slot];
        assert!(node.linked, "slot {slot} not linked");
        if node.prev != NIL {
            self.nodes[node.prev as usize].next = node.next;
        } else {
            self.head = node.next;
        }
        if node.next != NIL {
            self.nodes[node.next as usize].prev = node.prev;
        } else {
            self.tail = node.prev;
        }
        self.nodes[slot] = Node::default();
        self.len -= 1;
    }

    /// Move an already-linked slot to the MRU position.
    pub fn touch(&mut self, slot: usize) {
        if self.head == slot as u32 {
            return;
        }
        self.remove(slot);
        self.push_front(slot);
    }

    /// The LRU slot, if any.
    #[inline]
    pub fn back(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail as usize)
    }

    /// The MRU slot, if any.
    #[inline]
    pub fn front(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head as usize)
    }

    /// Unlink and return the LRU slot.
    pub fn pop_back(&mut self) -> Option<usize> {
        let slot = self.back()?;
        self.remove(slot);
        Some(slot)
    }

    /// Iterate slots from LRU to MRU (eviction order).
    pub fn iter_lru(&self) -> LruIter<'_> {
        LruIter { list: self, cur: self.tail, reverse: true }
    }

    /// Iterate slots from MRU to LRU.
    pub fn iter_mru(&self) -> LruIter<'_> {
        LruIter { list: self, cur: self.head, reverse: false }
    }
}

/// A bounded recency set of keys ("ghost" entries): remembers the most
/// recent `capacity` distinct keys without storing any data. Used by
/// LARC-style lazy admission — a page is admitted to the cache only on
/// its second miss within the ghost window.
#[derive(Debug, Clone)]
pub struct GhostList {
    capacity: usize,
    queue: std::collections::VecDeque<(u64, u64)>,
    live: crate::hash::FastMap<u64, u64>,
    gen: u64,
}

impl GhostList {
    /// A ghost list remembering up to `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        GhostList {
            capacity: capacity.max(1),
            queue: std::collections::VecDeque::new(),
            live: crate::hash::FastMap::default(),
            gen: 0,
        }
    }

    /// Number of remembered keys.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether `key` is remembered.
    pub fn contains(&self, key: u64) -> bool {
        self.live.contains_key(&key)
    }

    /// Remember `key` (refreshing it if present), evicting the oldest
    /// entry beyond capacity.
    pub fn insert(&mut self, key: u64) {
        self.gen += 1;
        self.live.insert(key, self.gen);
        self.queue.push_back((key, self.gen));
        while self.live.len() > self.capacity {
            // Lazily pop stale queue entries until a live victim emerges.
            let Some((k, g)) = self.queue.pop_front() else { break };
            if self.live.get(&k) == Some(&g) {
                self.live.remove(&k);
            }
        }
    }

    /// Forget `key` (it got admitted to the real cache).
    pub fn remove(&mut self, key: u64) -> bool {
        self.live.remove(&key).is_some()
    }
}

/// Iterator over linked slots of an [`LruList`].
pub struct LruIter<'a> {
    list: &'a LruList,
    cur: u32,
    reverse: bool,
}

impl Iterator for LruIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cur == NIL {
            return None;
        }
        let slot = self.cur as usize;
        let node = self.list.nodes[slot];
        self.cur = if self.reverse { node.prev } else { node.next };
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_touch_pop_order() {
        let mut l = LruList::with_capacity(4);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        // LRU order now: 0, 1, 2
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), vec![0, 1, 2]);
        l.touch(0); // 0 becomes MRU
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), vec![1, 2, 0]);
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(0));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::with_capacity(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.remove(1);
        assert_eq!(l.iter_lru().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!l.contains(1));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = LruList::with_capacity(2);
        l.push_front(0);
        l.push_front(1);
        l.touch(1);
        assert_eq!(l.front(), Some(1));
        assert_eq!(l.back(), Some(0));
    }

    #[test]
    fn grow_preserves_links() {
        let mut l = LruList::with_capacity(1);
        l.push_front(0);
        l.grow(3);
        l.push_front(2);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_push_panics() {
        let mut l = LruList::with_capacity(1);
        l.push_front(0);
        l.push_front(0);
    }

    #[test]
    #[should_panic(expected = "not linked")]
    fn remove_unlinked_panics() {
        let mut l = LruList::with_capacity(1);
        l.remove(0);
    }

    #[test]
    fn single_element_list() {
        let mut l = LruList::with_capacity(1);
        l.push_front(0);
        assert_eq!(l.front(), l.back());
        assert_eq!(l.len(), 1);
        l.remove(0);
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }
}
