//! Statistical samplers used by the workload generators.
//!
//! * [`Zipf`] — Zipfian ranks, used by the FIO-equivalent closed-loop
//!   generator (`zipf:1.0001` in the paper, §IV-B3) and by the synthetic
//!   trace regenerators to give requests temporal locality.
//! * [`Gaussian`] / [`ClampedGaussian`] — the paper models per-write delta
//!   compression ratios as Gaussian with mean 50 %, 25 % or 12 % (§IV-A2);
//!   we clamp to a sane range since a ratio is in (0, 1].
//!
//! Both are implemented from the published algorithms rather than pulled
//! from `rand_distr` so that the exact model is visible in this repository.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use rand::{Rng, RngExt};

/// Zipf-distributed ranks over `1..=n` with exponent `s`, via
/// rejection-inversion (Hörmann & Derflinger, "Rejection-inversion to
/// generate variates with monotone discrete densities", 1996).
///
/// This is O(1) per sample independent of `n`, which matters because the
/// trace generators draw from populations of ~10^6 pages.
///
/// # Examples
///
/// ```
/// use kdd_util::sampler::Zipf;
/// use kdd_util::rng::seeded_rng;
///
/// let zipf = Zipf::new(1000, 1.0001); // the paper's FIO distribution
/// let mut rng = seeded_rng(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    q: f64,
}

impl Zipf {
    /// Create a sampler over ranks `1..=n` with exponent `s > 0`, `s != 1`
    /// handled uniformly with the `s == 1` limit.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0` or either is non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf population must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
        let n = n as f64;
        let h_x1 = Self::h(1.5, s) - 1.0;
        let h_n = Self::h(n + 0.5, s);
        let q = 2.0 - Self::h_inv(Self::h(2.5, s) - (2.0f64).powf(-s), s);
        Zipf { n, s, h_x1, h_n, q }
    }

    /// H(x) = integral of x^-s: (x^(1-s) - 1)/(1-s), with the log limit at s=1.
    fn h(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    /// Inverse of [`Self::h`].
    fn h_inv(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s))
        }
    }

    /// Draw one rank in `1..=n`. Rank 1 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_x1 + rng.random::<f64>() * (self.h_n - self.h_x1);
            let x = Self::h_inv(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if (k - x).abs() <= self.q || u >= Self::h(k + 0.5, self.s) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

/// A Gaussian (normal) sampler using the Marsaglia polar method.
#[derive(Debug, Clone)]
pub struct Gaussian {
    mean: f64,
    stddev: f64,
    spare: Option<f64>,
}

impl Gaussian {
    /// Create a sampler with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `stddev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, stddev: f64) -> Self {
        assert!(stddev >= 0.0 && stddev.is_finite() && mean.is_finite());
        Gaussian { mean, stddev, spare: None }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.stddev * z;
        }
        loop {
            let u = 2.0 * rng.random::<f64>() - 1.0;
            let v = 2.0 * rng.random::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return self.mean + self.stddev * (u * f);
            }
        }
    }
}

/// A Gaussian clamped to `[lo, hi]` — the paper's delta-compressibility model.
///
/// The paper assumes "delta compression ratio values follow Gaussian
/// distribution with an average equaling 50%, 25%, and 12%". A ratio outside
/// (0, 1] is meaningless, so samples are clamped. We follow TRAP-Array /
/// Delta-FTL convention and use `stddev = mean / 4` unless overridden.
#[derive(Debug, Clone)]
pub struct ClampedGaussian {
    inner: Gaussian,
    lo: f64,
    hi: f64,
}

impl ClampedGaussian {
    /// Gaussian with explicit bounds.
    pub fn new(mean: f64, stddev: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi);
        ClampedGaussian { inner: Gaussian::new(mean, stddev), lo, hi }
    }

    /// The paper's compressibility model for a given mean ratio:
    /// `stddev = mean/4`, clamped to `[1/page, 1.0]` — a delta can never be
    /// smaller than one byte nor larger than the page itself.
    pub fn compress_ratio(mean: f64) -> Self {
        Self::new(mean, mean / 4.0, 1.0 / 4096.0, 1.0)
    }

    /// Draw one clamped sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn zipf_rank1_most_popular() {
        let z = Zipf::new(1000, 1.0001);
        let mut rng = seeded_rng(1);
        let mut counts = vec![0u32; 1001];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[100]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zipf_within_range() {
        for s in [0.6, 0.99, 1.0, 1.0001, 1.5, 2.0] {
            let z = Zipf::new(50, s);
            let mut rng = seeded_rng(2);
            for _ in 0..10_000 {
                let k = z.sample(&mut rng);
                assert!((1..=50).contains(&k), "s={s} k={k}");
            }
        }
    }

    #[test]
    fn zipf_alpha_controls_skew() {
        let mut rng = seeded_rng(3);
        let skewed = Zipf::new(10_000, 1.5);
        let flat = Zipf::new(10_000, 0.6);
        let top_frac = |z: &Zipf, rng: &mut rand::rngs::StdRng| {
            let mut top = 0u32;
            for _ in 0..50_000 {
                if z.sample(rng) <= 100 {
                    top += 1;
                }
            }
            top as f64 / 50_000.0
        };
        let fs = top_frac(&skewed, &mut rng);
        let ff = top_frac(&flat, &mut rng);
        assert!(fs > ff, "skewed {fs} should exceed flat {ff}");
    }

    #[test]
    fn zipf_single_element() {
        let z = Zipf::new(1, 1.2);
        let mut rng = seeded_rng(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut g = Gaussian::new(10.0, 2.0);
        let mut rng = seeded_rng(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "stddev {}", var.sqrt());
    }

    #[test]
    fn clamped_gaussian_stays_in_bounds() {
        let mut g = ClampedGaussian::compress_ratio(0.12);
        let mut rng = seeded_rng(6);
        let mut sum = 0.0;
        for _ in 0..50_000 {
            let x = g.sample(&mut rng);
            assert!(x > 0.0 && x <= 1.0);
            sum += x;
        }
        let mean = sum / 50_000.0;
        assert!((mean - 0.12).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_stddev_is_constant() {
        let mut g = Gaussian::new(3.5, 0.0);
        let mut rng = seeded_rng(7);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 3.5);
        }
    }
}
