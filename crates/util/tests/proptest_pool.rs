//! Property test: page recycling never leaks stale bytes — every
//! [`PagePool::acquire`] returns an all-zero page regardless of the
//! acquire/release interleaving and however dirty released pages were.

use kdd_util::PagePool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recycling_never_leaks_stale_bytes(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..200),
        page_size in 1usize..256,
    ) {
        let mut pool = PagePool::with_capacity(page_size, 8);
        let mut held: Vec<Box<[u8]>> = Vec::new();
        for (acquire, fill) in ops {
            if acquire || held.is_empty() {
                let mut page = pool.acquire();
                prop_assert_eq!(page.len(), page_size);
                prop_assert!(page.iter().all(|&b| b == 0), "stale bytes leaked");
                page.fill(fill); // dirty the page before giving it back
                held.push(page);
            } else if let Some(page) = held.pop() {
                pool.release(page);
            }
        }
        let (acquired, recycled) = pool.stats();
        prop_assert!(recycled <= acquired);
    }
}
