//! Model-based property tests for the utility data structures: the
//! intrusive LRU list against a `VecDeque` reference, and the ghost list
//! against an ordered map.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use kdd_util::lru::{GhostList, LruList};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum LruOp {
    Push(usize),
    Touch(usize),
    Remove(usize),
    PopBack,
}

fn lru_ops(slots: usize) -> impl Strategy<Value = LruOp> {
    prop_oneof![
        3 => (0..slots).prop_map(LruOp::Push),
        3 => (0..slots).prop_map(LruOp::Touch),
        2 => (0..slots).prop_map(LruOp::Remove),
        1 => Just(LruOp::PopBack),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The intrusive list behaves exactly like a VecDeque of slots
    /// (front = MRU, back = LRU) under arbitrary operation sequences.
    #[test]
    fn lru_matches_deque_model(
        slots in 1usize..24,
        script in proptest::collection::vec(lru_ops(24), 0..200),
    ) {
        let mut lru = LruList::with_capacity(slots);
        let mut model: VecDeque<usize> = VecDeque::new(); // front = MRU
        for op in &script {
            match op {
                LruOp::Push(s) if *s < slots
                    && !model.contains(s) => {
                        lru.push_front(*s);
                        model.push_front(*s);
                    }
                LruOp::Touch(s) if *s < slots
                    && model.contains(s) => {
                        lru.touch(*s);
                        model.retain(|x| x != s);
                        model.push_front(*s);
                    }
                LruOp::Remove(s) if *s < slots
                    && model.contains(s) => {
                        lru.remove(*s);
                        model.retain(|x| x != s);
                    }
                LruOp::PopBack => {
                    prop_assert_eq!(lru.pop_back(), model.pop_back());
                }
                _ => {}
            }
            prop_assert_eq!(lru.len(), model.len());
            prop_assert_eq!(lru.front(), model.front().copied());
            prop_assert_eq!(lru.back(), model.back().copied());
        }
        // Full-order agreement at the end.
        let got: Vec<usize> = lru.iter_mru().collect();
        let expect: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(got, expect);
        let got_rev: Vec<usize> = lru.iter_lru().collect();
        let expect_rev: Vec<usize> = model.iter().rev().copied().collect();
        prop_assert_eq!(got_rev, expect_rev);
    }

    /// The ghost list remembers exactly the most recent `capacity`
    /// distinct keys.
    #[test]
    fn ghost_list_keeps_recent_keys(
        capacity in 1usize..16,
        keys in proptest::collection::vec(0u64..32, 1..200),
    ) {
        let mut ghost = GhostList::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new(); // front = oldest
        for &k in &keys {
            model.retain(|&x| x != k);
            model.push_back(k);
            while model.len() > capacity {
                model.pop_front();
            }
            ghost.insert(k);
            prop_assert_eq!(ghost.len(), model.len());
        }
        for &k in &model {
            prop_assert!(ghost.contains(k), "recent key {} forgotten", k);
        }
        for k in 0u64..32 {
            if !model.contains(&k) {
                prop_assert!(!ghost.contains(k), "stale key {} remembered", k);
            }
        }
    }

    /// Removing an admitted key leaves the rest intact.
    #[test]
    fn ghost_remove_is_precise(keys in proptest::collection::vec(0u64..16, 1..60)) {
        let mut ghost = GhostList::new(8);
        for &k in &keys {
            ghost.insert(k);
        }
        let victim = keys[keys.len() / 2];
        let had = ghost.contains(victim);
        prop_assert_eq!(ghost.remove(victim), had);
        prop_assert!(!ghost.contains(victim));
    }
}
