//! # KDD — an endurable SSD cache for parity RAID
//!
//! A full Rust reproduction of *"Improving RAID Performance Using an
//! Endurable SSD Cache"* (ICPP 2016). KDD ("Keeping Data and Deltas")
//! attacks two problems at once:
//!
//! 1. **The small-write problem.** Every in-place update to RAID-5 costs
//!    two reads and two writes (old data + old parity in, new data + new
//!    parity out). On a write *hit*, KDD ships the data to the array with
//!    [`write_no_parity_update`](kdd_raid::RaidArray::write_no_parity_update)
//!    — one disk write — and repairs the parity later in a background
//!    cleaner.
//! 2. **SSD wear.** Caches absorb far more writes than their backing
//!    stores and wear out MLC flash in months. Instead of rewriting the
//!    whole 4 KiB page (write-through) or keeping a second full copy
//!    (LeavO), KDD stores only the *compressed XOR delta* of the old and
//!    new versions, packed many-to-a-page into its Delta Zone.
//!
//! ## Crate map
//!
//! | Re-export | Crate | What it is |
//! |---|---|---|
//! | [`policy`], [`engine`] | `kdd-core` | the KDD algorithm: accounting & real-byte forms |
//! | [`cache`] | `kdd-cache` | cache framework + WT/WA/WB/LeavO baselines |
//! | [`raid`] | `kdd-raid` | RAID-0/5/6 with delayed-parity interfaces |
//! | [`blockdev`] | `kdd-blockdev` | HDD model, NAND/FTL SSD with wear, NVRAM |
//! | [`delta`] | `kdd-delta` | XOR deltas, the compressor, content generators |
//! | [`trace`] | `kdd-trace` | trace parsers + the paper's workloads |
//! | [`sim`] | `kdd-sim` | open/closed-loop timing simulation |
//! | [`obs`] | `kdd-obs` | deterministic metrics, spans, snapshots |
//! | [`util`] | `kdd-util` | stats, samplers, LRU, hashing |
//!
//! ## Quickstart
//!
//! ```
//! use kdd::prelude::*;
//!
//! // A 5-disk RAID-5 with a KDD-managed SSD cache, all in memory.
//! let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 64);
//! let raid = RaidArray::new(layout, 4096);
//! let cache_pages = 128;
//! let ssd = SsdDevice::with_logical_capacity((cache_pages + 32) * 4096, 4096, 0.07);
//! let geometry = CacheGeometry { total_pages: cache_pages, ways: 8, page_size: 4096 };
//! let mut engine = KddEngine::new(KddConfig::new(geometry), ssd, raid).unwrap();
//!
//! // Write a page twice: the second write takes the delta path.
//! let v1 = vec![7u8; 4096];
//! engine.write(42, &v1).unwrap();
//! let mut v2 = v1.clone();
//! v2[100..132].fill(9); // a small update — high content locality
//! engine.write(42, &v2).unwrap();
//!
//! let (data, _t) = engine.read(42).unwrap();
//! assert_eq!(data, v2);
//! assert!(engine.raid().stale_row_count() > 0, "parity is delayed");
//! engine.flush().unwrap();
//! assert_eq!(engine.raid().stale_row_count(), 0, "cleaner repaired it");
//! ```

pub use kdd_blockdev as blockdev;
pub use kdd_cache as cache;
pub use kdd_core as core;
pub use kdd_delta as delta;
pub use kdd_obs as obs;
pub use kdd_raid as raid;
pub use kdd_sim as sim;
pub use kdd_trace as trace;
pub use kdd_util as util;

pub use kdd_core::{engine, policy};

/// The names most programs need.
pub mod prelude {
    pub use kdd_blockdev::{
        FaultDomain, FaultInjector, FaultKind, FaultPlan, FlashGeometry, FlashTimings, HddModel,
        SsdDevice,
    };
    pub use kdd_cache::policies::{CachePolicy, RaidModel};
    pub use kdd_cache::setassoc::CacheGeometry;
    pub use kdd_cache::stats::CacheStats;
    pub use kdd_core::engine::{EngineMode, KddEngine, WriteRequest};
    pub use kdd_core::{KddConfig, KddPolicy};
    pub use kdd_delta::model::{DeltaSizeModel, FixedDeltaModel, GaussianDeltaModel};
    pub use kdd_obs::{Recorder, RecorderConfig};
    pub use kdd_raid::{Layout, RaidArray, RaidLevel};
    pub use kdd_sim::{build_policy, replay_open_loop, run_closed_loop, PolicyKind, ServiceModel};
    pub use kdd_trace::fio::{FioConfig, FioWorkload};
    pub use kdd_trace::synth::PaperTrace;
    pub use kdd_trace::{Op, Trace, TraceRecord, TraceStats};
    pub use kdd_util::units::{ByteSize, SimTime};
}
