//! DEZ fragmentation regression: under a hot Zipf write stream the
//! pressure-driven compactor must keep the Delta Zone's footprint close
//! to its live payload instead of letting mostly-dead pages pin cache
//! slots.
use kdd_cache::policies::{CachePolicy, RaidModel};
use kdd_cache::setassoc::CacheGeometry;
use kdd_core::{KddConfig, KddPolicy};
use kdd_delta::model::FixedDeltaModel;
use kdd_trace::record::Op;
use kdd_util::rng::seeded_rng;
use kdd_util::sampler::Zipf;

#[test]
fn dez_footprint_stays_bounded() {
    let g = CacheGeometry { total_pages: 200, ways: 50, page_size: 4096 };
    let mut p = KddPolicy::new(
        KddConfig::new(g),
        RaidModel::paper_default(100_000),
        Box::new(FixedDeltaModel::new(0.5)),
    );
    let zipf = Zipf::new(966, 0.95);
    let mut rng = seeded_rng(3);
    for i in 0..20_000u64 {
        let lba = zipf.sample(&mut rng) - 1;
        let op = if i % 5 == 0 { Op::Read } else { Op::Write };
        p.access(op, lba);
        if i > 4000 && i % 1000 == 0 {
            // At a fixed 50% ratio, perfectly packed DEZ pages hold two
            // deltas; fragmentation must never exceed ~2x the ideal.
            let ideal = p.old_pages().div_ceil(2);
            assert!(
                p.delta_pages() <= ideal * 2 + 4,
                "i={i}: {} DEZ pages for {} old pages (ideal {ideal})",
                p.delta_pages(),
                p.old_pages()
            );
        }
    }
    assert!(p.stats().hit_ratio() > 0.25, "hit {}", p.stats().hit_ratio());
    assert!(p.stats().cleanings > 0);
}
