//! Model-based property tests: the circular metadata log against a plain
//! `HashMap` reference, under arbitrary insert/tombstone interleavings
//! and partition sizes.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use kdd_core::metalog::{KeyEntry, LogEntry, MetaLog};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u64),
    Del(u64),
    Flush,
}

fn ops(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..keys).prop_map(Op::Put),
        2 => (0..keys).prop_map(Op::Del),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// recover_live() always equals the reference map, regardless of how
    /// GC shuffled entries between pages.
    #[test]
    fn log_matches_hashmap_model(
        partition in 4u64..32,
        epp in 1usize..8,
        script in proptest::collection::vec(ops(24), 1..200),
    ) {
        // Keep the live set well under partition capacity to avoid the
        // (detected) livelock regime.
        let keys = ((partition * epp as u64) / 2).clamp(1, 24);
        let mut log = MetaLog::new(partition, epp);
        let mut model: HashMap<u64, bool> = HashMap::new();
        for op in &script {
            match op {
                Op::Put(k) => {
                    let k = k % keys;
                    log.push(KeyEntry { key: k, tombstone: false });
                    model.insert(k, true);
                }
                Op::Del(k) => {
                    let k = k % keys;
                    log.push(KeyEntry { key: k, tombstone: true });
                    model.remove(&k);
                }
                Op::Flush => {
                    log.flush();
                }
            }
            prop_assert!(log.used_pages() <= log.partition_pages());
        }
        let mut live: Vec<u64> = log.recover_live().iter().map(|e| e.key()).collect();
        live.sort_unstable();
        let mut expect: Vec<u64> = model.keys().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(live, expect);
    }

    /// `latest_entry` always reflects the newest push for each key.
    #[test]
    fn latest_entry_is_newest(
        script in proptest::collection::vec(ops(12), 1..120),
    ) {
        let mut log = MetaLog::new(16, 4);
        let mut model: HashMap<u64, bool> = HashMap::new(); // key -> tombstoned?
        for op in &script {
            match op {
                Op::Put(k) => {
                    log.push(KeyEntry { key: *k, tombstone: false });
                    model.insert(*k, false);
                }
                Op::Del(k) => {
                    log.push(KeyEntry { key: *k, tombstone: true });
                    model.insert(*k, true);
                }
                Op::Flush => {
                    log.flush();
                }
            }
        }
        for (k, tombstoned) in model {
            match log.latest_entry(k) {
                Some(e) => prop_assert_eq!(e.tombstone, tombstoned, "key {}", k),
                // A tombstone may have been GC-dropped entirely — that is
                // equivalent to "no entry".
                None => prop_assert!(tombstoned, "live key {} lost", k),
            }
        }
    }

    /// Counters are monotone and usage is bounded; commits land on
    /// partition-relative slots.
    #[test]
    fn invariants_hold_under_churn(
        partition in 2u64..16,
        keys in 1u64..8,
        n in 1usize..300,
    ) {
        let mut log = MetaLog::new(partition, 2);
        let mut last_tail = 0;
        for i in 0..n {
            let k = (i as u64) % keys;
            // Alternate put/delete so the live set stays tiny (no
            // livelock even for 2-page partitions).
            let tomb = i % 2 == 1;
            for c in log.push(KeyEntry { key: k, tombstone: tomb }) {
                prop_assert!(c.slot < partition);
                prop_assert!(c.seq >= last_tail);
                last_tail = c.seq;
                prop_assert!(!c.entries.is_empty());
            }
            let (head, tail) = log.counters();
            prop_assert!(head <= tail);
            prop_assert!(tail - head <= partition);
        }
    }
}

/// Torn-tail recovery across wraparound: simulate the flash partition as a
/// slot map that only holds batches the writer got to persist; the
/// youngest (unconfirmed) batches may be torn away or half-written.
/// Replaying flash + the NVRAM in-flight copies must reconstruct exactly
/// the reference map — every batch lands whole or not at all.
mod torn_tail {
    use super::*;
    use kdd_core::metalog::CommitBatch;

    fn recover(
        log: &MetaLog<KeyEntry>,
        flash: &HashMap<u64, (u64, Vec<KeyEntry>)>,
        partition: u64,
    ) -> Result<Vec<u64>, String> {
        let (head, tail) = log.counters();
        let mut state: HashMap<u64, bool> = HashMap::new();
        for seq in head..tail {
            let slot = seq % partition;
            // A flash page is valid for this window position only if it
            // carries the expected sequence number (our stand-in for the
            // real CRC + seq check in the engine's recovery).
            let entries = match flash.get(&slot) {
                Some((s, e)) if *s == seq => e.clone(),
                _ => {
                    let healed = log.unconfirmed().iter().find(|b| b.seq == seq);
                    match healed {
                        Some(b) => b.entries.clone(),
                        None => return Err(format!("seq {seq} torn with no in-flight copy")),
                    }
                }
            };
            for e in entries {
                state.insert(e.key, e.tombstone);
            }
        }
        // NVRAM survives power loss: the buffer (which includes live
        // entries GC pushed back) is newer than anything on flash.
        for e in log.buffered_snapshot() {
            state.insert(e.key, e.tombstone);
        }
        let mut live: Vec<u64> =
            state.into_iter().filter_map(|(k, tomb)| (!tomb).then_some(k)).collect();
        live.sort_unstable();
        Ok(live)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn torn_tail_recovers_from_inflight_copies(
            partition in 4u64..20,
            epp in 1usize..6,
            script in proptest::collection::vec(super::ops(16), 1..220),
            unconfirmed_tail in 0usize..3,
            tear in 0u8..2,
        ) {
            let keys = ((partition * epp as u64) / 2).clamp(1, 16);
            let mut log = MetaLog::new(partition, epp);
            log.enable_inflight_tracking();
            let mut model: HashMap<u64, bool> = HashMap::new();
            let mut produced: Vec<CommitBatch<KeyEntry>> = Vec::new();
            let drive = |log: &mut MetaLog<KeyEntry>, op: &Op, model: &mut HashMap<u64, bool>| {
                match op {
                    Op::Put(k) => {
                        let k = k % keys;
                        model.insert(k, true);
                        log.push(KeyEntry { key: k, tombstone: false })
                    }
                    Op::Del(k) => {
                        let k = k % keys;
                        model.remove(&(k));
                        log.push(KeyEntry { key: k, tombstone: true })
                    }
                    Op::Flush => log.flush(),
                }
            };
            for op in &script {
                produced.extend(drive(&mut log, op, &mut model));
            }
            // Make sure buffered entries are on their way to flash too.
            produced.extend(log.flush());

            // "Persist" batches in order. The last `unconfirmed_tail`
            // batches never get confirmed; if `tear` is set, the very last
            // of those never reaches flash at all (torn page).
            let confirm_upto = produced.len().saturating_sub(unconfirmed_tail);
            let mut flash: HashMap<u64, (u64, Vec<KeyEntry>)> = HashMap::new();
            for (i, batch) in produced.iter().enumerate() {
                let torn = tear == 1 && unconfirmed_tail > 0 && i == produced.len() - 1;
                if !torn {
                    flash.insert(batch.slot, (batch.seq, batch.entries.clone()));
                }
                if i < confirm_upto {
                    log.confirm(batch.seq);
                }
            }

            // Everything in the recovery window that is missing from flash
            // must be healable from the NVRAM in-flight list.
            let live = recover(&log, &flash, partition);
            prop_assert!(live.is_ok(), "{}", live.unwrap_err());
            let mut expect: Vec<u64> = model.keys().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(live.unwrap(), expect);

            // And the in-flight list never retains confirmed batches.
            for b in log.unconfirmed() {
                prop_assert!(
                    produced[confirm_upto..].iter().any(|p| p.seq == b.seq),
                    "confirmed batch seq {} still in-flight", b.seq
                );
            }
        }
    }
}
