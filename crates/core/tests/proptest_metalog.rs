//! Model-based property tests: the circular metadata log against a plain
//! `HashMap` reference, under arbitrary insert/tombstone interleavings
//! and partition sizes.

use kdd_core::metalog::{KeyEntry, LogEntry, MetaLog};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u64),
    Del(u64),
    Flush,
}

fn ops(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..keys).prop_map(Op::Put),
        2 => (0..keys).prop_map(Op::Del),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// recover_live() always equals the reference map, regardless of how
    /// GC shuffled entries between pages.
    #[test]
    fn log_matches_hashmap_model(
        partition in 4u64..32,
        epp in 1usize..8,
        script in proptest::collection::vec(ops(24), 1..200),
    ) {
        // Keep the live set well under partition capacity to avoid the
        // (detected) livelock regime.
        let keys = ((partition * epp as u64) / 2).clamp(1, 24);
        let mut log = MetaLog::new(partition, epp);
        let mut model: HashMap<u64, bool> = HashMap::new();
        for op in &script {
            match op {
                Op::Put(k) => {
                    let k = k % keys;
                    log.push(KeyEntry { key: k, tombstone: false });
                    model.insert(k, true);
                }
                Op::Del(k) => {
                    let k = k % keys;
                    log.push(KeyEntry { key: k, tombstone: true });
                    model.remove(&k);
                }
                Op::Flush => {
                    log.flush();
                }
            }
            prop_assert!(log.used_pages() <= log.partition_pages());
        }
        let mut live: Vec<u64> = log.recover_live().iter().map(|e| e.key()).collect();
        live.sort_unstable();
        let mut expect: Vec<u64> = model.keys().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(live, expect);
    }

    /// `latest_entry` always reflects the newest push for each key.
    #[test]
    fn latest_entry_is_newest(
        script in proptest::collection::vec(ops(12), 1..120),
    ) {
        let mut log = MetaLog::new(16, 4);
        let mut model: HashMap<u64, bool> = HashMap::new(); // key -> tombstoned?
        for op in &script {
            match op {
                Op::Put(k) => {
                    log.push(KeyEntry { key: *k, tombstone: false });
                    model.insert(*k, false);
                }
                Op::Del(k) => {
                    log.push(KeyEntry { key: *k, tombstone: true });
                    model.insert(*k, true);
                }
                Op::Flush => {
                    log.flush();
                }
            }
        }
        for (k, tombstoned) in model {
            match log.latest_entry(k) {
                Some(e) => prop_assert_eq!(e.tombstone, tombstoned, "key {}", k),
                // A tombstone may have been GC-dropped entirely — that is
                // equivalent to "no entry".
                None => prop_assert!(tombstoned, "live key {} lost", k),
            }
        }
    }

    /// Counters are monotone and usage is bounded; commits land on
    /// partition-relative slots.
    #[test]
    fn invariants_hold_under_churn(
        partition in 2u64..16,
        keys in 1u64..8,
        n in 1usize..300,
    ) {
        let mut log = MetaLog::new(partition, 2);
        let mut last_tail = 0;
        for i in 0..n {
            let k = (i as u64) % keys;
            // Alternate put/delete so the live set stays tiny (no
            // livelock even for 2-page partitions).
            let tomb = i % 2 == 1;
            for c in log.push(KeyEntry { key: k, tombstone: tomb }) {
                prop_assert!(c.slot < partition);
                prop_assert!(c.seq >= last_tail);
                last_tail = c.seq;
                prop_assert!(!c.entries.is_empty());
            }
            let (head, tail) = log.counters();
            prop_assert!(head <= tail);
            prop_assert!(tail - head <= partition);
        }
    }
}
