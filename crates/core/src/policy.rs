//! KDD as a [`CachePolicy`]: the trace-driven accounting implementation
//! used by the simulation experiments (Figures 4–8).
//!
//! The full §III algorithm, state machine and all:
//!
//! * **DAZ/DEZ dynamic zoning** — data pages hash into cache sets
//!   (stripe-aligned); DEZ pages are allocated on demand from the set with
//!   the fewest delta pages, so the split adapts to the workload;
//! * **write hits** — the data goes to RAID *without* a parity update; the
//!   compressed delta (size drawn from the configured
//!   [`DeltaSizeModel`]) is staged in NVRAM, coalescing per page, and
//!   committed compactly into one DEZ page when the staging buffer fills;
//! * **metadata** — mapping changes feed the circular persistent log
//!   ([`MetaLog`]); write hits log nothing until their delta commits;
//! * **cleaning** — threshold-triggered: each stale row is repaired by
//!   reconstruct-write when every data page of the row is cached, else by
//!   read-modify-write on the stale parity, after which *old* pages are
//!   reclaimed and their deltas invalidated (the paper's "second scheme",
//!   §III-D);
//! * **eviction** — only *clean* pages are evictable; *old* and *delta*
//!   pages leave only through the cleaner.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::config::KddConfig;
use crate::metalog::{KeyEntry, MetaLog};
use crate::staging::StagingBuffer;
use kdd_cache::effects::{AccessOutcome, Effects};
use kdd_cache::nvbuf::ENTRY_BYTES;
use kdd_cache::policies::{CachePolicy, PendingRows, RaidModel};
use kdd_cache::setassoc::{InsertOutcome, PageState, SetAssocCache};
use kdd_cache::stats::CacheStats;
use kdd_delta::model::DeltaSizeModel;
use kdd_trace::record::Op;
use kdd_util::hash::FastMap;
use kdd_util::lru::GhostList;

/// Synthetic slot ids for statically-partitioned DEZ pages (kept above
/// any real directory slot).
const FIXED_DEZ_BASE: u32 = u32::MAX / 2;

/// One DEZ page's live contents (for the accounting simulator: sizes
/// only).
#[derive(Debug, Clone, Default)]
struct DezPage {
    deltas: FastMap<u64, u32>,
    bytes: u32,
}

/// Where a page's current delta lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaLoc {
    /// Still in the NVRAM staging buffer.
    Staged,
    /// Packed into the DEZ page at this slot.
    Dez(u32),
}

/// The KDD cache-management policy (accounting mode).
///
/// # Examples
///
/// ```
/// use kdd_cache::policies::{CachePolicy, RaidModel};
/// use kdd_cache::setassoc::CacheGeometry;
/// use kdd_core::{KddConfig, KddPolicy};
/// use kdd_delta::model::FixedDeltaModel;
/// use kdd_trace::Op;
///
/// let geometry = CacheGeometry { total_pages: 128, ways: 16, page_size: 4096 };
/// let raid = RaidModel::paper_default(100_000);
/// let mut kdd = KddPolicy::new(
///     KddConfig::new(geometry),
///     raid,
///     Box::new(FixedDeltaModel::new(0.25)),
/// );
///
/// kdd.access(Op::Write, 7);                 // miss: conventional parity write
/// let hit = kdd.access(Op::Write, 7);       // hit: the KDD delta path
/// assert!(hit.hit);
/// assert_eq!(hit.foreground.raid_writes, 1, "data only — no parity I/O");
/// assert_eq!(hit.foreground.ssd_data_writes, 0, "delta staged in NVRAM");
/// kdd.flush();                              // cleaner repairs stale parity
/// ```
pub struct KddPolicy {
    cache: SetAssocCache,
    raid: RaidModel,
    model: Box<dyn DeltaSizeModel>,
    staging: StagingBuffer<u32>,
    metalog: MetaLog<KeyEntry>,
    pending: PendingRows,
    /// lba → current delta location (exists iff the page is *old*).
    delta_loc: FastMap<u64, DeltaLoc>,
    /// DEZ slot → its still-valid deltas (lba → compressed size).
    dez: FastMap<u32, DezPage>,
    stats: CacheStats,
    config: KddConfig,
    old_pages: u64,
    delta_pages: u64,
    /// Total live (valid) delta bytes across all DEZ pages.
    dez_bytes: u64,
    /// LARC-style ghost list (lazy admission extension).
    ghost: Option<GhostList>,
    /// Fixed-partition mode: remaining reserved DEZ slots and the next
    /// synthetic DEZ id (ids live above the directory's slot range).
    fixed_dez_free: u64,
    next_fixed_dez_id: u32,
}

impl KddPolicy {
    /// Build a KDD cache with the given delta-compressibility model.
    pub fn new(config: KddConfig, raid: RaidModel, model: Box<dyn DeltaSizeModel>) -> Self {
        let grouping = if config.stripe_aligned_sets {
            raid.set_grouping()
        } else {
            kdd_cache::setassoc::SetGrouping::Pages(1)
        };
        let epp = (config.geometry.page_size / ENTRY_BYTES).max(1) as usize;
        // Fixed DEZ partitioning shrinks the directory to the DAZ share
        // and puts the reserved slots in a simple pool.
        let mut geometry = config.geometry;
        let mut fixed_dez = 0u64;
        if let Some(f) = config.fixed_dez_fraction {
            assert!((0.0..1.0).contains(&f), "DEZ fraction must be in [0,1)");
            fixed_dez = (geometry.total_pages as f64 * f) as u64;
            geometry.total_pages = (geometry.total_pages - fixed_dez).max(1);
        }
        KddPolicy {
            cache: SetAssocCache::new_grouped(geometry, grouping),
            raid,
            model,
            staging: StagingBuffer::new(config.staging_bytes),
            metalog: MetaLog::new(config.meta_partition_pages(), epp),
            pending: PendingRows::default(),
            delta_loc: FastMap::default(),
            dez: FastMap::default(),
            stats: CacheStats::default(),
            config,
            old_pages: 0,
            delta_pages: 0,
            dez_bytes: 0,
            ghost: config
                .lazy_admission
                .then(|| GhostList::new(config.geometry.total_pages as usize)),
            fixed_dez_free: fixed_dez,
            next_fixed_dez_id: FIXED_DEZ_BASE,
        }
    }

    /// Pages currently in the *old* state.
    pub fn old_pages(&self) -> u64 {
        self.old_pages
    }

    /// DEZ pages currently allocated.
    pub fn delta_pages(&self) -> u64 {
        self.delta_pages
    }

    /// Metadata-log snapshot (pages written, GC reclaims).
    pub fn metalog_pages_written(&self) -> u64 {
        self.metalog.pages_written()
    }

    // ---- metadata ---------------------------------------------------------

    fn log_alloc(&mut self, lba: u64, fx: &mut Effects) {
        fx.ssd_meta_writes +=
            self.metalog.push(KeyEntry { key: lba, tombstone: false }).len() as u32;
        if !self.config.nvram_batching {
            fx.ssd_meta_writes += self.metalog.flush().len() as u32;
        }
    }

    fn log_free(&mut self, lba: u64, fx: &mut Effects) {
        fx.ssd_meta_writes +=
            self.metalog.push(KeyEntry { key: lba, tombstone: true }).len() as u32;
        if !self.config.nvram_batching {
            fx.ssd_meta_writes += self.metalog.flush().len() as u32;
        }
    }

    // ---- delta plumbing ----------------------------------------------------

    /// Invalidate whatever delta `lba` currently has.
    fn invalidate_delta(&mut self, lba: u64) {
        match self.delta_loc.remove(&lba) {
            Some(DeltaLoc::Staged) => {
                self.staging.remove(lba);
            }
            Some(DeltaLoc::Dez(slot)) => {
                // A missing page or delta entry is an accounting bug; skip
                // the invalidation (the mapping is already gone) rather
                // than panicking mid-write.
                let Some(page) = self.dez.get_mut(&slot) else {
                    debug_assert!(false, "DEZ accounting broken");
                    return;
                };
                let Some(size) = page.deltas.remove(&lba) else {
                    debug_assert!(false, "delta index broken");
                    return;
                };
                page.bytes -= size;
                self.dez_bytes -= size as u64;
                // "the DEZ page cannot be freed until the valid count
                // reaches zero" — and then it is.
                if page.deltas.is_empty() {
                    self.dez.remove(&slot);
                    self.free_dez_slot(slot);
                }
            }
            None => {}
        }
    }

    fn free_dez_slot(&mut self, slot: u32) {
        if slot >= FIXED_DEZ_BASE {
            self.fixed_dez_free += 1;
        } else {
            self.cache.free_slot(slot);
        }
        self.delta_pages -= 1;
    }

    /// Pack the staged deltas into one DEZ page and commit it. The commit
    /// also performs log-structured compaction: if the new page has slack
    /// and existing DEZ pages have decayed (rewrites invalidated most of
    /// their deltas), the emptiest pages' live deltas ride along and their
    /// slots are freed — keeping DEZ space utilisation high.
    fn commit_staging(&mut self, fx: &mut Effects) {
        if self.staging.is_empty() {
            return;
        }
        let slot = match self.alloc_dez_slot(fx) {
            Some(s) => s,
            None => {
                // Cache completely pinned even after cleaning — commit is
                // impossible; keep deltas staged (caller's insert will
                // still fit because cleaning drained the staging buffer).
                return;
            }
        };
        let drained = self.staging.drain();
        debug_assert!(!drained.is_empty());
        let mut page = DezPage::default();
        fx.ssd_delta_writes += 1;
        // Mapping entries for the affected old pages are logged only now
        // (§III-C): the (lba_dez, off, len) tuple is finally known.
        for (lba, size) in drained {
            page.bytes += size;
            self.dez_bytes += size as u64;
            page.deltas.insert(lba, size);
            self.delta_loc.insert(lba, DeltaLoc::Dez(slot));
            self.log_alloc(lba, fx);
        }
        self.dez.insert(slot, page);
    }

    /// Log-structured DEZ garbage collection: rewrites invalidate deltas
    /// in place, so page utilisation decays. Compaction is *pressure
    /// driven*: it only runs when pinned pages approach the cleaning
    /// trigger or a DEZ allocation fails — idle fragmentation is free,
    /// but under space pressure each merge (read two pages, rewrite one,
    /// free the other) buys back a cache slot.
    fn compact_dez(&mut self, fx: &mut Effects) {
        let ps = self.config.geometry.page_size as u64;
        while self.delta_pages >= 4 && self.dez_bytes * 100 < self.delta_pages * ps * 85 {
            // The two emptiest pages.
            let mut pages: Vec<(u32, u32)> = self.dez.iter().map(|(&s, p)| (s, p.bytes)).collect();
            pages.sort_by_key(|&(_, b)| b);
            let (dst, db) = pages[0];
            let (src, sb) = pages[1];
            if db as u64 + sb as u64 > ps {
                break; // nothing merges; utilisation is as good as it gets
            }
            // Both keys were just sampled from `dez`, so the lookups hold
            // unless the index is corrupt — then stop compacting.
            let Some(spage) = self.dez.remove(&src) else {
                debug_assert!(false, "DEZ index corrupt: src page vanished");
                break;
            };
            fx.ssd_reads += 2; // read both victims
            fx.ssd_delta_writes += 1; // rewrite the merged page
            let Some(dpage) = self.dez.get_mut(&dst) else {
                debug_assert!(false, "DEZ index corrupt: dst page vanished");
                self.dez.insert(src, spage); // undo: keep the live deltas reachable
                break;
            };
            for (lba, size) in spage.deltas {
                dpage.bytes += size;
                dpage.deltas.insert(lba, size);
                self.delta_loc.insert(lba, DeltaLoc::Dez(dst));
            }
            // Every delta in the merged page moved (new offsets): their
            // mapping entries are re-logged.
            let moved: Vec<u64> = self.dez[&dst].deltas.keys().copied().collect();
            for lba in moved {
                self.log_alloc(lba, fx);
            }
            self.free_dez_slot(src);
        }
    }

    fn alloc_dez_slot(&mut self, fx: &mut Effects) -> Option<u32> {
        if self.config.fixed_dez_fraction.is_some() {
            if self.fixed_dez_free == 0 {
                self.compact_dez(fx); // try to reclaim partition slots
            }
            if self.fixed_dez_free > 0 {
                self.fixed_dez_free -= 1;
                self.delta_pages += 1;
                let id = self.next_fixed_dez_id;
                self.next_fixed_dez_id = self.next_fixed_dez_id.wrapping_add(1).max(FIXED_DEZ_BASE);
                return Some(id);
            }
            return None; // the static partition is full — that's the point
        }
        if let Some(slot) = self.cache.alloc_delta_slot() {
            self.delta_pages += 1;
            return Some(slot);
        }
        self.compact_dez(fx);
        if let Some(slot) = self.cache.alloc_delta_slot() {
            self.delta_pages += 1;
            return Some(slot);
        }
        // No free slot anywhere: evict a clean page to make room (clean
        // pages are always sacrificeable — the data is on RAID).
        let victim = self
            .cache
            .iter_mapped()
            .find(|&(_, _, s)| s == PageState::Clean)
            .map(|(slot, lba, _)| (slot, lba));
        if let Some((slot, lba)) = victim {
            self.cache.free_slot(slot);
            self.stats.evictions += 1;
            self.log_free(lba, fx);
            if let Some(slot) = self.cache.alloc_delta_slot() {
                self.delta_pages += 1;
                return Some(slot);
            }
        }
        None
    }

    // ---- cleaning -----------------------------------------------------------

    /// Repair every stale row and reclaim old/delta pages (§III-D).
    fn clean_all(&mut self) -> Effects {
        let mut fx = Effects::default();
        while let Some(row) = self.pending.oldest_row() {
            fx += self.clean_row(row);
        }
        self.stats.cleanings += 1;
        fx
    }

    /// Threshold cleaning: work oldest-stale-row first and stop just
    /// under the trigger. Reclaiming only the longest-stale rows keeps the
    /// victims cold (§III-D's premise) while recently-written hot pages
    /// keep their delta path.
    fn clean_some(&mut self) -> Effects {
        let mut fx = Effects::default();
        let low = self.config.clean_trigger_slots() * 7 / 8;
        while self.old_pages + self.delta_pages > low {
            let Some(row) = self.pending.oldest_row() else { break };
            fx += self.clean_row(row);
        }
        self.stats.cleanings += 1;
        fx
    }

    /// Repair one stale row and reclaim its pages.
    fn clean_row(&mut self, row: u64) -> Effects {
        let mut fx = Effects::default();
        {
            let lpns = self.raid.row_lpns(row);
            // Reconstruct-write only when every data page of the row is in
            // SSD (clean or old+delta).
            let reconstruct = lpns.iter().all(|&l| self.cache.lookup(l).is_some());
            if reconstruct {
                // Read the row's pages from SSD to XOR (cheap, parallel).
                fx.ssd_reads += lpns.len() as u32;
                fx.ssd_read_rounds += 1;
            }
            fx += self.raid.parity_update_effects(reconstruct);
            self.stats.parity_updates += 1;
            for lba in self.pending.take_row(row) {
                // Decompress this page's delta (from NVRAM or DEZ).
                if let Some(DeltaLoc::Dez(_)) = self.delta_loc.get(&lba) {
                    if !reconstruct {
                        fx.ssd_reads += 1;
                    }
                }
                fx.decompressions += 1;
                self.invalidate_delta(lba);
                if let Some(slot) = self.cache.lookup(lba) {
                    if self.cache.state(slot) != PageState::Old {
                        continue; // degraded to write-through meanwhile
                    }
                    if self.config.reclaim_as_clean {
                        // First scheme (§III-D): combine old + delta and
                        // rewrite as a clean page — extra SSD program per
                        // victim, future write hits keep the delta path.
                        self.cache.set_state(slot, PageState::Clean);
                        self.old_pages -= 1;
                        fx.ssd_data_writes += 1;
                        self.log_alloc(lba, &mut fx);
                    } else {
                        // Second scheme: "simply reclaims the old pages"
                        // — the paper's choice.
                        self.cache.free_slot(slot);
                        self.old_pages -= 1;
                        self.log_free(lba, &mut fx);
                    }
                }
            }
        }
        fx
    }

    /// Lazy-admission filter (LARC extension): a missed page is admitted
    /// only on its second miss within the ghost window. Always admits
    /// when the extension is off (the paper's configuration).
    fn admit(&mut self, lba: u64) -> bool {
        match &mut self.ghost {
            None => true,
            Some(g) => {
                if g.remove(lba) {
                    true // second miss: admit
                } else {
                    g.insert(lba);
                    false // first miss: remember only
                }
            }
        }
    }

    fn maybe_clean(&mut self, bg: &mut Effects) {
        let trigger = self.config.clean_trigger_slots();
        let pinned = self.old_pages + self.delta_pages;
        // Space pressure builds: first squeeze fragmentation out of the
        // DEZ (cheap, preserves the delta path), then clean rows.
        if pinned * 4 >= trigger * 3 {
            *bg += {
                let mut fx = Effects::default();
                self.compact_dez(&mut fx);
                fx
            };
        }
        if self.old_pages + self.delta_pages >= trigger {
            *bg += self.clean_some();
        }
    }

    /// Insert a clean page with clean-only eviction. A fully-pinned set is
    /// unpinned one pending row at a time (oldest first) until the insert
    /// fits — minimal reclaim, so hot old pages keep their delta path.
    /// Returns false only when the set is pinned and holds no pending
    /// rows to clean (the fill is then bypassed).
    fn insert_clean_or_bypass(&mut self, lba: u64, fx: &mut Effects, bg: &mut Effects) -> bool {
        loop {
            match self.cache.insert(lba, PageState::Clean, |s| s == PageState::Clean) {
                InsertOutcome::Inserted { .. } => return true,
                InsertOutcome::Evicted { victim_lba, .. } => {
                    self.stats.evictions += 1;
                    self.log_free(victim_lba, fx);
                    return true;
                }
                InsertOutcome::NoRoom => {
                    let set = self.cache.set_of_lba(lba);
                    if !self.clean_one_row_in_set(set, bg) {
                        return false;
                    }
                }
            }
        }
    }

    /// Clean the oldest pending row whose pages map to `set`. Returns
    /// false when none exists.
    fn clean_one_row_in_set(&mut self, set: usize, bg: &mut Effects) -> bool {
        let row = self.pending.row_ids().into_iter().find(|&row| {
            self.raid.row_lpns(row).first().is_some_and(|&l| self.cache.set_of_lba(l) == set)
        });
        match row {
            Some(row) => {
                *bg += self.clean_row(row);
                self.stats.cleanings += 1;
                true
            }
            None => false,
        }
    }
}

impl CachePolicy for KddPolicy {
    fn name(&self) -> String {
        format!("KDD-{}%", (self.model.mean_ratio() * 100.0).round() as u32)
    }

    fn access(&mut self, op: Op, lba: u64) -> AccessOutcome {
        let mut fx = Effects::default();
        let mut bg = Effects::default();
        let page_size = self.config.geometry.page_size;
        let hit = match (op, self.cache.lookup(lba)) {
            (Op::Read, Some(slot)) => {
                self.cache.touch(slot);
                match self.cache.state(slot) {
                    PageState::Old => {
                        // Combine old data + latest delta. Data and delta
                        // are fetched concurrently over distinct channels.
                        match self.delta_loc.get(&lba) {
                            Some(DeltaLoc::Dez(_)) => {
                                fx.ssd_reads += 2;
                                fx.ssd_read_rounds += 1;
                            }
                            _ => {
                                // Delta still in NVRAM: one flash read.
                                fx.ssd_reads += 1;
                                fx.ssd_read_rounds += 1;
                            }
                        }
                        fx.decompressions += 1;
                    }
                    _ => fx += Effects::ssd_read(),
                }
                true
            }
            (Op::Read, None) => {
                fx += self.raid.read_effects();
                if self.admit(lba) && self.insert_clean_or_bypass(lba, &mut fx, &mut bg) {
                    fx.ssd_data_writes += 1;
                    self.log_alloc(lba, &mut fx);
                }
                false
            }
            (Op::Write, Some(slot)) => {
                // THE KDD WRITE HIT: data to RAID without parity update;
                // compressed delta staged in NVRAM.
                self.cache.touch(slot);
                if self.cache.state(slot) == PageState::Clean {
                    self.cache.set_state(slot, PageState::Old);
                    self.old_pages += 1;
                }
                let size = self.model.delta_size(page_size);
                fx.compressions += 1;
                self.invalidate_delta(lba);
                if !self.staging.fits(lba, &size) {
                    self.commit_staging(&mut fx);
                }
                if self.staging.fits(lba, &size) {
                    self.staging.insert(lba, size);
                    self.delta_loc.insert(lba, DeltaLoc::Staged);
                    fx += self.raid.data_write_effects();
                    self.pending.add(self.raid.row_of(lba), lba);
                } else {
                    // Could not commit (cache fully pinned even after
                    // cleaning): degrade this request to write-through —
                    // full parity write, refresh the cached copy, no
                    // pending delta.
                    if let Some(slot) = self.cache.lookup(lba) {
                        self.cache.set_state(slot, PageState::Clean);
                        self.old_pages -= 1;
                    }
                    self.pending.remove(self.raid.row_of(lba), lba);
                    fx.ssd_data_writes += 1;
                    fx += self.raid.small_write_effects();
                }
                self.maybe_clean(&mut bg);
                true
            }
            (Op::Write, None) => {
                // Conventional write miss: cache in DAZ, parity updated
                // the normal way (§III-A).
                if self.admit(lba) && self.insert_clean_or_bypass(lba, &mut fx, &mut bg) {
                    fx.ssd_data_writes += 1;
                    self.log_alloc(lba, &mut fx);
                }
                fx += self.raid.small_write_effects();
                false
            }
        };
        let mut outcome = AccessOutcome::new(hit, fx);
        outcome.background = bg;
        self.stats.record(op == Op::Read, &outcome);
        outcome
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn idle_tick(&mut self) -> Effects {
        // A bounded batch of oldest-stale rows per idle period: repeated
        // idleness drains the backlog without a latency cliff when load
        // resumes.
        let mut fx = Effects::default();
        for _ in 0..16 {
            let Some(row) = self.pending.oldest_row() else { break };
            fx += self.clean_row(row);
        }
        if self.pending.pending_rows() == 0 {
            self.commit_staging(&mut fx);
        }
        self.stats.cleanings += 1;
        self.stats.ssd_meta_writes += fx.ssd_meta_writes as u64;
        self.stats.ssd_data_writes += fx.ssd_data_writes as u64;
        self.stats.ssd_delta_writes += fx.ssd_delta_writes as u64;
        self.stats.ssd_reads += fx.ssd_reads as u64;
        self.stats.raid_reads += fx.raid_reads as u64;
        self.stats.raid_writes += fx.raid_writes as u64;
        fx
    }

    fn flush(&mut self) -> Effects {
        let mut fx = self.clean_all();
        // Anything still staged gets committed, then the metadata buffer
        // itself is flushed.
        self.commit_staging(&mut fx);
        fx.ssd_meta_writes += self.metalog.flush().len() as u32;
        self.stats.ssd_meta_writes += fx.ssd_meta_writes as u64;
        self.stats.ssd_data_writes += fx.ssd_data_writes as u64;
        self.stats.ssd_delta_writes += fx.ssd_delta_writes as u64;
        self.stats.ssd_reads += fx.ssd_reads as u64;
        self.stats.raid_reads += fx.raid_reads as u64;
        self.stats.raid_writes += fx.raid_writes as u64;
        fx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdd_cache::setassoc::CacheGeometry;
    use kdd_delta::model::{FixedDeltaModel, GaussianDeltaModel};

    fn kdd(pages: u64, ratio: f64) -> KddPolicy {
        let g = CacheGeometry { total_pages: pages, ways: 8.min(pages as u32), page_size: 4096 };
        KddPolicy::new(
            KddConfig::new(g),
            RaidModel::paper_default(100_000),
            Box::new(FixedDeltaModel::new(ratio)),
        )
    }

    #[test]
    fn write_hit_skips_parity_and_ssd_data_write() {
        let mut p = kdd(64, 0.25);
        p.access(Op::Write, 5); // miss: conventional
        let w = p.access(Op::Write, 5); // hit: the KDD path
        assert!(w.hit);
        assert_eq!(w.foreground.raid_writes, 1, "data only");
        assert_eq!(w.foreground.raid_reads, 0, "no parity read");
        assert_eq!(w.foreground.ssd_data_writes, 0, "no page program on write hit");
        assert_eq!(w.foreground.compressions, 1);
        assert_eq!(p.old_pages(), 1);
    }

    #[test]
    fn staging_commits_one_dez_page_per_fill() {
        let mut p = kdd(256, 0.25); // 1024-byte deltas, 4 per page
                                    // Warm 8 pages then rewrite them: 8 deltas = 2 DEZ commits.
        for lba in 0..8 {
            p.access(Op::Write, lba);
        }
        let mut delta_writes = 0;
        for lba in 0..8 {
            let w = p.access(Op::Write, lba);
            delta_writes += w.total().ssd_delta_writes;
        }
        // Four 1 KiB deltas fill the 4 KiB staging buffer exactly; the
        // fifth insert forces the one commit, the remaining four stay
        // staged in NVRAM.
        assert_eq!(delta_writes, 1, "one packed DEZ commit");
        assert_eq!(p.delta_pages(), 1);
        assert_eq!(p.staging.len(), 4, "rest still staged");
    }

    #[test]
    fn delta_coalescing_keeps_newest_only() {
        let mut p = kdd(256, 0.12);
        p.access(Op::Write, 7);
        for _ in 0..50 {
            p.access(Op::Write, 7);
        }
        // 12% deltas: 8 fit a page, but coalescing means the staging
        // buffer never fills from one hot page.
        assert_eq!(p.delta_pages(), 0, "coalesced rewrites must not commit");
        assert_eq!(p.old_pages(), 1);
    }

    #[test]
    fn read_hit_on_old_reads_data_plus_delta() {
        let mut p = kdd(256, 0.5); // big deltas: 2 per page
        p.access(Op::Write, 1);
        p.access(Op::Write, 2);
        p.access(Op::Write, 1); // delta staged
        let r = p.access(Op::Read, 1);
        assert!(r.hit);
        assert_eq!(r.foreground.ssd_reads, 1, "delta still in NVRAM");
        assert_eq!(r.foreground.decompressions, 1);
        // Push the delta into DEZ, then read again.
        p.access(Op::Write, 2);
        p.access(Op::Write, 3);
        p.access(Op::Write, 3); // hit → stages; buffer (2×2048) overflows → commit
        let r2 = p.access(Op::Read, 1);
        assert_eq!(r2.foreground.ssd_reads, 2, "data + DEZ delta");
        assert_eq!(r2.foreground.ssd_read_rounds, 1, "fetched in parallel");
    }

    #[test]
    fn cleaning_reclaims_old_and_delta_pages() {
        // One 64-way set so every page is cacheable; explicit threshold
        // of 30% = 19 slots so the hot set crosses it.
        let g = CacheGeometry { total_pages: 64, ways: 64, page_size: 4096 };
        let mut cfg = KddConfig::new(g);
        cfg.clean_threshold = 0.30;
        let mut p = KddPolicy::new(
            cfg,
            RaidModel::paper_default(100_000),
            Box::new(FixedDeltaModel::new(0.25)),
        );
        for lba in 0..32u64 {
            p.access(Op::Write, lba);
        }
        for lba in 0..32u64 {
            p.access(Op::Write, lba); // hits: old pages + deltas accumulate
        }
        assert!(p.stats().cleanings > 0, "threshold cleaning never fired");
        assert!(p.old_pages() + p.delta_pages() <= 20, "cleaner must bound pinned pages");
        assert!(p.stats().parity_updates > 0);
    }

    #[test]
    fn flush_drains_everything() {
        let mut p = kdd(256, 0.25);
        for lba in 0..16 {
            p.access(Op::Write, lba);
            p.access(Op::Write, lba);
        }
        p.flush();
        assert_eq!(p.old_pages(), 0);
        assert_eq!(p.delta_pages(), 0);
        assert!(p.staging.is_empty());
    }

    #[test]
    fn metadata_fraction_is_small() {
        let g = CacheGeometry { total_pages: 4096, ways: 64, page_size: 4096 };
        let mut p = KddPolicy::new(
            KddConfig::new(g),
            RaidModel::paper_default(1_000_000),
            Box::new(GaussianDeltaModel::new(0.25, 1)),
        );
        let mut rng_state = 12345u64;
        for i in 0..60_000u64 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lba = (rng_state >> 33) % 8192;
            let op = if i % 3 == 0 { Op::Read } else { Op::Write };
            p.access(op, lba);
        }
        p.flush();
        let frac = p.stats().metadata_fraction();
        assert!(frac < 0.05, "metadata fraction too high: {frac}");
        assert!(p.metalog_pages_written() > 0);
    }

    #[test]
    fn traffic_scales_with_content_locality() {
        // KDD-12% must write less to the SSD than KDD-50% on the same
        // workload — the Figure 6 ordering.
        let run = |ratio: f64| {
            let mut p = kdd(512, ratio);
            let mut x = 9u64;
            for _ in 0..40_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let lba = (x >> 40) % 1024;
                p.access(Op::Write, lba);
            }
            p.flush();
            p.stats().ssd_writes_pages()
        };
        let t12 = run(0.12);
        let t25 = run(0.25);
        let t50 = run(0.50);
        assert!(t12 < t25, "KDD-12 {t12} !< KDD-25 {t25}");
        assert!(t25 < t50, "KDD-25 {t25} !< KDD-50 {t50}");
    }

    #[test]
    fn beats_write_through_on_write_hits() {
        use kdd_cache::policies::WriteThrough;
        let g = CacheGeometry { total_pages: 512, ways: 8, page_size: 4096 };
        let raid = RaidModel::paper_default(100_000);
        let mut kddp =
            KddPolicy::new(KddConfig::new(g), raid, Box::new(FixedDeltaModel::new(0.25)));
        let mut wt = WriteThrough::new(g, raid);
        let mut x = 77u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lba = (x >> 40) % 600;
            kddp.access(Op::Write, lba);
            wt.access(Op::Write, lba);
        }
        kddp.flush();
        wt.flush();
        let k = kddp.stats().ssd_writes_pages();
        let w = wt.stats().ssd_writes_pages();
        assert!(k < w, "KDD {k} must write less than WT {w}");
        // And hit ratio is close to (slightly below) WT's.
        assert!(kddp.stats().hit_ratio() <= wt.stats().hit_ratio() + 0.02);
        assert!(kddp.stats().hit_ratio() > wt.stats().hit_ratio() - 0.25);
    }

    #[test]
    fn lazy_admission_filters_one_hit_wonders() {
        let g = CacheGeometry { total_pages: 256, ways: 64, page_size: 4096 };
        let raid = RaidModel::paper_default(1_000_000);
        let mut cfg = KddConfig::new(g);
        cfg.lazy_admission = true;
        let mut lazy = KddPolicy::new(cfg, raid, Box::new(FixedDeltaModel::new(0.25)));
        let mut eager = kdd(256, 0.25);
        // A scan of one-hit wonders plus a small hot set accessed twice.
        for i in 0..4000u64 {
            let scan = 1000 + i; // never repeats
            lazy.access(Op::Read, scan);
            eager.access(Op::Read, scan);
            let hot = i % 16;
            lazy.access(Op::Write, hot);
            eager.access(Op::Write, hot);
        }
        lazy.flush();
        eager.flush();
        // The scan never pollutes the lazy cache: far fewer fill writes.
        assert!(
            lazy.stats().ssd_data_writes * 2 < eager.stats().ssd_data_writes,
            "lazy {} vs eager {}",
            lazy.stats().ssd_data_writes,
            eager.stats().ssd_data_writes
        );
        // And the hot set still hits.
        assert!(lazy.stats().write_hits > 3000, "hot set lost: {}", lazy.stats().write_hits);
    }

    #[test]
    fn idle_tick_drains_pending_in_batches() {
        let g = CacheGeometry { total_pages: 256, ways: 64, page_size: 4096 };
        let mut p = KddPolicy::new(
            KddConfig::new(g),
            RaidModel::paper_default(1_000_000),
            Box::new(FixedDeltaModel::new(0.12)),
        );
        // Spread writes over many rows so pending_rows >> one idle batch.
        for i in 0..120u64 {
            let lba = i * 64; // distinct stripes → distinct rows
            p.access(Op::Write, lba);
            p.access(Op::Write, lba);
        }
        let before = p.pending.pending_rows();
        assert!(before > 32, "need a backlog, got {before}");
        let fx = p.idle_tick();
        let after = p.pending.pending_rows();
        assert_eq!(before - after, 16, "one bounded batch per idle period");
        assert!(fx.raid_writes >= 16, "parity repaired for the batch");
        // Enough idle periods drain everything.
        for _ in 0..20 {
            p.idle_tick();
        }
        assert_eq!(p.pending.pending_rows(), 0);
        assert_eq!(p.old_pages(), 0);
    }

    #[test]
    fn name_reflects_locality_level() {
        assert_eq!(kdd(64, 0.12).name(), "KDD-12%");
        assert_eq!(kdd(64, 0.25).name(), "KDD-25%");
        assert_eq!(kdd(64, 0.5).name(), "KDD-50%");
    }
}
