//! KDD configuration knobs.

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use kdd_cache::setassoc::CacheGeometry;
use serde::{Deserialize, Serialize};

/// Tunables for a KDD cache instance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KddConfig {
    /// Cache shape (slots, associativity, page size).
    pub geometry: CacheGeometry,
    /// Fraction of cache slots occupied by *old* + *delta* pages that
    /// wakes the cleaning thread (§III-D: "when the total size of the
    /// old/delta pages exceeds a certain threshold").
    pub clean_threshold: f64,
    /// Metadata partition size as a fraction of the SSD's page count
    /// (Figure 4 sweeps 0.39 %–0.98 %; the paper settles on 0.59 %).
    pub meta_partition_frac: f64,
    /// NVRAM staging-buffer capacity in bytes (one flash page by default).
    pub staging_bytes: u32,
    /// Map pages of the same parity stripe to the same cache set (§III-B's
    /// spatial-locality optimisation). Ablation: off → per-page hashing.
    pub stripe_aligned_sets: bool,
    /// Batch metadata entries in NVRAM before committing page-sized
    /// batches (§III-B's motivation for the circular log). Ablation: off →
    /// every mapping change writes its own metadata page.
    pub nvram_batching: bool,
    /// After a parity update, combine old+delta into a fresh *clean* page
    /// (§III-D's first reclamation scheme) instead of simply reclaiming
    /// (the second scheme, the paper's choice). Ablation knob.
    pub reclaim_as_clean: bool,
    /// `Some(f)`: statically reserve fraction `f` of the cache for the
    /// Delta Zone instead of mixing DAZ/DEZ pages dynamically in each set
    /// — the design alternative §III-B rejects ("it is hard to determine
    /// the appropriate size of these zones"). Ablation knob.
    pub fixed_dez_fraction: Option<f64>,
    /// LARC-style lazy admission (§V-C: selective-allocation policies
    /// "are complementary to our KDD"): a missed page is only cached on
    /// its *second* miss within the ghost window, filtering one-hit
    /// wonders out of the allocation writes. Extension knob, off by
    /// default to match the paper.
    pub lazy_admission: bool,
}

impl KddConfig {
    /// Paper defaults for a given cache geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        KddConfig {
            geometry,
            clean_threshold: 0.90,
            meta_partition_frac: 0.0059,
            staging_bytes: geometry.page_size,
            stripe_aligned_sets: true,
            nvram_batching: true,
            reclaim_as_clean: false,
            fixed_dez_fraction: None,
            lazy_admission: false,
        }
    }

    /// Metadata partition size in pages (at least 2).
    pub fn meta_partition_pages(&self) -> u64 {
        ((self.geometry.total_pages as f64 * self.meta_partition_frac) as u64).max(2)
    }

    /// Cleaning trigger expressed in slots.
    pub fn clean_trigger_slots(&self) -> u64 {
        ((self.geometry.total_pages as f64 * self.clean_threshold) as u64).max(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let g = CacheGeometry { total_pages: 262_144, ways: 64, page_size: 4096 };
        let c = KddConfig::new(g);
        assert!((c.meta_partition_frac - 0.0059).abs() < 1e-12);
        assert_eq!(c.staging_bytes, 4096);
        // 0.59% of 262144 pages ≈ 1546 pages.
        assert_eq!(c.meta_partition_pages(), 1546);
        assert_eq!(c.clean_trigger_slots(), 235_929);
    }

    #[test]
    fn tiny_caches_get_floors() {
        let g = CacheGeometry { total_pages: 16, ways: 4, page_size: 4096 };
        let c = KddConfig::new(g);
        assert_eq!(c.meta_partition_pages(), 2);
        assert!(c.clean_trigger_slots() >= 4);
    }
}
