//! The NVRAM delta staging buffer (§III-B/C).
//!
//! "When a write request hits on a clean page in DAZ, the page state will
//! be changed to old and the delta is stored in a small staging buffer
//! which is managed in a FIFO manner. When the buffer is full, multiple
//! deltas are compacted into one page and committed to a DEZ page."
//!
//! Coalescing: "only the newest version of delta for one DAZ page is
//! maintained in the staging buffer" — a rewrite replaces the buffered
//! delta in place.
//!
//! The buffer is generic over the delta payload: the accounting simulator
//! stages only sizes, the prototype engine stages real compressed bytes.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd_util::hash::FastMap;

/// A payload with a known staged size.
pub trait DeltaPayload {
    /// Bytes this delta occupies in the staging buffer / DEZ page.
    fn nbytes(&self) -> u32;
}

impl DeltaPayload for u32 {
    fn nbytes(&self) -> u32 {
        *self
    }
}

impl DeltaPayload for Vec<u8> {
    fn nbytes(&self) -> u32 {
        self.len() as u32
    }
}

/// FIFO staging buffer with per-key coalescing and a byte budget.
#[derive(Debug, Clone)]
pub struct StagingBuffer<P> {
    capacity_bytes: u32,
    used_bytes: u32,
    /// FIFO of (key, payload); holes (None) left by coalescing/removal.
    fifo: Vec<Option<(u64, P)>>,
    index: FastMap<u64, usize>,
}

impl<P: DeltaPayload> StagingBuffer<P> {
    /// A buffer holding up to `capacity_bytes` of compressed deltas
    /// (one flash page in the paper).
    pub fn new(capacity_bytes: u32) -> Self {
        assert!(capacity_bytes > 0);
        StagingBuffer { capacity_bytes, used_bytes: 0, fifo: Vec::new(), index: FastMap::default() }
    }

    /// Byte budget.
    pub fn capacity_bytes(&self) -> u32 {
        self.capacity_bytes
    }

    /// Bytes currently staged.
    pub fn used_bytes(&self) -> u32 {
        self.used_bytes
    }

    /// Number of staged deltas.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether a delta for `key` is staged.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Staged payload for `key`.
    pub fn get(&self, key: u64) -> Option<&P> {
        let idx = *self.index.get(&key)?;
        self.fifo[idx].as_ref().map(|(_, p)| p)
    }

    /// Whether `payload` would fit right now (after coalescing away any
    /// existing delta for `key`).
    pub fn fits(&self, key: u64, payload: &P) -> bool {
        let freed = self.get(key).map_or(0, |p| p.nbytes());
        self.used_bytes - freed + payload.nbytes() <= self.capacity_bytes
    }

    /// Stage a delta; a previous delta for the same key is replaced
    /// (write coalescing).
    ///
    /// # Panics
    /// Panics if the payload does not fit — callers must
    /// [`StagingBuffer::fits`]-check and drain first, or the payload alone
    /// exceeds the buffer.
    pub fn insert(&mut self, key: u64, payload: P) {
        assert!(payload.nbytes() <= self.capacity_bytes, "delta larger than the staging buffer");
        self.remove(key);
        assert!(
            self.used_bytes + payload.nbytes() <= self.capacity_bytes,
            "staging buffer overflow: drain before inserting"
        );
        self.used_bytes += payload.nbytes();
        self.index.insert(key, self.fifo.len());
        self.fifo.push(Some((key, payload)));
    }

    /// Drop the staged delta for `key` (invalidation), returning it.
    pub fn remove(&mut self, key: u64) -> Option<P> {
        let idx = self.index.remove(&key)?;
        let (_, payload) = self.fifo[idx].take()?;
        self.used_bytes -= payload.nbytes();
        Some(payload)
    }

    /// Iterate the staged `(key, payload)` pairs in FIFO order without
    /// draining (power-failure recovery reads the surviving NVRAM state).
    pub fn snapshot(&self) -> impl Iterator<Item = (u64, &P)> + '_ {
        self.fifo.iter().flatten().map(|(k, p)| (*k, p))
    }

    /// Drain every staged delta in FIFO order — the commit that packs them
    /// into one DEZ page.
    pub fn drain(&mut self) -> Vec<(u64, P)> {
        let out: Vec<(u64, P)> = self.fifo.drain(..).flatten().collect();
        self.index.clear();
        self.used_bytes = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s: StagingBuffer<u32> = StagingBuffer::new(4096);
        s.insert(1, 100);
        s.insert(2, 200);
        assert_eq!(s.len(), 2);
        assert_eq!(s.used_bytes(), 300);
        assert_eq!(s.get(1), Some(&100));
        assert_eq!(s.remove(1), Some(100));
        assert_eq!(s.used_bytes(), 200);
        assert!(!s.contains(1));
    }

    #[test]
    fn coalescing_replaces_in_place() {
        let mut s: StagingBuffer<u32> = StagingBuffer::new(1000);
        s.insert(7, 400);
        s.insert(7, 600); // newer delta replaces
        assert_eq!(s.len(), 1);
        assert_eq!(s.used_bytes(), 600);
        assert_eq!(s.get(7), Some(&600));
    }

    #[test]
    fn fits_accounts_for_coalescing() {
        let mut s: StagingBuffer<u32> = StagingBuffer::new(1000);
        s.insert(1, 900);
        assert!(!s.fits(2, &200));
        assert!(s.fits(1, &1000), "replacing key 1 frees its 900 bytes");
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let mut s: StagingBuffer<u32> = StagingBuffer::new(4096);
        s.insert(3, 10);
        s.insert(1, 20);
        s.insert(2, 30);
        s.remove(1);
        s.insert(4, 40);
        let drained = s.drain();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 2, 4]);
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn real_byte_payloads() {
        let mut s: StagingBuffer<Vec<u8>> = StagingBuffer::new(100);
        s.insert(1, vec![0xAA; 60]);
        assert!(!s.fits(2, &vec![0; 50]));
        assert!(s.fits(2, &vec![0; 40]));
        s.insert(2, vec![0xBB; 40]);
        assert_eq!(s.used_bytes(), 100);
        assert_eq!(s.get(1).unwrap().len(), 60);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut s: StagingBuffer<u32> = StagingBuffer::new(100);
        s.insert(1, 80);
        s.insert(2, 80);
    }

    #[test]
    #[should_panic(expected = "larger than the staging buffer")]
    fn oversized_payload_panics() {
        let mut s: StagingBuffer<u32> = StagingBuffer::new(100);
        s.insert(1, 101);
    }
}
