//! KDD — Keeping Data and Deltas in an endurable SSD cache.
//!
//! The primary contribution of the reproduced paper (ICPP 2016): an SSD
//! cache-management scheme for parity-based RAID that removes the small
//! write penalty on write hits (data is dispatched to RAID without a
//! parity update; stale parity is repaired by a background cleaner) while
//! extending SSD lifetime (only the compressed XOR *delta* of the old and
//! new page versions is written to flash, packed compactly into Delta
//! Zone pages).
//!
//! Two implementations share the same algorithmic core:
//!
//! * [`policy::KddPolicy`] — the *accounting* implementation driving the
//!   trace simulations (Figures 4–8): exact cache state, counted I/O;
//! * [`engine::KddEngine`] — the *prototype-style* implementation
//!   operating on real bytes against a real [`kdd_raid::RaidArray`] and
//!   [`kdd_blockdev::SsdDevice`], with genuine XOR deltas, compression,
//!   a serialised metadata log, and full §III-E failure recovery (power
//!   loss, SSD loss, HDD loss).
//!
//! Supporting machinery: [`metalog`] (the circular persistent metadata
//! log), [`staging`] (the NVRAM delta staging buffer), [`config`].

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod metalog;
pub mod policy;
pub mod staging;

pub use config::KddConfig;
pub use engine::{KddEngine, WriteRequest};
pub use metalog::{CommitBatch, KeyEntry, LogEntry, MetaLog};
pub use policy::KddPolicy;
pub use staging::{DeltaPayload, StagingBuffer};
